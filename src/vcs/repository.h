// A git-like repository: branch ref over a commit DAG of hierarchical trees.
//
// Two costs matter for the paper's Figure 13 (commit throughput degrades as
// the repository grows) and are reproduced faithfully here:
//   * an index scan per commit — git checks whether the local clone is up to
//     date by stat()ing every tracked file; we charge an O(#files) pass over
//     the head manifest;
//   * tree rewriting along changed paths — directory objects containing the
//     changed files are re-encoded and re-hashed.
// The multi-repository remedy (§3.6) is in multirepo.h.

#ifndef SRC_VCS_REPOSITORY_H_
#define SRC_VCS_REPOSITORY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/vcs/diff.h"
#include "src/vcs/objects.h"

namespace configerator {

// One file mutation in a commit. `content == nullopt` deletes the path.
struct FileWrite {
  std::string path;
  std::optional<std::string> content;
};

// A path-level difference between two commits.
struct FileDelta {
  enum class Kind { kAdded, kDeleted, kModified };
  std::string path;
  Kind kind = Kind::kModified;
};

class Repository {
 public:
  explicit Repository(std::string name = "config");

  const std::string& name() const { return name_; }

  // Applies `writes` on top of head and advances the branch. Empty `writes`
  // or writes that change nothing still produce a commit (like --allow-empty)
  // so automation can heartbeat. Returns the new commit id.
  Result<ObjectId> Commit(const std::string& author, const std::string& message,
                          const std::vector<FileWrite>& writes,
                          int64_t timestamp_ms = 0);

  // Head state queries.
  std::optional<ObjectId> head() const { return head_; }
  bool FileExists(const std::string& path) const {
    return manifest_.count(path) > 0;
  }
  Result<std::string> ReadFile(const std::string& path) const;
  std::vector<std::string> ListFiles() const;
  // Files under a directory prefix ("feed/" matches "feed/a.json").
  std::vector<std::string> ListFilesUnder(const std::string& prefix) const;
  size_t file_count() const { return manifest_.size(); }
  size_t commit_count() const { return commit_count_; }

  // Historical queries.
  Result<CommitObject> GetCommit(const ObjectId& id) const;
  Result<std::string> ReadFileAt(const ObjectId& commit_id,
                                 const std::string& path) const;
  // Commit ids from head backwards (first parent), newest first.
  Result<std::vector<ObjectId>> Log(size_t limit) const;

  // Path-level diff between two commits (either may be "empty" by passing
  // std::nullopt — useful against the pre-history state).
  Result<std::vector<FileDelta>> DiffCommits(
      const std::optional<ObjectId>& old_commit,
      const std::optional<ObjectId>& new_commit) const;

  // Line diff of one path between two commits.
  Result<LineDiff> DiffFile(const std::optional<ObjectId>& old_commit,
                            const std::optional<ObjectId>& new_commit,
                            const std::string& path) const;

  const ObjectStore& store() const { return store_; }

  // The emulated `git status` index refresh (on by default). Benches toggle
  // it to ablate its contribution to Fig 13.
  void set_index_scan_enabled(bool enabled) { index_scan_enabled_ = enabled; }

 private:
  // Mutable mirror of the head tree for incremental re-hashing.
  struct DirNode {
    std::map<std::string, DirNode> dirs;
    std::map<std::string, ObjectId> files;
    bool dirty = true;
    ObjectId id;  // Valid when !dirty.
  };

  static Status ValidatePath(const std::string& path);
  void IndexScan() const;
  // Pre-checks a whole batch against head + earlier batch writes; Commit
  // only mutates if this passes (all-or-nothing batches).
  Status ValidateWrites(const std::vector<FileWrite>& writes) const;
  Status ApplyWrite(const FileWrite& write);
  ObjectId FlushTree(DirNode* node);
  Status CollectTreeFiles(const ObjectId& tree_id, const std::string& prefix,
                          std::map<std::string, ObjectId>* out) const;
  Status DiffTrees(const std::optional<ObjectId>& old_tree,
                   const std::optional<ObjectId>& new_tree,
                   const std::string& prefix,
                   std::vector<FileDelta>* out) const;

  std::string name_;
  ObjectStore store_;
  std::optional<ObjectId> head_;
  size_t commit_count_ = 0;
  DirNode root_;
  std::map<std::string, ObjectId> manifest_;  // path -> blob id at head.
  bool index_scan_enabled_ = true;
  mutable uint64_t index_scan_sink_ = 0;  // Defeats dead-code elimination.
};

}  // namespace configerator

#endif  // SRC_VCS_REPOSITORY_H_
