// Automated canary testing (paper §3.3): a config change is deployed to a
// small set of production servers first, held there while health metrics are
// compared against the rest of the fleet, then promoted phase by phase
// (e.g. 20 servers → a full cluster) and finally handed to the landing strip
// for commit — or rolled back automatically.
//
// The §6.4 incident taxonomy drives the service model here: Type I errors
// are visible immediately on any server; Type II (load-related) issues only
// materialize when a large fraction of the fleet runs the config — which is
// exactly why the paper added a cluster-sized canary phase; Type III are
// valid configs that trigger latent code bugs (crashes) probabilistically.

#ifndef SRC_CANARY_CANARY_H_
#define SRC_CANARY_CANARY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace configerator {

// One testing phase of a canary spec.
struct CanaryPhase {
  std::string name;
  size_t num_servers = 20;
  SimTime hold_time = 2 * kSimMinute;
  // Health predicates: canary group vs control group.
  double max_error_rate_ratio = 1.5;   // canary_err <= ratio * control_err.
  double max_latency_ratio = 1.5;      // canary_lat <= ratio * control_lat.
  double max_crash_rate = 0.001;       // Absolute crash-rate ceiling.
};

struct CanarySpec {
  std::vector<CanaryPhase> phases;

  // The paper's shape: phase 1 = 20 servers for ~2 minutes, phase 2 = a full
  // cluster (thousands of servers) for ~8 minutes — about ten minutes total.
  static CanarySpec Default(size_t cluster_size = 2000);
  // The pre-incident spec: only the 20-server phase (used by the §6.4
  // ablation to show the load-issue escape).
  static CanarySpec SmallOnly();

  // Canary specs are themselves configs ("a config is associated with a
  // canary spec" — §3.3): they serialize to/from JSON stored next to the
  // config they guard.
  //
  //   {"phases": [{"name": "phase1", "num_servers": 20,
  //                "hold_time_s": 120, "max_error_rate_ratio": 1.5,
  //                "max_latency_ratio": 1.5, "max_crash_rate": 0.001}, ...]}
  Json ToJson() const;
  static Result<CanarySpec> FromJson(const Json& json);
};

// The statically-computed blast radius of the change under canary: which
// entry configs the edit can actually reach (symbol-pruned when slices are
// available) and, per changed source file, which top-level symbols changed.
// Purely an annotation — the canary holds/promotes the same way — but it is
// logged with the run and kept for the operator UI, so "20 servers testing a
// change that reaches 40% of the fleet's configs" is visible before promote.
struct CanaryScope {
  std::vector<std::string> affected_entries;
  std::map<std::string, std::set<std::string>> changed_symbols;  // By path.
  // True when the entry list is a sound upper bound (every slice was sound);
  // false means some dependency edges were file-level over-approximations.
  bool symbol_pruned = false;
  // Semantic diff annotations: "file:symbol" -> "old -> new" abstract value
  // bounds for the symbols the change moves (value-delta and control-shift
  // impacts). The operator sees *what interval the value crosses* while the
  // canary holds, not just which files changed.
  std::map<std::string, std::string> value_deltas;
  // Cross-config invariant annotations from the Sandcastle run: violated
  // predicates carry their concrete counterexample witness (these normally
  // block landing — they appear here only when an operator force-lands), and
  // in-jeopardy predicates warn that the canary is the last line of defense
  // for a property that lost its abstract proof. "predicate" -> rendered
  // witness/detail.
  std::map<std::string, std::string> invariant_notes;

  // One-line rendering for logs and review notes.
  std::string Describe() const;
};

// What the canary service measures for a server group over a hold window.
struct GroupMetrics {
  double error_rate = 0;  // Errors per request.
  double latency_ms = 0;
  double crash_rate = 0;  // Fraction of group instances that crashed.
};

// Models how a service behaves under a candidate config. The canary service
// asks for canary-group and control-group metrics at each phase.
class ServiceModel {
 public:
  virtual ~ServiceModel() = default;

  // `canary_group` selects which population to measure; `group_size` is the
  // number of servers running the candidate; `fleet_size` the whole fleet.
  virtual GroupMetrics Measure(bool canary_group, size_t group_size,
                               size_t fleet_size) = 0;
};

// Defect classes from the §6.4 incident breakdown.
enum class ConfigDefect {
  kNone,
  kImmediateError,  // Type I: obvious errors, visible on any server.
  kLoadSensitive,   // Type II: pathologies that scale with deployed fraction.
  kLatentCrash,     // Type III: valid config exposing a code bug.
};

std::string_view ConfigDefectName(ConfigDefect defect);

// Concrete ServiceModel with a single injected defect and measurement noise
// (small canary groups are noisy, so marginal defects can escape — as they
// do in production).
class DefectServiceModel : public ServiceModel {
 public:
  struct Params {
    double base_error_rate = 0.001;
    double base_latency_ms = 10.0;
    double noise_fraction = 0.05;  // Relative gaussian noise per measurement.
    double severity = 1.0;         // Defect strength multiplier.
  };

  DefectServiceModel(ConfigDefect defect, Params params, uint64_t seed);

  GroupMetrics Measure(bool canary_group, size_t group_size,
                       size_t fleet_size) override;

  ConfigDefect defect() const { return defect_; }

 private:
  double Noisy(double value, size_t group_size);

  ConfigDefect defect_;
  Params params_;
  Rng rng_;
};

// The canary service itself: runs a spec's phases on the simulator clock and
// reports pass (OK) or fail (kRejected with the phase and reason).
class CanaryService {
 public:
  struct Options {
    // Time to temporarily deploy a config to a phase's servers.
    SimTime deploy_time = 10 * kSimSecond;
    size_t fleet_size = 200'000;
  };

  CanaryService(Simulator* sim, Options options) : sim_(sim), options_(options) {}
  explicit CanaryService(Simulator* sim) : CanaryService(sim, Options{}) {}

  // Runs all phases; `done` fires with OK if every phase passed. The model
  // must outlive the test.
  void RunTest(const CanarySpec& spec, ServiceModel* model,
               std::function<void(Status)> done);

  // Same, annotated with the change's statically-computed blast radius. The
  // scope is logged with the run and retained (last_scope()) for operator
  // tooling; it does not alter pass/fail judgement.
  void RunTest(const CanarySpec& spec, const CanaryScope& scope,
               ServiceModel* model, std::function<void(Status)> done);

  // The scope of the most recently started annotated test, if any.
  const std::optional<CanaryScope>& last_scope() const { return last_scope_; }

  // Tests currently in flight.
  size_t active_tests() const { return active_tests_; }

 private:
  void RunPhase(std::shared_ptr<const CanarySpec> spec, size_t phase_idx,
                ServiceModel* model, std::function<void(Status)> done);
  static Status EvaluatePhase(const CanaryPhase& phase,
                              const GroupMetrics& canary,
                              const GroupMetrics& control);

  Simulator* sim_;
  Options options_;
  size_t active_tests_ = 0;
  std::optional<CanaryScope> last_scope_;
};

}  // namespace configerator

#endif  // SRC_CANARY_CANARY_H_
