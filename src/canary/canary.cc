#include "src/canary/canary.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace configerator {

CanarySpec CanarySpec::Default(size_t cluster_size) {
  CanarySpec spec;
  CanaryPhase phase1;
  phase1.name = "phase1-20-servers";
  phase1.num_servers = 20;
  phase1.hold_time = 2 * kSimMinute;
  spec.phases.push_back(phase1);

  CanaryPhase phase2;
  phase2.name = "phase2-full-cluster";
  phase2.num_servers = cluster_size;
  phase2.hold_time = 8 * kSimMinute;
  spec.phases.push_back(phase2);
  return spec;
}

CanarySpec CanarySpec::SmallOnly() {
  CanarySpec spec;
  CanaryPhase phase1;
  phase1.name = "phase1-20-servers";
  phase1.num_servers = 20;
  phase1.hold_time = 2 * kSimMinute;
  spec.phases.push_back(phase1);
  return spec;
}

Json CanarySpec::ToJson() const {
  Json phases_json = Json::MakeArray();
  for (const CanaryPhase& phase : phases) {
    Json p = Json::MakeObject();
    p.Set("name", phase.name);
    p.Set("num_servers", static_cast<int64_t>(phase.num_servers));
    p.Set("hold_time_s", phase.hold_time / kSimSecond);
    p.Set("max_error_rate_ratio", phase.max_error_rate_ratio);
    p.Set("max_latency_ratio", phase.max_latency_ratio);
    p.Set("max_crash_rate", phase.max_crash_rate);
    phases_json.Append(std::move(p));
  }
  Json spec = Json::MakeObject();
  spec.Set("phases", std::move(phases_json));
  return spec;
}

Result<CanarySpec> CanarySpec::FromJson(const Json& json) {
  if (!json.is_object()) {
    return InvalidConfigError("canary spec must be a JSON object");
  }
  const Json* phases = json.Get("phases");
  if (phases == nullptr || !phases->is_array() || phases->size() == 0) {
    return InvalidConfigError("canary spec needs a nonempty 'phases' list");
  }
  CanarySpec spec;
  for (const Json& p : phases->as_array()) {
    if (!p.is_object()) {
      return InvalidConfigError("canary phase must be an object");
    }
    CanaryPhase phase;
    const Json* name = p.Get("name");
    if (name != nullptr && name->is_string()) {
      phase.name = name->as_string();
    } else {
      phase.name = StrFormat("phase%zu", spec.phases.size() + 1);
    }
    const Json* servers = p.Get("num_servers");
    if (servers == nullptr || !servers->is_int() || servers->as_int() <= 0) {
      return InvalidConfigError("canary phase needs positive 'num_servers'");
    }
    phase.num_servers = static_cast<size_t>(servers->as_int());
    const Json* hold = p.Get("hold_time_s");
    if (hold != nullptr) {
      if (!hold->is_number() || hold->as_double() <= 0) {
        return InvalidConfigError("'hold_time_s' must be a positive number");
      }
      phase.hold_time = static_cast<SimTime>(hold->as_double() * kSimSecond);
    }
    auto read_ratio = [&p](const char* key, double* out) -> Status {
      const Json* v = p.Get(key);
      if (v == nullptr) {
        return OkStatus();
      }
      if (!v->is_number() || v->as_double() <= 0) {
        return InvalidConfigError(std::string(key) + " must be positive");
      }
      *out = v->as_double();
      return OkStatus();
    };
    RETURN_IF_ERROR(read_ratio("max_error_rate_ratio", &phase.max_error_rate_ratio));
    RETURN_IF_ERROR(read_ratio("max_latency_ratio", &phase.max_latency_ratio));
    RETURN_IF_ERROR(read_ratio("max_crash_rate", &phase.max_crash_rate));
    // Phases must not shrink: each later phase widens exposure.
    if (!spec.phases.empty() &&
        phase.num_servers <= spec.phases.back().num_servers) {
      return InvalidConfigError(
          "canary phases must strictly grow in server count");
    }
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

std::string_view ConfigDefectName(ConfigDefect defect) {
  switch (defect) {
    case ConfigDefect::kNone:
      return "none";
    case ConfigDefect::kImmediateError:
      return "type-I-immediate-error";
    case ConfigDefect::kLoadSensitive:
      return "type-II-load-sensitive";
    case ConfigDefect::kLatentCrash:
      return "type-III-latent-code-bug";
  }
  return "?";
}

DefectServiceModel::DefectServiceModel(ConfigDefect defect, Params params,
                                       uint64_t seed)
    : defect_(defect), params_(params), rng_(seed) {}

double DefectServiceModel::Noisy(double value, size_t group_size) {
  // Noise shrinks with sqrt(group size): a 20-server sample is ~10x noisier
  // than a 2000-server cluster sample.
  double scale =
      params_.noise_fraction / std::sqrt(static_cast<double>(std::max<size_t>(group_size, 1)));
  double noisy = value * (1.0 + scale * rng_.NextGaussian() * 4.47);  // 4.47≈sqrt(20)
  return std::max(noisy, 0.0);
}

GroupMetrics DefectServiceModel::Measure(bool canary_group, size_t group_size,
                                         size_t fleet_size) {
  GroupMetrics metrics;
  metrics.error_rate = params_.base_error_rate;
  metrics.latency_ms = params_.base_latency_ms;
  metrics.crash_rate = 0.0;

  if (canary_group && defect_ != ConfigDefect::kNone) {
    double deployed_fraction = static_cast<double>(group_size) /
                               static_cast<double>(std::max<size_t>(fleet_size, 1));
    switch (defect_) {
      case ConfigDefect::kImmediateError:
        // Obvious once deployed anywhere: error rate multiplies.
        metrics.error_rate *= 1.0 + 9.0 * params_.severity;
        break;
      case ConfigDefect::kLoadSensitive:
        // Backend overload grows with the deployed fraction of the fleet; at
        // 20/200k servers the effect is ~absent, at cluster scale it bites.
        metrics.latency_ms *=
            1.0 + params_.severity * 80.0 * deployed_fraction;
        metrics.error_rate *= 1.0 + params_.severity * 20.0 * deployed_fraction;
        break;
      case ConfigDefect::kLatentCrash: {
        // Each instance hits the buggy path with small probability during
        // the hold; expected crash fraction is severity-scaled.
        double per_instance = 0.02 * params_.severity;
        metrics.crash_rate = per_instance;
        break;
      }
      case ConfigDefect::kNone:
        break;
    }
  }

  metrics.error_rate = Noisy(metrics.error_rate, group_size);
  metrics.latency_ms = Noisy(metrics.latency_ms, group_size);
  if (metrics.crash_rate > 0) {
    // Binomial sampling of observed crashes in the group.
    size_t crashes = 0;
    for (size_t i = 0; i < group_size; ++i) {
      if (rng_.NextBool(metrics.crash_rate)) {
        ++crashes;
      }
    }
    metrics.crash_rate =
        static_cast<double>(crashes) / static_cast<double>(std::max<size_t>(group_size, 1));
  }
  return metrics;
}

Status CanaryService::EvaluatePhase(const CanaryPhase& phase,
                                    const GroupMetrics& canary,
                                    const GroupMetrics& control) {
  if (control.error_rate > 0 &&
      canary.error_rate > control.error_rate * phase.max_error_rate_ratio) {
    return RejectedError(StrFormat(
        "%s: error rate %.5f exceeds %.2fx control (%.5f)", phase.name.c_str(),
        canary.error_rate, phase.max_error_rate_ratio, control.error_rate));
  }
  if (control.latency_ms > 0 &&
      canary.latency_ms > control.latency_ms * phase.max_latency_ratio) {
    return RejectedError(StrFormat(
        "%s: latency %.2fms exceeds %.2fx control (%.2fms)", phase.name.c_str(),
        canary.latency_ms, phase.max_latency_ratio, control.latency_ms));
  }
  if (canary.crash_rate > phase.max_crash_rate) {
    return RejectedError(StrFormat("%s: crash rate %.4f exceeds ceiling %.4f",
                                   phase.name.c_str(), canary.crash_rate,
                                   phase.max_crash_rate));
  }
  return OkStatus();
}

std::string CanaryScope::Describe() const {
  size_t symbols = 0;
  for (const auto& [path, names] : changed_symbols) {
    symbols += names.size();
  }
  std::string out =
      StrFormat("%zu affected entr%s, %zu changed symbol(s) in %zu "
                "file(s)%s",
                affected_entries.size(),
                affected_entries.size() == 1 ? "y" : "ies", symbols,
                changed_symbols.size(),
                symbol_pruned ? " (symbol-pruned)" : " (file-level)");
  for (const auto& [symbol, delta] : value_deltas) {
    out += "; " + symbol + ": " + delta;
  }
  for (const auto& [predicate, note] : invariant_notes) {
    out += "; invariant [" + predicate + "]: " + note;
  }
  return out;
}

void CanaryService::RunTest(const CanarySpec& spec, const CanaryScope& scope,
                            ServiceModel* model,
                            std::function<void(Status)> done) {
  last_scope_ = scope;
  CLOG(Info) << "canary blast radius: " << scope.Describe();
  RunTest(spec, model, std::move(done));
}

void CanaryService::RunTest(const CanarySpec& spec, ServiceModel* model,
                            std::function<void(Status)> done) {
  if (spec.phases.empty()) {
    done(InvalidArgumentError("canary spec has no phases"));
    return;
  }
  ++active_tests_;
  auto spec_copy = std::make_shared<const CanarySpec>(spec);
  auto wrapped_done = [this, done = std::move(done)](Status status) {
    --active_tests_;
    done(status);
  };
  RunPhase(spec_copy, 0, model, std::move(wrapped_done));
}

void CanaryService::RunPhase(std::shared_ptr<const CanarySpec> spec,
                             size_t phase_idx, ServiceModel* model,
                             std::function<void(Status)> done) {
  const CanaryPhase& phase = spec->phases[phase_idx];
  // Deploy to the phase's servers, hold, then measure and judge.
  sim_->Schedule(options_.deploy_time + phase.hold_time,
                 [this, spec, phase_idx, model, done = std::move(done)] {
                   const CanaryPhase& p = spec->phases[phase_idx];
                   GroupMetrics canary =
                       model->Measure(true, p.num_servers, options_.fleet_size);
                   GroupMetrics control = model->Measure(
                       false, options_.fleet_size - p.num_servers,
                       options_.fleet_size);
                   Status verdict = EvaluatePhase(p, canary, control);
                   if (!verdict.ok() || phase_idx + 1 == spec->phases.size()) {
                     done(verdict);
                     return;
                   }
                   RunPhase(spec, phase_idx + 1, model, std::move(done));
                 });
}

}  // namespace configerator
