#include "src/core/mutator.h"

#include "src/gatekeeper/project.h"

namespace configerator {

Result<ObjectId> Mutator::WriteRawConfig(const std::string& path,
                                         std::string content,
                                         const std::string& message) {
  ProposedDiff diff = MakeProposedDiff(
      stack_->repo(), tool_name_, message,
      {FileWrite{path, std::move(content)}},
      stack_->sim().now() / kSimMillisecond);
  return stack_->landing_strip().Land(diff);
}

Result<ObjectId> Mutator::DeleteConfig(const std::string& path,
                                       const std::string& message) {
  ProposedDiff diff = MakeProposedDiff(
      stack_->repo(), tool_name_, message, {FileWrite{path, std::nullopt}},
      stack_->sim().now() / kSimMillisecond);
  return stack_->landing_strip().Land(diff);
}

Result<ObjectId> Mutator::SetJsonField(const std::string& path,
                                       const std::string& field, Json value,
                                       const std::string& message) {
  Json config = Json::MakeObject();
  auto existing = stack_->repo().ReadFile(path);
  if (existing.ok()) {
    ASSIGN_OR_RETURN(config, Json::Parse(*existing));
    if (!config.is_object()) {
      return InvalidConfigError("config '" + path + "' is not a JSON object");
    }
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  config.Set(field, std::move(value));
  return WriteRawConfig(path, config.DumpPretty(), message);
}

Result<ObjectId> Mutator::SetGatekeeperProject(const Json& project_config,
                                               const std::string& message) {
  // Validate by compiling the project before distributing it.
  ASSIGN_OR_RETURN(GatekeeperProject project,
                   GatekeeperProject::FromJson(project_config));
  return WriteRawConfig(GatekeeperPath(project.name()),
                        project_config.DumpPretty(), message);
}

Result<ObjectId> Mutator::SetRolloutFraction(const std::string& project,
                                             size_t rule_index, double fraction,
                                             const std::string& message) {
  if (fraction < 0 || fraction > 1) {
    return InvalidArgumentError("rollout fraction must be in [0, 1]");
  }
  std::string path = GatekeeperPath(project);
  ASSIGN_OR_RETURN(std::string text, stack_->repo().ReadFile(path));
  ASSIGN_OR_RETURN(Json config, Json::Parse(text));
  Json* rules = nullptr;
  if (config.is_object()) {
    auto& obj = config.as_object();
    auto it = obj.find("rules");
    if (it != obj.end() && it->second.is_array()) {
      rules = &it->second;
    }
  }
  if (rules == nullptr || rule_index >= rules->as_array().size()) {
    return InvalidConfigError("project '" + project + "' has no rule " +
                              std::to_string(rule_index));
  }
  rules->as_array()[rule_index].Set("pass_probability", Json(fraction));
  return SetGatekeeperProject(config, message);
}

}  // namespace configerator
