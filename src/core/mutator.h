// Mutator (paper Fig 3): the programmatic API automation tools use to drive
// config changes — traffic shifters, load balancers, experiment frameworks.
// Automation writes are raw configs (89% of raw-config updates in the paper
// are tool-made); they land through the landing strip like everything else
// and distribute through the same pipeline.

#ifndef SRC_CORE_MUTATOR_H_
#define SRC_CORE_MUTATOR_H_

#include <string>

#include "src/core/stack.h"
#include "src/json/json.h"

namespace configerator {

class Mutator {
 public:
  Mutator(ConfigManagementStack* stack, std::string tool_name)
      : stack_(stack), tool_name_(std::move(tool_name)) {}

  // Writes (creates or replaces) a raw config.
  Result<ObjectId> WriteRawConfig(const std::string& path, std::string content,
                                  const std::string& message);

  // Deletes a config.
  Result<ObjectId> DeleteConfig(const std::string& path, const std::string& message);

  // Read-modify-write of a single field of a JSON config (creating the
  // config as an object if absent). The typical automation primitive:
  // "shift region A's traffic weight to 0.3".
  Result<ObjectId> SetJsonField(const std::string& path, const std::string& field,
                                Json value, const std::string& message);

  // Installs or replaces a Gatekeeper project config (under "gatekeeper/").
  Result<ObjectId> SetGatekeeperProject(const Json& project_config,
                                        const std::string& message);

  // Rewrites the pass probability of rule `rule_index` of a project — the
  // 1% → 10% → 100% rollout knob.
  Result<ObjectId> SetRolloutFraction(const std::string& project, size_t rule_index,
                                      double fraction, const std::string& message);

  static std::string GatekeeperPath(const std::string& project) {
    return "gatekeeper/" + project + ".json";
  }

 private:
  ConfigManagementStack* stack_;
  std::string tool_name_;
};

}  // namespace configerator

#endif  // SRC_CORE_MUTATOR_H_
