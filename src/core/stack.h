// ConfigManagementStack: the whole pipeline of the paper's Figure 3 wired
// together — author → compile (validators) → review (Phabricator) → CI
// (Sandcastle) → automated canary → landing strip → git tailer → Zeus →
// observers → per-server proxies → applications.
//
// The control plane (compiler, review, CI, landing strip) executes directly;
// the distribution plane (tailer, Zeus, proxies) and the canary run on the
// discrete-event simulator, so tests and benches can measure propagation in
// simulated seconds across a simulated fleet.

#ifndef SRC_CORE_STACK_H_
#define SRC_CORE_STACK_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/canary/canary.h"
#include "src/distribution/proxy.h"
#include "src/distribution/tailer.h"
#include "src/lang/compiler.h"
#include "src/obs/observability.h"
#include "src/pipeline/ci.h"
#include "src/pipeline/dependency.h"
#include "src/pipeline/landing_strip.h"
#include "src/pipeline/review.h"
#include "src/pipeline/risk.h"
#include "src/sim/network.h"
#include "src/vcs/repository.h"
#include "src/zeus/zeus.h"

namespace configerator {

// A change moving through the pipeline.
struct PendingChange {
  ProposedDiff diff;           // Source writes + regenerated JSON configs.
  int64_t review_id = 0;
  CiReport ci_report;
  RiskAssessment risk;         // History-based advisory (never blocking).
  std::vector<std::string> affected_entries;
  // Per changed CSL path, which top-level symbols the edit modifies (nullopt
  // = not statically comparable). Feeds risk fan-in and the canary scope.
  std::map<std::string, std::optional<std::set<std::string>>> changed_symbols;

  // Root of this change's commit trace (the stack's tracer follows the
  // change through CI, canary, landing, and the distribution tree).
  TraceContext trace{};

  // The symbol-level blast radius, for annotating the canary run.
  CanaryScope Scope() const;
};

class ConfigManagementStack {
 public:
  struct Options {
    int regions = 2;
    int clusters_per_region = 2;
    int servers_per_cluster = 20;
    size_t zeus_members = 5;
    int observers_per_cluster = 2;
    bool require_review = true;
    bool run_ci = true;
    CanaryService::Options canary;
    GitTailer::Options tailer;
    uint64_t seed = 1;
  };

  ConfigManagementStack() : ConfigManagementStack(Options{}) {}
  explicit ConfigManagementStack(Options options);

  // --- Authoring flow -------------------------------------------------------

  // Compiles the source writes (every affected entry), runs CI, and opens a
  // review. The returned change carries both the source writes and the
  // regenerated JSON configs (one commit updates both, like Fig 2's "one git
  // commit ensures consistency"). Fails on compile errors; CI failures are
  // reported in ci_report and block landing.
  Result<PendingChange> ProposeChange(const std::string& author,
                                      const std::string& message,
                                      std::vector<FileWrite> source_writes);

  // Review approval (reviewer must differ from the author).
  Status Approve(PendingChange* change, const std::string& reviewer);

  // Runs the automated canary on the simulator, then lands on success; fires
  // `done` with the commit id or the rejection. Drive the simulator to make
  // progress. `model` describes how the service behaves under the change.
  void TestAndLand(PendingChange change, const CanarySpec& spec,
                   ServiceModel* model,
                   std::function<void(Result<ObjectId>)> done);

  // Lands immediately (the automation/Mutator path, or after an external
  // canary). Enforces review/CI gates per Options.
  Result<ObjectId> LandNow(const PendingChange& change);

  // The canary spec associated with a config (§3.3): read from the
  // "<config_path>.canary.json" sibling at head if present, else the
  // two-phase default. Malformed stored specs are an error, not a fallback.
  Result<CanarySpec> CanarySpecFor(const std::string& config_path) const;

  // --- Consumption ----------------------------------------------------------

  // The proxy (creating it on first use) on a given server.
  ConfigProxy* ProxyOn(const ServerId& server);
  // Application client library view of a server.
  AppConfigClient ClientOn(const ServerId& server);
  // Subscribes an application on `server` to a config path.
  void SubscribeServer(const ServerId& server, const std::string& path,
                       ConfigProxy::UpdateCallback on_update = nullptr);

  // Runs the simulated world forward by `duration`.
  void RunFor(SimTime duration) { sim_.RunUntil(sim_.now() + duration); }

  // --- Component access -------------------------------------------------

  Simulator& sim() { return sim_; }
  Network& network() { return *network_; }
  Repository& repo() { return repo_; }
  ZeusEnsemble& zeus() { return *zeus_; }
  GitTailer& tailer() { return *tailer_; }
  CanaryService& canary() { return *canary_; }
  ReviewService& reviews() { return reviews_; }
  DependencyService& deps() { return deps_; }
  LandingStrip& landing_strip() { return *landing_strip_; }
  Sandcastle& sandcastle() { return *sandcastle_; }
  // The stack-wide metrics registry + commit tracer. Always attached: every
  // change proposed through the stack gets a trace; proxies created via
  // ProxyOn() record propagation metrics (staleness probes stay off — the
  // stack adds no background network traffic).
  Observability& obs() { return obs_; }
  const Topology& topology() const { return network_->topology(); }
  const Options& options() const { return options_; }

  // A config compiler reading from the current repo head.
  ConfigCompiler CompilerAtHead() const;

 private:
  struct ServerRuntime {
    std::unique_ptr<OnDiskCache> disk;
    std::unique_ptr<ConfigProxy> proxy;
  };

  int64_t NowMs() const { return sim_.now() / kSimMillisecond; }

  Options options_;
  Simulator sim_;
  Observability obs_;
  std::unique_ptr<Network> network_;
  Repository repo_;
  DependencyService deps_;
  RiskAdvisor risk_advisor_;  // Incrementally indexed on each proposal.
  ReviewService reviews_;
  std::unique_ptr<Sandcastle> sandcastle_;
  std::unique_ptr<LandingStrip> landing_strip_;
  std::unique_ptr<ZeusEnsemble> zeus_;
  std::unique_ptr<GitTailer> tailer_;
  std::unique_ptr<CanaryService> canary_;
  std::map<ServerId, ServerRuntime> servers_;
  uint64_t proxy_seed_ = 1000;
};

}  // namespace configerator

#endif  // SRC_CORE_STACK_H_
