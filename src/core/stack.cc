#include "src/core/stack.h"

#include <set>

#include "src/analysis/absint.h"
#include "src/util/logging.h"

namespace configerator {

CanaryScope PendingChange::Scope() const {
  CanaryScope scope;
  scope.affected_entries = affected_entries;
  scope.symbol_pruned = !changed_symbols.empty();
  for (const auto& [path, symbols] : changed_symbols) {
    if (symbols.has_value()) {
      scope.changed_symbols[path] = *symbols;
    } else {
      scope.changed_symbols[path] = {"*"};  // Not comparable: whole file.
      scope.symbol_pruned = false;
    }
  }
  // Annotate the rollout with the abstract old -> new bounds the semantic
  // diff computed for every moved symbol.
  for (const SymbolImpact& impact : ci_report.semantic_impacts) {
    if (impact.kind == ImpactKind::kNoOp ||
        (impact.old_value.empty() && impact.new_value.empty())) {
      continue;
    }
    scope.value_deltas[impact.file + ":" + impact.symbol] =
        (impact.old_value.empty() ? "<absent>" : impact.old_value) + " -> " +
        (impact.new_value.empty() ? "<absent>" : impact.new_value);
  }
  // Invariant annotations ride the rollout: a violated predicate carries its
  // concrete witness (only reachable by force-landing past Sandcastle), an
  // in-jeopardy one flags that the canary now guards a property with no
  // abstract proof behind it.
  for (const InvariantOutcome& outcome : ci_report.invariant_outcomes) {
    if (outcome.status == InvariantStatus::kViolated) {
      scope.invariant_notes[outcome.predicate] =
          "VIOLATED; witness: " + outcome.witness.Describe();
    } else if (outcome.status == InvariantStatus::kInJeopardy) {
      scope.invariant_notes[outcome.predicate] = "in jeopardy: " + outcome.detail;
    }
  }
  return scope;
}

ConfigManagementStack::ConfigManagementStack(Options options)
    : options_(options), repo_("configerator") {
  Topology topology(options_.regions, options_.clusters_per_region,
                    options_.servers_per_cluster);
  network_ = std::make_unique<Network>(&sim_, topology, options_.seed);

  // Zeus ensemble members: spread across regions for resilience (paper:
  // "consensus protocol among servers distributed across multiple regions").
  std::vector<ServerId> members;
  for (size_t i = 0; i < options_.zeus_members; ++i) {
    int region = static_cast<int>(i) % options_.regions;
    members.push_back(ServerId{region, 0, static_cast<int>(i / options_.regions)});
  }
  // Observers: the first observers_per_cluster servers counting from the top
  // of each cluster (keeps them disjoint from ensemble members).
  std::vector<ServerId> observers;
  for (int r = 0; r < options_.regions; ++r) {
    for (int c = 0; c < options_.clusters_per_region; ++c) {
      for (int o = 0; o < options_.observers_per_cluster; ++o) {
        observers.push_back(
            ServerId{r, c, options_.servers_per_cluster - 1 - o});
      }
    }
  }
  zeus_ = std::make_unique<ZeusEnsemble>(network_.get(), members, observers);
  zeus_->AttachObservability(&obs_);

  sandcastle_ = std::make_unique<Sandcastle>(&repo_, &deps_);
  landing_strip_ = std::make_unique<LandingStrip>(&repo_);
  landing_strip_->AttachObservability(&obs_);
  canary_ = std::make_unique<CanaryService>(&sim_, options_.canary);

  // The tailer runs next to the master repository region.
  ServerId tailer_host{0, 0, options_.servers_per_cluster / 2};
  tailer_ = std::make_unique<GitTailer>(network_.get(), tailer_host, &repo_,
                                        zeus_.get(), options_.tailer);
  tailer_->AttachObservability(&obs_);
  tailer_->Start();
}

ConfigCompiler ConfigManagementStack::CompilerAtHead() const {
  const Repository* repo = &repo_;
  return ConfigCompiler([repo](const std::string& path) -> Result<std::string> {
    return repo->ReadFile(path);
  });
}

Result<PendingChange> ConfigManagementStack::ProposeChange(
    const std::string& author, const std::string& message,
    std::vector<FileWrite> source_writes) {
  PendingChange change;

  // Compile every entry affected by the source writes against an overlay of
  // the writes on head, collecting regenerated JSON outputs.
  ProposedDiff source_diff =
      MakeProposedDiff(repo_, author, message, source_writes, NowMs());
  Sandcastle sandbox(&repo_, &deps_);
  FileReader overlay = sandbox.OverlayReader(source_diff);

  std::set<std::string> entries;
  {
    std::vector<std::string> changed;
    for (const FileWrite& write : source_writes) {
      changed.push_back(write.path);
    }
    for (const std::string& entry : deps_.EntriesAffectedBy(changed)) {
      entries.insert(entry);
    }
    for (const FileWrite& write : source_writes) {
      if (write.path.ends_with(".cconf") && write.content.has_value()) {
        entries.insert(write.path);
      }
    }
  }

  std::vector<FileWrite> all_writes = std::move(source_writes);
  ConfigCompiler compiler(overlay);
  for (const std::string& entry : entries) {
    // A deleted entry removes its generated config.
    bool entry_deleted = false;
    for (const FileWrite& write : all_writes) {
      if (write.path == entry && !write.content.has_value()) {
        entry_deleted = true;
        break;
      }
    }
    if (entry_deleted) {
      std::string output = ConfigCompiler::OutputPathFor(entry);
      if (repo_.FileExists(output)) {
        all_writes.push_back(FileWrite{output, std::nullopt});
      }
      continue;
    }
    ASSIGN_OR_RETURN(CompileOutput output, compiler.Compile(entry));
    for (const CompiledConfig& config : output.configs) {
      all_writes.push_back(FileWrite{config.path, config.content.DumpPretty()});
    }
    change.affected_entries.push_back(entry);
  }

  change.diff = MakeProposedDiff(repo_, author, message, all_writes, NowMs());

  // Root span of the commit trace. Started at the diff's own (ms-floored)
  // timestamp so every later span — including the land span, which reuses
  // diff.timestamp_ms — starts at or after its parent.
  SimTime trace_start = NowMs() * kSimMillisecond;
  change.trace = obs_.tracer.StartTrace("change:" + author, "author", trace_start);

  if (options_.run_ci) {
    TraceContext ci =
        obs_.tracer.StartSpan(change.trace, "sandcastle.ci", "sandcastle", trace_start);
    change.ci_report = sandcastle_->RunTests(change.diff);
    obs_.tracer.EndSpan(ci, trace_start);
  } else {
    change.ci_report.passed = true;
  }
  obs_.tracer.EndSpan(change.trace, trace_start);

  // Symbol-level view of the edit: which top-level symbols each changed CSL
  // file actually modifies. Refines risk fan-in and the canary scope.
  change.changed_symbols = DiffChangedSymbols(repo_, source_diff);

  // Advisory risk assessment from history (flagging, not blocking). The
  // semantic classification — when CI ran — weights fan-in by severity.
  if (risk_advisor_.IndexHistory(repo_).ok()) {
    change.risk = risk_advisor_.Assess(
        change.diff, &deps_, &change.changed_symbols,
        options_.run_ci ? &change.ci_report.semantic_impacts : nullptr,
        options_.run_ci ? &change.ci_report.invariant_outcomes : nullptr);
  }

  if (options_.require_review) {
    change.review_id = reviews_.Submit(change.diff);
    (void)reviews_.PostTestResults(change.review_id, change.ci_report.Summary());
    if (!change.risk.reasons.empty()) {
      std::string note = change.risk.high_risk ? "HIGH-RISK change:" : "Risk notes:";
      for (const std::string& reason : change.risk.reasons) {
        note += "\n  " + reason;
      }
      (void)reviews_.PostTestResults(change.review_id, std::move(note));
    }
  }
  return change;
}

Status ConfigManagementStack::Approve(PendingChange* change,
                                      const std::string& reviewer) {
  if (!options_.require_review) {
    return OkStatus();
  }
  return reviews_.Approve(change->review_id, reviewer);
}

Result<ObjectId> ConfigManagementStack::LandNow(const PendingChange& change) {
  if (!change.ci_report.passed) {
    return RejectedError("CI failed: " + change.ci_report.Summary());
  }
  if (options_.require_review && !reviews_.IsApproved(change.review_id)) {
    return RejectedError("change is not approved");
  }
  ASSIGN_OR_RETURN(ObjectId commit, landing_strip_->Land(change.diff, change.trace));
  // Refresh the dependency graph for recompiled entries: file-level edges
  // from the compile, symbol-level slices from the abstract interpreter so
  // future diffs can prune dependents the edit provably can't reach.
  ConfigCompiler compiler = CompilerAtHead();
  const Repository* repo = &repo_;
  AbstractInterpreter absint(
      [repo](const std::string& path) -> Result<std::string> {
        return repo->ReadFile(path);
      });
  for (const std::string& entry : change.affected_entries) {
    auto output = compiler.Compile(entry);
    if (output.ok()) {
      deps_.UpdateEntry(entry, output->dependencies);
      AbsintResult analysis = absint.AnalyzePath(entry);
      if (analysis.analyzed) {
        deps_.UpdateEntrySymbols(entry, std::move(analysis.used_symbols),
                                 analysis.slice_sound);
      }
    }
  }
  return commit;
}

Result<CanarySpec> ConfigManagementStack::CanarySpecFor(
    const std::string& config_path) const {
  auto stored = repo_.ReadFile(config_path + ".canary.json");
  if (!stored.ok()) {
    if (stored.status().code() == StatusCode::kNotFound) {
      return CanarySpec::Default();
    }
    return stored.status();
  }
  ASSIGN_OR_RETURN(Json json, Json::Parse(*stored));
  return CanarySpec::FromJson(json);
}

void ConfigManagementStack::TestAndLand(
    PendingChange change, const CanarySpec& spec, ServiceModel* model,
    std::function<void(Result<ObjectId>)> done) {
  auto change_ptr = std::make_shared<PendingChange>(std::move(change));
  // Certified no-op landings (comment/reformat-only) take the fast-path
  // canary: the 20-server phase alone, skipping the cluster-sized hold — no
  // value moves, so there is nothing for load to expose.
  CanarySpec effective_spec =
      change_ptr->ci_report.provably_noop ? CanarySpec::SmallOnly() : spec;
  if (change_ptr->ci_report.provably_noop) {
    CLOG(Info) << "canary: provably no-op change, fast-path spec";
  }
  TraceContext canary_span = obs_.tracer.StartSpan(
      change_ptr->trace, "canary", "canary-service", sim_.now());
  canary_->RunTest(effective_spec, change_ptr->Scope(), model,
                   [this, change_ptr, canary_span,
                    done = std::move(done)](Status verdict) {
                     obs_.tracer.EndSpan(canary_span, sim_.now());
                     if (!verdict.ok()) {
                       done(verdict);
                       return;
                     }
                     done(LandNow(*change_ptr));
                   });
}

ConfigProxy* ConfigManagementStack::ProxyOn(const ServerId& server) {
  auto it = servers_.find(server);
  if (it == servers_.end()) {
    ServerRuntime runtime;
    runtime.disk = std::make_unique<OnDiskCache>();
    runtime.proxy = std::make_unique<ConfigProxy>(
        network_.get(), zeus_.get(), server, runtime.disk.get(), proxy_seed_++);
    runtime.proxy->AttachObservability(&obs_);
    it = servers_.emplace(server, std::move(runtime)).first;
  }
  return it->second.proxy.get();
}

AppConfigClient ConfigManagementStack::ClientOn(const ServerId& server) {
  ConfigProxy* proxy = ProxyOn(server);
  return AppConfigClient(proxy, servers_.at(server).disk.get());
}

void ConfigManagementStack::SubscribeServer(const ServerId& server,
                                            const std::string& path,
                                            ConfigProxy::UpdateCallback on_update) {
  ProxyOn(server)->Subscribe(path, std::move(on_update));
}

}  // namespace configerator
