// The Configerator UI path (paper §3.2): an engineer edits the value of a
// Thrift config object directly — no Python/Thrift code — and the UI
// generates the artifacts Configerator needs: the config source program, the
// regenerated JSON, and a human-readable change description that goes to
// code review ("Updated Employee sampling from 1% to 10%" — footnote 1).

#ifndef SRC_CORE_UI_H_
#define SRC_CORE_UI_H_

#include <string>
#include <vector>

#include "src/core/stack.h"
#include "src/json/json.h"

namespace configerator {

// One field edit made through the UI. `field_path` is dotted for nested
// structs ("resources.cpu").
struct UiFieldEdit {
  std::string field_path;
  Json new_value;
};

class ConfigUi {
 public:
  explicit ConfigUi(ConfigManagementStack* stack) : stack_(stack) {}

  // Creates or edits the typed config at `config_path` (a ".cconf" source
  // path). `schema_path`/`struct_name` identify the Thrift type (the schema
  // file must exist at head or be importable). Applies `edits` on top of the
  // current value (or the schema's default instance when creating), type-
  // checks, generates the .cconf source, and opens the usual review/CI
  // pipeline under author "ui:<user>". The change message is the generated
  // operation log.
  Result<PendingChange> EditConfig(const std::string& user,
                                   const std::string& config_path,
                                   const std::string& schema_path,
                                   const std::string& struct_name,
                                   const std::vector<UiFieldEdit>& edits);

  // Renders a JSON value as a config-source-language literal (True/False/
  // None spellings). Exposed for tests.
  static std::string CslLiteral(const Json& value, int indent = 0);

  // Generates the full .cconf source for a typed value.
  static std::string GenerateSource(const std::string& schema_path,
                                    const std::string& struct_name,
                                    const Json& value);

 private:
  ConfigManagementStack* stack_;
};

}  // namespace configerator

#endif  // SRC_CORE_UI_H_
