#include "src/json/json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/util/strings.h"

namespace configerator {

bool Json::as_bool() const {
  assert(is_bool());
  return bool_;
}

int64_t Json::as_int() const {
  assert(is_int());
  return int_;
}

double Json::as_double() const {
  assert(is_number());
  return is_int() ? static_cast<double>(int_) : double_;
}

const std::string& Json::as_string() const {
  assert(is_string());
  return string_;
}

const Json::Array& Json::as_array() const {
  assert(is_array());
  return array_;
}

Json::Array& Json::as_array() {
  assert(is_array());
  return array_;
}

const Json::Object& Json::as_object() const {
  assert(is_object());
  return object_;
}

Json::Object& Json::as_object() {
  assert(is_object());
  return object_;
}

const Json* Json::Get(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

void Json::Set(std::string key, Json value) {
  assert(is_object());
  object_.insert_or_assign(std::move(key), std::move(value));
}

void Json::Append(Json value) {
  assert(is_array());
  array_.push_back(std::move(value));
}

size_t Json::size() const {
  if (is_array()) {
    return array_.size();
  }
  if (is_object()) {
    return object_.size();
  }
  return 0;
}

void JsonEscape(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

namespace {

void DumpDouble(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null like most permissive serializers.
    *out += "null";
    return;
  }
  char buf[64];
  // %.17g round-trips doubles; strip to shortest via %g first.
  int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += std::string_view(buf, static_cast<size_t>(n));
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline_and_pad = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };

  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      *out += std::to_string(int_);
      break;
    case Kind::kDouble:
      DumpDouble(double_, out);
      break;
    case Kind::kString:
      JsonEscape(string_, out);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& v : array_) {
        if (!first) {
          out->push_back(',');
          if (indent == 0) {
            out->push_back(' ');
          }
        }
        first = false;
        newline_and_pad(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) {
          out->push_back(',');
          if (indent == 0) {
            out->push_back(' ');
          }
        }
        first = false;
        newline_and_pad(depth + 1);
        JsonEscape(key, out);
        *out += ": ";
        value.DumpTo(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  out.push_back('\n');
  return out;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) {
    // Allow int/double cross-kind numeric equality.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kDouble:
      return double_ == other.double_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) {
    return InvalidArgumentError(
        StrFormat("JSON parse error at offset %zu: %s", pos_, msg.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (AtEnd()) {
      return Error("unexpected end of input");
    }
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (Consume("true")) {
          return Json(true);
        }
        return Error("invalid literal");
      case 'f':
        if (Consume("false")) {
          return Json(false);
        }
        return Error("invalid literal");
      case 'n':
        if (Consume("null")) {
          return Json(nullptr);
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-" || token == "+") {
      return Error("invalid number");
    }
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return Json(v);
      }
      // Overflowing int64 falls through to double.
    }
    // std::from_chars for double is available in libstdc++ >= 11.
    double d = 0;
    auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || p != token.data() + token.size()) {
      return Error("invalid number");
    }
    return Json(d);
  }

  Result<std::string> ParseString() {
    if (AtEnd() || Peek() != '"') {
      return Error("expected string");
    }
    ++pos_;
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Error("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Error("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs handled as two
          // separate \u escapes producing a 4-byte sequence).
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 6 <= text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              low <<= 4;
              if (h >= '0' && h <= '9') {
                low |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                low |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                low |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            unsigned cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::MakeArray();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        return Error("unterminated array");
      }
      char c = text_[pos_++];
      if (c == ']') {
        return arr;
      }
      if (c != ',') {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (AtEnd() || text_[pos_++] != ':') {
        return Error("expected ':' in object");
      }
      SkipWhitespace();
      ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        return Error("unterminated object");
      }
      char c = text_[pos_++];
      if (c == '}') {
        return obj;
      }
      if (c != ',') {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Parse(); }

}  // namespace configerator
