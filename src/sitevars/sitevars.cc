#include "src/sitevars/sitevars.h"

#include <algorithm>

#include "src/util/strings.h"

namespace configerator {

std::string_view SitevarTypeName(SitevarType type) {
  switch (type) {
    case SitevarType::kUnknown:
      return "unknown";
    case SitevarType::kBool:
      return "bool";
    case SitevarType::kInt:
      return "int";
    case SitevarType::kDouble:
      return "double";
    case SitevarType::kGeneralString:
      return "string";
    case SitevarType::kJsonString:
      return "json-string";
    case SitevarType::kTimestampString:
      return "timestamp-string";
    case SitevarType::kList:
      return "list";
    case SitevarType::kObject:
      return "object";
  }
  return "?";
}

SitevarType ClassifySitevarValue(const Json& value) {
  switch (value.kind()) {
    case Json::Kind::kNull:
      return SitevarType::kUnknown;
    case Json::Kind::kBool:
      return SitevarType::kBool;
    case Json::Kind::kInt:
      return SitevarType::kInt;
    case Json::Kind::kDouble:
      return SitevarType::kDouble;
    case Json::Kind::kArray:
      return SitevarType::kList;
    case Json::Kind::kObject:
      return SitevarType::kObject;
    case Json::Kind::kString: {
      const std::string& s = value.as_string();
      if (LooksLikeTimestamp(s)) {
        return SitevarType::kTimestampString;
      }
      // A JSON string must parse AND look structured (object/array), or a
      // bare "123" would be misclassified.
      std::string_view trimmed = StrTrim(s);
      if (!trimmed.empty() && (trimmed.front() == '{' || trimmed.front() == '[')) {
        if (Json::Parse(trimmed).ok()) {
          return SitevarType::kJsonString;
        }
      }
      return SitevarType::kGeneralString;
    }
  }
  return SitevarType::kUnknown;
}

SitevarStore::SitevarStore() {
  Interp::Hooks hooks;  // No imports/exports inside sitevar expressions.
  interp_ = std::make_unique<Interp>(nullptr, std::move(hooks));
}

SitevarStore::~SitevarStore() = default;

Result<Json> SitevarStore::Evaluate(const std::string& expression) const {
  // Wrap the expression into a single assignment and evaluate the module.
  std::string source = "__sitevar_value = (" + expression + ")\n";
  ASSIGN_OR_RETURN(std::shared_ptr<Module> module,
                   ParseCsl(source, "<sitevar>"));
  auto globals = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
  RETURN_IF_ERROR(interp_->EvalModule(*module, globals, /*exports_enabled=*/false));
  Value* value = globals->Find("__sitevar_value");
  if (value == nullptr) {
    return InternalError("sitevar expression produced no value");
  }
  return value->ToJson();
}

namespace {

// Computes the majority type over a history window.
SitevarType MajorityType(const std::deque<Json>& history) {
  std::map<SitevarType, size_t> counts;
  for (const Json& value : history) {
    ++counts[ClassifySitevarValue(value)];
  }
  SitevarType best = SitevarType::kUnknown;
  size_t best_count = 0;
  for (const auto& [type, count] : counts) {
    if (count > best_count) {
      best = type;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

Result<SitevarUpdateResult> SitevarStore::Set(const std::string& name,
                                              const std::string& expression,
                                              const std::string& author) {
  ASSIGN_OR_RETURN(Json value, Evaluate(expression));

  SitevarUpdateResult result;

  auto it = sitevars_.find(name);
  // The checker guards every update, including the first value ever set.
  if (it != sitevars_.end() && it->second.checker.is_callable()) {
    auto check = interp_->CallValue(it->second.checker, {Value::FromJson(value)}, {});
    if (!check.ok()) {
      return InvalidConfigError(StrFormat("sitevar '%s' checker rejected: %s",
                                          name.c_str(),
                                          check.status().message().c_str()));
    }
    if (check->is_bool() && !check->as_bool()) {
      return InvalidConfigError("sitevar '" + name + "' checker returned False");
    }
  }
  if (it != sitevars_.end() && !it->second.history.empty()) {
    SitevarRecord& record = it->second;
    // Top-level type deviation warning.
    SitevarType historical = MajorityType(record.history);
    SitevarType incoming = ClassifySitevarValue(value);
    if (historical != SitevarType::kUnknown && incoming != historical) {
      result.warnings.push_back(StrFormat(
          "sitevar '%s' has historically been %s; this update is %s",
          name.c_str(), std::string(SitevarTypeName(historical)).c_str(),
          std::string(SitevarTypeName(incoming)).c_str()));
    }
    // Per-field deviation warnings for object sitevars.
    if (incoming == SitevarType::kObject && historical == SitevarType::kObject) {
      std::map<std::string, SitevarType> field_types = InferredFieldTypes(name);
      for (const auto& [field, field_value] : value.as_object()) {
        auto ft = field_types.find(field);
        if (ft == field_types.end()) {
          continue;  // New field: no history to deviate from.
        }
        SitevarType incoming_field = ClassifySitevarValue(field_value);
        if (ft->second != SitevarType::kUnknown && incoming_field != ft->second) {
          result.warnings.push_back(StrFormat(
              "sitevar '%s' field '%s' has historically been %s; this update "
              "is %s",
              name.c_str(), field.c_str(),
              std::string(SitevarTypeName(ft->second)).c_str(),
              std::string(SitevarTypeName(incoming_field)).c_str()));
        }
      }
    }
  }

  SitevarRecord& record = sitevars_[name];
  record.history.push_back(value);
  record.authors.push_back(author);
  while (record.history.size() > kMaxHistory) {
    record.history.pop_front();
    record.authors.pop_front();
  }
  result.value = std::move(value);
  return result;
}

Result<Json> SitevarStore::Get(const std::string& name) const {
  auto it = sitevars_.find(name);
  if (it == sitevars_.end() || it->second.history.empty()) {
    return NotFoundError("no sitevar '" + name + "'");
  }
  return it->second.history.back();
}

Status SitevarStore::SetChecker(const std::string& name,
                                const std::string& csl_source) {
  ASSIGN_OR_RETURN(std::shared_ptr<Module> module,
                   ParseCsl(csl_source, "<checker:" + name + ">"));
  auto globals = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
  RETURN_IF_ERROR(interp_->EvalModule(*module, globals, /*exports_enabled=*/false));
  Value* check = globals->Find("check");
  if (check == nullptr || !check->is_callable()) {
    return InvalidArgumentError("checker source must define check(value)");
  }
  checker_modules_.push_back(module);
  sitevars_[name].checker = *check;
  return OkStatus();
}

SitevarType SitevarStore::InferredType(const std::string& name) const {
  auto it = sitevars_.find(name);
  if (it == sitevars_.end() || it->second.history.empty()) {
    return SitevarType::kUnknown;
  }
  return MajorityType(it->second.history);
}

std::map<std::string, SitevarType> SitevarStore::InferredFieldTypes(
    const std::string& name) const {
  std::map<std::string, SitevarType> out;
  auto it = sitevars_.find(name);
  if (it == sitevars_.end()) {
    return out;
  }
  // Majority type per field across historical object values.
  std::map<std::string, std::map<SitevarType, size_t>> counts;
  for (const Json& value : it->second.history) {
    if (!value.is_object()) {
      continue;
    }
    for (const auto& [field, field_value] : value.as_object()) {
      ++counts[field][ClassifySitevarValue(field_value)];
    }
  }
  for (const auto& [field, type_counts] : counts) {
    SitevarType best = SitevarType::kUnknown;
    size_t best_count = 0;
    for (const auto& [type, count] : type_counts) {
      if (count > best_count) {
        best = type;
        best_count = count;
      }
    }
    out[field] = best;
  }
  return out;
}

std::vector<std::string> SitevarStore::UpdateAuthors(const std::string& name) const {
  auto it = sitevars_.find(name);
  if (it == sitevars_.end()) {
    return {};
  }
  return {it->second.authors.begin(), it->second.authors.end()};
}

}  // namespace configerator
