// Sitevars (paper §3.2): the easy-mode shim for frontend configs —
// configurable name/value pairs whose value is an expression, updated
// through a UI without writing Python/Thrift. Because values are weakly
// typed, the tool infers each sitevar's data type from its historical values
// (is this field a string? a JSON string? a timestamp string?) and *warns*
// when an update deviates — the paper's typo defense for legacy sitevars
// that predate schemas.

#ifndef SRC_SITEVARS_SITEVARS_H_
#define SRC_SITEVARS_SITEVARS_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/lang/interp.h"
#include "src/util/status.h"

namespace configerator {

// The inferred type lattice. String subtypes mirror the paper: "it infers
// whether a sitevar's field is a string. If so, it further infers whether it
// is a JSON string, a timestamp string, or a general string."
enum class SitevarType {
  kUnknown,
  kBool,
  kInt,
  kDouble,
  kGeneralString,
  kJsonString,
  kTimestampString,
  kList,
  kObject,
};

std::string_view SitevarTypeName(SitevarType type);

// Classifies one JSON value (string subtype detection included).
SitevarType ClassifySitevarValue(const Json& value);

struct SitevarUpdateResult {
  Json value;                          // The evaluated new value.
  std::vector<std::string> warnings;   // Type-deviation warnings for the UI.
};

class SitevarStore {
 public:
  SitevarStore();
  ~SitevarStore();

  // Evaluates `expression` (a CSL expression, e.g. `{"limit": 3 * 100}`) and
  // stores the result under `name`. Returns warnings when the value's
  // inferred type deviates from history; fails if the expression is invalid
  // or the sitevar's checker rejects the value.
  Result<SitevarUpdateResult> Set(const std::string& name,
                                  const std::string& expression,
                                  const std::string& author);

  Result<Json> Get(const std::string& name) const;
  bool Exists(const std::string& name) const { return sitevars_.count(name) > 0; }

  // Installs a checker: CSL source defining `def check(value)` that asserts
  // invariants (the PHP checker of the paper). Runs on every later Set.
  Status SetChecker(const std::string& name, const std::string& csl_source);

  // Majority type over the value history (kUnknown if never set).
  SitevarType InferredType(const std::string& name) const;
  // For object sitevars: per-field inferred types.
  std::map<std::string, SitevarType> InferredFieldTypes(
      const std::string& name) const;

  std::vector<std::string> UpdateAuthors(const std::string& name) const;
  size_t size() const { return sitevars_.size(); }

 private:
  struct SitevarRecord {
    std::deque<Json> history;  // Most recent last; bounded.
    std::deque<std::string> authors;
    Value checker;  // Null value if no checker installed.
  };

  Result<Json> Evaluate(const std::string& expression) const;

  static constexpr size_t kMaxHistory = 64;

  std::map<std::string, SitevarRecord> sitevars_;
  std::unique_ptr<Interp> interp_;
  // Modules backing checkers must stay alive as long as their closures.
  std::vector<std::shared_ptr<Module>> checker_modules_;
};

}  // namespace configerator

#endif  // SRC_SITEVARS_SITEVARS_H_
