// Simulated-time primitives shared by the event queue and the simulator.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace configerator {

// Simulated time in microseconds.
using SimTime = int64_t;

constexpr SimTime kSimMicrosecond = 1;
constexpr SimTime kSimMillisecond = 1000;
constexpr SimTime kSimSecond = 1'000'000;
constexpr SimTime kSimMinute = 60 * kSimSecond;
constexpr SimTime kSimHour = 60 * kSimMinute;
constexpr SimTime kSimDay = 24 * kSimHour;

inline double SimToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSimSecond);
}

}  // namespace configerator

#endif  // SRC_SIM_TIME_H_
