// Discrete-event simulator. The distribution experiments (Figs 14, the
// PackageVessel and push-vs-pull benches) run the real protocol code over
// this clock instead of wall time, so a fleet of hundreds of thousands of
// servers across continents fits on a laptop.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace configerator {

// Simulated time in microseconds.
using SimTime = int64_t;

constexpr SimTime kSimMicrosecond = 1;
constexpr SimTime kSimMillisecond = 1000;
constexpr SimTime kSimSecond = 1'000'000;
constexpr SimTime kSimMinute = 60 * kSimSecond;
constexpr SimTime kSimHour = 60 * kSimMinute;
constexpr SimTime kSimDay = 24 * kSimHour;

inline double SimToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSimSecond);
}

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now (clamped to >= 0). Events at the
  // same instant run in scheduling order (stable).
  void Schedule(SimTime delay, std::function<void()> fn);
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs the next event; returns false if the queue is empty.
  bool Step();

  // Runs events with timestamp <= `deadline`; the clock ends at `deadline`.
  void RunUntil(SimTime deadline);

  // Runs until no events remain (or `max_events` processed).
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  size_t pending_events() const { return queue_.size(); }
  uint64_t processed_events() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // Tie-break: FIFO among same-time events.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace configerator

#endif  // SRC_SIM_SIMULATOR_H_
