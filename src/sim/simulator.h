// Discrete-event simulator. The distribution experiments (Figs 14, the
// PackageVessel and push-vs-pull benches) run the real protocol code over
// this clock instead of wall time, so a fleet of hundreds of thousands of
// servers across continents fits on a laptop.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace configerator {

class Simulator {
 public:
  // kCalendar is the default scheduler (amortized O(1) push/pop). kHeap is
  // the original binary heap, retained as the reference for the differential
  // battery; both honor the identical (time, seq) FIFO ordering contract.
  enum class QueueKind { kCalendar, kHeap };

  explicit Simulator(QueueKind kind = QueueKind::kCalendar);

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now (clamped to >= 0). Events at the
  // same instant run in scheduling order (stable).
  void Schedule(SimTime delay, std::function<void()> fn);
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs the next event; returns false if the queue is empty.
  bool Step();

  // Runs events with timestamp <= `deadline`; the clock ends at `deadline`.
  void RunUntil(SimTime deadline);

  // Runs until no events remain (or `max_events` processed).
  void RunUntilIdle(uint64_t max_events = UINT64_MAX);

  size_t pending_events() const { return queue_->size(); }
  uint64_t processed_events() const { return processed_; }

 private:
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::unique_ptr<EventQueue> queue_;
};

}  // namespace configerator

#endif  // SRC_SIM_SIMULATOR_H_
