// Fleet topology: regions → clusters → servers, with a latency model shaped
// like Facebook's geo-distributed deployment in the paper (multiple regions
// across continents; each data center has clusters of thousands of servers).

#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace configerator {

// Dense server address. Comparable/hashable so it can key maps.
struct ServerId {
  int32_t region = 0;
  int32_t cluster = 0;  // Within region.
  int32_t server = 0;   // Within cluster.

  bool operator==(const ServerId&) const = default;
  auto operator<=>(const ServerId&) const = default;

  std::string ToString() const;
};

struct LatencyModel {
  // One-way network latencies (before jitter).
  SimTime intra_cluster = 200 * kSimMicrosecond;
  SimTime intra_region = 1 * kSimMillisecond;
  SimTime inter_region = 40 * kSimMillisecond;  // Continent-scale.
  double jitter_fraction = 0.2;  // Uniform [0, f) multiplicative jitter.

  // Per-server NIC bandwidth, used by PackageVessel transfer modeling.
  double nic_bytes_per_sec = 1.25e9;  // 10 Gbps.
};

class Topology {
 public:
  Topology(int regions, int clusters_per_region, int servers_per_cluster,
           LatencyModel latency = LatencyModel{});

  int regions() const { return regions_; }
  int clusters_per_region() const { return clusters_per_region_; }
  int servers_per_cluster() const { return servers_per_cluster_; }
  int64_t total_servers() const {
    return static_cast<int64_t>(regions_) * clusters_per_region_ *
           servers_per_cluster_;
  }
  const LatencyModel& latency_model() const { return latency_; }

  bool Contains(const ServerId& id) const;

  // One-way latency between two servers including jitter.
  SimTime Latency(const ServerId& from, const ServerId& to, Rng& rng) const;

  // Transfer time for `bytes` at NIC line rate (excluding propagation).
  SimTime TransmitTime(int64_t bytes) const;

  // Enumerate all servers (row-major). Useful for fleet setup loops.
  std::vector<ServerId> AllServers() const;
  std::vector<ServerId> ServersInCluster(int region, int cluster) const;

  // Dense index in [0, total_servers) for per-server arrays.
  int64_t FlatIndex(const ServerId& id) const;
  ServerId FromFlatIndex(int64_t index) const;

 private:
  int regions_;
  int clusters_per_region_;
  int servers_per_cluster_;
  LatencyModel latency_;
};

}  // namespace configerator

template <>
struct std::hash<configerator::ServerId> {
  size_t operator()(const configerator::ServerId& id) const noexcept {
    uint64_t packed = (static_cast<uint64_t>(static_cast<uint32_t>(id.region)) << 42) ^
                      (static_cast<uint64_t>(static_cast<uint32_t>(id.cluster)) << 21) ^
                      static_cast<uint64_t>(static_cast<uint32_t>(id.server));
    uint64_t state = packed;
    return static_cast<size_t>(configerator::SplitMix64(state));
  }
};

#endif  // SRC_SIM_TOPOLOGY_H_
