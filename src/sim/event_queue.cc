#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace configerator {

namespace {

// "a pops later than b" — used with the std::*_heap algorithms, which build a
// max-heap with respect to the comparator, so the top is the (time, seq)
// minimum. Identical to the original Simulator comparator.
struct Later {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

constexpr size_t kMinBuckets = 64;
constexpr size_t kMaxBuckets = size_t{1} << 21;

// Largest multiple of `width` at or below `t` (floor, not truncation — safe
// for negative times even though the simulator never schedules one).
SimTime FloorAlign(SimTime t, SimTime width) {
  SimTime base = t - t % width;
  if (base > t) {
    base -= width;
  }
  return base;
}

}  // namespace

void HeapEventQueue::Push(SimEvent event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimEvent HeapEventQueue::PopMin() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  SimEvent event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

CalendarEventQueue::CalendarEventQueue() { buckets_.assign(kMinBuckets, {}); }

void CalendarEventQueue::Push(SimEvent event) {
  ++size_;
  if (event.time < base_) {
    // The cursor already advanced past this window (RunUntil peeks ahead of
    // the clock); the near heap absorbs late arrivals exactly.
    near_.push_back(std::move(event));
    std::push_heap(near_.begin(), near_.end(), Later{});
  } else if (InHorizon(event.time)) {
    buckets_[SlotFor(event.time)].push_back(std::move(event));
    ++ring_size_;
  } else {
    overflow_.push_back(std::move(event));
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
  if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    Rebuild(buckets_.size() * 2);
  }
}

SimEvent CalendarEventQueue::PopMin() {
  EnsureNear();
  std::pop_heap(near_.begin(), near_.end(), Later{});
  SimEvent event = std::move(near_.back());
  near_.pop_back();
  --size_;
  // Hysteresis: grow at occupancy 2, shrink below 1/8 — a queue oscillating
  // around one size never thrashes rebuilds.
  if (buckets_.size() > kMinBuckets && size_ * 8 < buckets_.size()) {
    Rebuild(size_ * 2);
  }
  return event;
}

SimTime CalendarEventQueue::MinTime() {
  EnsureNear();
  return near_.front().time;
}

void CalendarEventQueue::EnsureNear() {
  while (near_.empty() && size_ > 0) {
    if (ring_size_ == 0) {
      // Everything pending sits beyond the horizon: re-anchor the ring at
      // the overflow minimum instead of stepping empty windows toward it.
      base_ = FloorAlign(overflow_.front().time, width_);
      MigrateOverflow();
      continue;
    }
    while (buckets_[head_].empty()) {
      head_ = (head_ + 1) % buckets_.size();
      base_ += width_;
    }
    // Drain one window into the near heap. Everything else is >= the new
    // base_, so near_ now holds exactly the globally-earliest events.
    near_.swap(buckets_[head_]);
    ring_size_ -= near_.size();
    std::make_heap(near_.begin(), near_.end(), Later{});
    head_ = (head_ + 1) % buckets_.size();
    base_ += width_;
    MigrateOverflow();
  }
}

void CalendarEventQueue::MigrateOverflow() {
  while (!overflow_.empty() && InHorizon(overflow_.front().time)) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    SimEvent event = std::move(overflow_.back());
    overflow_.pop_back();
    buckets_[SlotFor(event.time)].push_back(std::move(event));
    ++ring_size_;
  }
}

void CalendarEventQueue::Rebuild(size_t target_buckets) {
  ++rebuilds_;
  std::vector<SimEvent> all;
  all.reserve(size_);
  for (SimEvent& event : near_) {
    all.push_back(std::move(event));
  }
  near_.clear();
  for (std::vector<SimEvent>& bucket : buckets_) {
    for (SimEvent& event : bucket) {
      all.push_back(std::move(event));
    }
  }
  for (SimEvent& event : overflow_) {
    all.push_back(std::move(event));
  }
  overflow_.clear();
  ring_size_ = 0;

  size_t count = kMinBuckets;
  while (count < target_buckets && count < kMaxBuckets) {
    count <<= 1;
  }
  buckets_.assign(count, {});
  head_ = 0;

  if (all.empty()) {
    width_ = kSimMillisecond;
    return;
  }
  SimTime lo = all.front().time;
  SimTime hi = lo;
  for (const SimEvent& event : all) {
    lo = std::min(lo, event.time);
    hi = std::max(hi, event.time);
  }
  // Width tracks the mean inter-event gap so steady-state occupancy stays
  // O(1) per bucket. A zero span (every event at one instant) degrades to a
  // single bucket, i.e. plain heap behavior.
  width_ = std::max<SimTime>(1, (hi - lo) / static_cast<SimTime>(count) + 1);
  base_ = FloorAlign(lo, width_);
  for (SimEvent& event : all) {
    if (InHorizon(event.time)) {
      buckets_[SlotFor(event.time)].push_back(std::move(event));
      ++ring_size_;
    } else {
      overflow_.push_back(std::move(event));
      std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
  }
}

}  // namespace configerator
