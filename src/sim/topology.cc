#include "src/sim/topology.h"

#include <cassert>

#include "src/util/strings.h"

namespace configerator {

std::string ServerId::ToString() const {
  return StrFormat("r%d/c%d/s%d", region, cluster, server);
}

Topology::Topology(int regions, int clusters_per_region, int servers_per_cluster,
                   LatencyModel latency)
    : regions_(regions),
      clusters_per_region_(clusters_per_region),
      servers_per_cluster_(servers_per_cluster),
      latency_(latency) {
  assert(regions > 0 && clusters_per_region > 0 && servers_per_cluster > 0);
}

bool Topology::Contains(const ServerId& id) const {
  return id.region >= 0 && id.region < regions_ && id.cluster >= 0 &&
         id.cluster < clusters_per_region_ && id.server >= 0 &&
         id.server < servers_per_cluster_;
}

SimTime Topology::Latency(const ServerId& from, const ServerId& to,
                          Rng& rng) const {
  SimTime base;
  if (from.region != to.region) {
    base = latency_.inter_region;
  } else if (from.cluster != to.cluster) {
    base = latency_.intra_region;
  } else if (from.server != to.server) {
    base = latency_.intra_cluster;
  } else {
    return 0;  // Local delivery.
  }
  double jitter = 1.0 + latency_.jitter_fraction * rng.NextDouble();
  return static_cast<SimTime>(static_cast<double>(base) * jitter);
}

SimTime Topology::TransmitTime(int64_t bytes) const {
  double seconds = static_cast<double>(bytes) / latency_.nic_bytes_per_sec;
  return static_cast<SimTime>(seconds * static_cast<double>(kSimSecond));
}

std::vector<ServerId> Topology::AllServers() const {
  std::vector<ServerId> out;
  out.reserve(static_cast<size_t>(total_servers()));
  for (int r = 0; r < regions_; ++r) {
    for (int c = 0; c < clusters_per_region_; ++c) {
      for (int s = 0; s < servers_per_cluster_; ++s) {
        out.push_back(ServerId{r, c, s});
      }
    }
  }
  return out;
}

std::vector<ServerId> Topology::ServersInCluster(int region, int cluster) const {
  std::vector<ServerId> out;
  out.reserve(static_cast<size_t>(servers_per_cluster_));
  for (int s = 0; s < servers_per_cluster_; ++s) {
    out.push_back(ServerId{region, cluster, s});
  }
  return out;
}

int64_t Topology::FlatIndex(const ServerId& id) const {
  return (static_cast<int64_t>(id.region) * clusters_per_region_ + id.cluster) *
             servers_per_cluster_ +
         id.server;
}

ServerId Topology::FromFlatIndex(int64_t index) const {
  ServerId id;
  id.server = static_cast<int32_t>(index % servers_per_cluster_);
  int64_t rest = index / servers_per_cluster_;
  id.cluster = static_cast<int32_t>(rest % clusters_per_region_);
  id.region = static_cast<int32_t>(rest / clusters_per_region_);
  return id;
}

}  // namespace configerator
