#include "src/sim/simulator.h"

#include <utility>

namespace configerator {

Simulator::Simulator(QueueKind kind) {
  if (kind == QueueKind::kHeap) {
    queue_ = std::make_unique<HeapEventQueue>();
  } else {
    queue_ = std::make_unique<CalendarEventQueue>();
  }
}

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  queue_->Push(SimEvent{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_->empty()) {
    return false;
  }
  SimEvent event = queue_->PopMin();
  now_ = event.time;
  ++processed_;
  event.fn();
  return true;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_->empty() && queue_->MinTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  uint64_t n = 0;
  while (n < max_events && Step()) {
    ++n;
  }
}

}  // namespace configerator
