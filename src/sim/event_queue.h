// Pending-event queues for the discrete-event simulator.
//
// The ordering contract both implementations honor exactly: events pop in
// ascending (time, seq) order — seq is the scheduling sequence number, so
// same-instant events run FIFO in the order they were scheduled.
//
// `HeapEventQueue` is the original binary heap, retained as the reference
// implementation for the differential scheduler battery
// (tests/sim_differential_test.cc). `CalendarEventQueue` is the default at
// scale: a bucketed calendar queue (R. Brown, CACM '88) whose push/pop are
// amortized O(1) when event times are spread across the horizon, instead of
// the heap's O(log n) — with millions of in-flight events at 100k servers
// that difference dominates the scheduler.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/time.h"

namespace configerator {

struct SimEvent {
  SimTime time = 0;
  uint64_t seq = 0;  // Tie-break: FIFO among same-time events.
  std::function<void()> fn;
};

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void Push(SimEvent event) = 0;
  // Pops the globally-minimal event by (time, seq). Precondition: !empty().
  virtual SimEvent PopMin() = 0;
  // Timestamp of the next event to pop. Precondition: !empty(). Non-const:
  // the calendar queue may advance its cursor to locate the minimum.
  virtual SimTime MinTime() = 0;
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }
};

// The original std::priority_queue scheduler, kept as the differential
// reference. Behavior is the specification; the calendar queue must match it
// event-for-event.
class HeapEventQueue : public EventQueue {
 public:
  void Push(SimEvent event) override;
  SimEvent PopMin() override;
  SimTime MinTime() override { return heap_.front().time; }
  size_t size() const override { return heap_.size(); }

 private:
  // Binary min-heap over (time, seq), stored flat and driven with the
  // std::*_heap algorithms so PopMin can move the payload out.
  std::vector<SimEvent> heap_;
};

// Bucketed calendar queue with three tiers:
//
//   near_     min-heap of every event with time <  base_
//   buckets_  ring of width_-wide windows covering [base_, base_ + N*width_)
//   overflow_ min-heap of events at or beyond the ring horizon
//
// Push drops an event into its window in O(1) (heap push into near_/overflow_
// at the edges). PopMin serves from near_; when near_ drains, the earliest
// non-empty ring bucket — one width_-wide window — is heapified into near_
// and base_ advances past it, pulling newly-in-horizon overflow events into
// the ring. Every event therefore passes through the near_ heap, but that
// heap only ever holds one window's worth of events, so its log factor is
// over the bucket occupancy (~O(1) after resize), not the queue size.
//
// The queue resizes (amortized O(1)) to keep bucket occupancy constant:
// bucket count tracks the queue size and width_ tracks the mean inter-event
// gap. Degenerate schedules (every event at one instant, or one far-future
// straggler) collapse to plain heap behavior — slower, never incorrect.
class CalendarEventQueue : public EventQueue {
 public:
  CalendarEventQueue();

  void Push(SimEvent event) override;
  SimEvent PopMin() override;
  SimTime MinTime() override;
  size_t size() const override { return size_; }

  // Introspection for tests and benches.
  size_t bucket_count() const { return buckets_.size(); }
  SimTime bucket_width() const { return width_; }
  uint64_t rebuilds() const { return rebuilds_; }

 private:
  // Refills near_ from the ring/overflow. Postcondition: near_ is non-empty
  // iff size_ > 0, and near_ holds exactly the events with time < base_.
  void EnsureNear();
  // Moves overflow events that now fall inside the ring horizon into their
  // buckets.
  void MigrateOverflow();
  // Rebuilds with ~`target_buckets` buckets and a width fit to the current
  // event-time span. Collects every pending event and redistributes.
  void Rebuild(size_t target_buckets);
  // Ring slot for `time`, valid when InHorizon(time).
  size_t SlotFor(SimTime time) const {
    return (head_ + static_cast<size_t>((time - base_) / width_)) %
           buckets_.size();
  }
  bool InHorizon(SimTime time) const {
    // Division form: base_ + N*width_ can overflow SimTime for far-future
    // widths, (time - base_) / width_ cannot (time >= base_ here).
    return static_cast<uint64_t>((time - base_) / width_) < buckets_.size();
  }

  std::vector<SimEvent> near_;
  std::vector<std::vector<SimEvent>> buckets_;
  std::vector<SimEvent> overflow_;
  SimTime width_ = kSimMillisecond;
  SimTime base_ = 0;   // Start of the ring head's window; near_ holds < base_.
  size_t head_ = 0;    // Ring index of the window starting at base_.
  size_t size_ = 0;    // Total events across all three tiers.
  size_t ring_size_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace configerator

#endif  // SRC_SIM_EVENT_QUEUE_H_
