// Message-passing layer over the simulator: point-to-point sends with
// topology-derived latency and a seed-deterministic fault model ("failures
// are the norm" — §3.4). Components register handlers per server and exchange
// opaque payloads.
//
// Fault model (all deterministic given the Network seed):
//  * Crash-style server failures (FailureInjector): messages to/from a down
//    server are dropped, like a TCP connection that will time out.
//  * Network partitions, including asymmetric ones: a partition rule blocks
//    sends from one server group to another (optionally both directions).
//    Blocked sends are dropped at send time; messages already in flight when
//    a partition starts still arrive.
//  * Per-link faults (LinkFault): probabilistic message drop, duplication,
//    reordering, and extra delivery delay, configured per directed link or
//    globally. FIFO channels (SendFifo) model TCP connections and therefore
//    never reorder — but they can still drop, duplicate, and delay.
//
// Every outcome is counted in aggregate (stats(), always exact) and per
// directed link. Per-link counters are lazy: a LinkStats record materializes
// the first time a link carries or drops a message, so a 100k-server fleet
// pays memory only for links that actually saw traffic. The scale invariant —
// aggregate == sum over materialized links, untouched links allocate nothing
// — is property-tested under a seeded fault barrage (tests/sim_test.cc).
//
// Per-server and per-link state is keyed by dense integer handles
// (Topology::FlatIndex; a directed link packs two 32-bit flat indices into a
// uint64_t), so the hot path is flat-array/open-hash work instead of
// tree-map walks over 12-byte ServerId tuples.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/topology.h"
#include "src/util/rng.h"

namespace configerator {

// Injects crashes/recoveries and answers liveness queries. With a topology
// attached (Network does this), liveness is one dense bit test per query;
// ids outside the topology fall back to a small set so the injector stays
// usable standalone.
class FailureInjector {
 public:
  FailureInjector() = default;

  void AttachTopology(const Topology* topology);

  void Crash(const ServerId& id);
  void Recover(const ServerId& id);
  bool IsDown(const ServerId& id) const {
    if (topology_ != nullptr && topology_->Contains(id)) {
      return down_[static_cast<size_t>(topology_->FlatIndex(id))] != 0;
    }
    return other_down_.count(id) > 0;
  }
  size_t down_count() const { return down_count_; }

 private:
  const Topology* topology_ = nullptr;
  std::vector<uint8_t> down_;  // Dense, by flat index; sized on attach.
  std::unordered_set<ServerId> other_down_;  // Ids outside the topology.
  size_t down_count_ = 0;
};

// Probabilistic fault configuration for a directed link (or the whole
// network, via SetDefaultFault). Zero-initialized = no faults.
struct LinkFault {
  double drop_prob = 0;     // P(message silently lost).
  double dup_prob = 0;      // P(message delivered twice).
  double reorder_prob = 0;  // P(delivery delay reshuffled) — Send() only.
  SimTime extra_delay = 0;          // Fixed extra delivery delay.
  SimTime extra_delay_jitter = 0;   // Plus uniform [0, jitter).

  bool active() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           extra_delay > 0 || extra_delay_jitter > 0;
  }
};

// Per-directed-link outcome counters.
struct LinkStats {
  uint64_t sent = 0;        // Accepted for delivery (past drop faults).
  uint64_t delivered = 0;   // Handler actually ran (duplicates count twice).
  uint64_t dropped = 0;     // Down endpoint, partition, or drop fault.
  uint64_t delayed = 0;     // A delay fault added latency.
  uint64_t duplicated = 0;  // A duplicate delivery was scheduled.
  uint64_t reordered = 0;   // A reorder fault reshuffled the delay.
};

// Network-wide aggregate of the same counters.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  uint64_t delayed = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t bytes_sent = 0;
};

class Network {
 public:
  Network(Simulator* sim, Topology topology, uint64_t seed = 1);

  // The failure injector points into topology_; pin the object.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return *sim_; }
  const Topology& topology() const { return topology_; }
  FailureInjector& failures() { return failures_; }
  const FailureInjector& failures() const { return failures_; }
  Rng& rng() { return rng_; }

  // Delivers `deliver` at the destination after latency + serialization time
  // for `bytes`, subject to the fault model. `deliver` runs only if the
  // destination is still up on arrival.
  void Send(const ServerId& from, const ServerId& to, int64_t bytes,
            std::function<void()> deliver);

  // Like Send, but messages on the same (from, to) channel are delivered in
  // send order — the TCP-connection semantics ZooKeeper's ordering guarantees
  // rest on. Reorder faults do not apply; drop/dup/delay do.
  void SendFifo(const ServerId& from, const ServerId& to, int64_t bytes,
                std::function<void()> deliver);

  // --- Partitions -----------------------------------------------------------

  // Blocks traffic between the two groups (both directions). Returns a rule
  // id usable with HealPartition.
  uint64_t Partition(const std::vector<ServerId>& group_a,
                     const std::vector<ServerId>& group_b);

  // Asymmetric partition: blocks only `from_group` → `to_group` traffic
  // (replies still flow — the classic half-open failure).
  uint64_t PartitionOneWay(const std::vector<ServerId>& from_group,
                           const std::vector<ServerId>& to_group);

  bool HealPartition(uint64_t rule_id);
  void HealAllPartitions() { partitions_.clear(); }
  size_t partition_count() const { return partitions_.size(); }

  // True if a send from → to would be blocked by a partition rule right now.
  bool Blocked(const ServerId& from, const ServerId& to) const;

  // --- Link faults ----------------------------------------------------------

  // Per-directed-link fault override; replaces any previous fault for that
  // link. The default fault applies to links without an override.
  void SetLinkFault(const ServerId& from, const ServerId& to, LinkFault fault);
  void SetDefaultFault(LinkFault fault) { default_fault_ = fault; }
  void ClearLinkFaults() {
    link_faults_.clear();
    default_fault_ = LinkFault{};
  }

  // --- Liveness query -------------------------------------------------------

  // True if a message sent now from → to could be delivered: both endpoints
  // up and no partition rule in the way. (Probabilistic faults may still
  // drop it.) Higher layers (PackageVessel peer selection) use this the way
  // production code uses a connect() failure.
  bool CanDeliver(const ServerId& from, const ServerId& to) const {
    return !failures_.IsDown(from) && !failures_.IsDown(to) && !Blocked(from, to);
  }

  // --- Stats ----------------------------------------------------------------

  const NetStats& stats() const { return stats_; }
  // Counters for one directed link (zeroes if the link never carried a
  // message).
  LinkStats link_stats(const ServerId& from, const ServerId& to) const;
  // Number of directed links with materialized counters — i.e. links that
  // carried or dropped at least one message. Property tests assert untouched
  // links never allocate.
  size_t materialized_links() const { return link_pool_.size(); }
  // Sum of every materialized link's counters; must equal stats() exactly
  // (bytes are tracked in aggregate only).
  NetStats SumLinkStats() const;

  // Zeroes the aggregate and per-link counters. Harness runs sharing a
  // process (the shrinker builds dozens) reset between runs so one run's
  // delivery counts can never leak into the next run's assertions.
  void ResetStats() {
    stats_ = NetStats{};
    link_index_.clear();
    link_pool_.clear();
  }

  // Legacy aggregate accessors — benches report these as overhead measures.
  uint64_t messages_sent() const { return stats_.messages_sent; }
  uint64_t messages_dropped() const { return stats_.dropped; }
  uint64_t bytes_sent() const { return stats_.bytes_sent; }

 private:
  // A partition rule holds each group as a dense bitset over flat server
  // indices: Blocked() is a couple of bit tests per rule, independent of
  // group size.
  struct PartitionRule {
    uint64_t id = 0;
    std::vector<uint64_t> from_bits;
    std::vector<uint64_t> to_bits;
    bool bidirectional = false;
  };

  uint32_t Flat(const ServerId& id) const {
    return static_cast<uint32_t>(topology_.FlatIndex(id));
  }
  // Directed link key: two 32-bit dense server handles packed into one word.
  uint64_t PackLink(const ServerId& from, const ServerId& to) const {
    return (static_cast<uint64_t>(Flat(from)) << 32) |
           static_cast<uint64_t>(Flat(to));
  }
  static bool TestBit(const std::vector<uint64_t>& bits, uint32_t index) {
    return (bits[index >> 6] >> (index & 63)) & 1;
  }
  uint64_t AddPartitionRule(const std::vector<ServerId>& from_group,
                            const std::vector<ServerId>& to_group,
                            bool bidirectional);

  const LinkFault& EffectiveFault(uint64_t link) const;
  // Index of the link's pooled counters, materializing them on first use.
  uint32_t LinkIndexFor(uint64_t link);
  // Shared by Send/SendFifo after the channel-independent fault handling.
  void ScheduleDelivery(const ServerId& to, uint32_t link_index,
                        SimTime arrival, std::function<void()> deliver);
  void SendInternal(const ServerId& from, const ServerId& to, int64_t bytes,
                    std::function<void()> deliver, bool fifo);

  Simulator* sim_;
  Topology topology_;
  FailureInjector failures_;
  Rng rng_;
  NetStats stats_;
  // Lazy per-link counters: packed link key → index into link_pool_. Indices
  // are stable (the pool only grows between resets), so in-flight deliveries
  // carry an index, not an iterator.
  std::unordered_map<uint64_t, uint32_t> link_index_;
  std::vector<LinkStats> link_pool_;
  std::unordered_map<uint64_t, LinkFault> link_faults_;
  LinkFault default_fault_;
  std::vector<PartitionRule> partitions_;
  uint64_t next_partition_id_ = 1;
  // Last scheduled arrival per FIFO channel, keyed by exact packed link (the
  // pre-scale implementation mixed the endpoint hashes, so distinct channels
  // could collide and falsely serialize).
  std::unordered_map<uint64_t, SimTime> channel_clock_;
};

}  // namespace configerator

#endif  // SRC_SIM_NETWORK_H_
