// Message-passing layer over the simulator: point-to-point sends with
// topology-derived latency and crash-style failure injection ("failures are
// the norm" — §3.4). Components register handlers per server and exchange
// opaque payloads; a message to a down server is silently dropped, like a
// TCP connection that will time out.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/simulator.h"
#include "src/sim/topology.h"
#include "src/util/rng.h"

namespace configerator {

// Injects crashes/recoveries and answers liveness queries.
class FailureInjector {
 public:
  void Crash(const ServerId& id) { down_.insert(id); }
  void Recover(const ServerId& id) { down_.erase(id); }
  bool IsDown(const ServerId& id) const { return down_.count(id) > 0; }
  size_t down_count() const { return down_.size(); }

 private:
  std::unordered_set<ServerId> down_;
};

class Network {
 public:
  Network(Simulator* sim, Topology topology, uint64_t seed = 1);

  Simulator& sim() { return *sim_; }
  const Topology& topology() const { return topology_; }
  FailureInjector& failures() { return failures_; }
  const FailureInjector& failures() const { return failures_; }
  Rng& rng() { return rng_; }

  // Delivers `deliver` at the destination after latency + serialization time
  // for `bytes`. Dropped if either endpoint is down at send or receive time.
  // `deliver` runs only if the destination is still up on arrival.
  void Send(const ServerId& from, const ServerId& to, int64_t bytes,
            std::function<void()> deliver);

  // Like Send, but messages on the same (from, to) channel are delivered in
  // send order — the TCP-connection semantics ZooKeeper's ordering guarantees
  // rest on.
  void SendFifo(const ServerId& from, const ServerId& to, int64_t bytes,
                std::function<void()> deliver);

  // Messages sent / dropped — benches report these as overhead measures.
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  Simulator* sim_;
  Topology topology_;
  FailureInjector failures_;
  Rng rng_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  // Last scheduled arrival per FIFO channel (from, to).
  std::unordered_map<uint64_t, SimTime> channel_clock_;
};

}  // namespace configerator

#endif  // SRC_SIM_NETWORK_H_
