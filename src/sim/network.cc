#include "src/sim/network.h"

namespace configerator {

Network::Network(Simulator* sim, Topology topology, uint64_t seed)
    : sim_(sim), topology_(std::move(topology)), rng_(seed) {}

uint64_t Network::Partition(const std::vector<ServerId>& group_a,
                            const std::vector<ServerId>& group_b) {
  PartitionRule rule;
  rule.id = next_partition_id_++;
  rule.from.insert(group_a.begin(), group_a.end());
  rule.to.insert(group_b.begin(), group_b.end());
  rule.bidirectional = true;
  partitions_.push_back(std::move(rule));
  return partitions_.back().id;
}

uint64_t Network::PartitionOneWay(const std::vector<ServerId>& from_group,
                                  const std::vector<ServerId>& to_group) {
  PartitionRule rule;
  rule.id = next_partition_id_++;
  rule.from.insert(from_group.begin(), from_group.end());
  rule.to.insert(to_group.begin(), to_group.end());
  rule.bidirectional = false;
  partitions_.push_back(std::move(rule));
  return partitions_.back().id;
}

bool Network::HealPartition(uint64_t rule_id) {
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].id == rule_id) {
      partitions_.erase(partitions_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

bool Network::Blocked(const ServerId& from, const ServerId& to) const {
  for (const PartitionRule& rule : partitions_) {
    if (rule.from.count(from) > 0 && rule.to.count(to) > 0) {
      return true;
    }
    if (rule.bidirectional && rule.from.count(to) > 0 && rule.to.count(from) > 0) {
      return true;
    }
  }
  return false;
}

void Network::SetLinkFault(const ServerId& from, const ServerId& to,
                           LinkFault fault) {
  link_faults_[{from, to}] = fault;
}

const LinkFault& Network::EffectiveFault(const LinkKey& key) const {
  auto it = link_faults_.find(key);
  return it == link_faults_.end() ? default_fault_ : it->second;
}

LinkStats Network::link_stats(const ServerId& from, const ServerId& to) const {
  auto it = link_stats_.find({from, to});
  return it == link_stats_.end() ? LinkStats{} : it->second;
}

void Network::ScheduleDelivery(const LinkKey& key, SimTime arrival,
                               std::function<void()> deliver) {
  sim_->ScheduleAt(arrival, [this, key, deliver = std::move(deliver)] {
    if (failures_.IsDown(key.second)) {
      ++stats_.dropped;
      ++link_stats_[key].dropped;
      return;
    }
    ++stats_.delivered;
    ++link_stats_[key].delivered;
    deliver();
  });
}

void Network::SendInternal(const ServerId& from, const ServerId& to,
                           int64_t bytes, std::function<void()> deliver,
                           bool fifo) {
  LinkKey key{from, to};
  if (failures_.IsDown(from) || failures_.IsDown(to) || Blocked(from, to)) {
    ++stats_.dropped;
    ++link_stats_[key].dropped;
    return;
  }
  const LinkFault& fault = EffectiveFault(key);
  if (fault.drop_prob > 0 && rng_.NextBool(fault.drop_prob)) {
    ++stats_.dropped;
    ++link_stats_[key].dropped;
    return;
  }

  LinkStats& ls = link_stats_[key];
  ++stats_.messages_sent;
  ++ls.sent;
  stats_.bytes_sent += static_cast<uint64_t>(bytes);

  SimTime delay = topology_.Latency(from, to, rng_) + topology_.TransmitTime(bytes);
  if (fault.extra_delay > 0 || fault.extra_delay_jitter > 0) {
    SimTime extra = fault.extra_delay;
    if (fault.extra_delay_jitter > 0) {
      extra += static_cast<SimTime>(
          rng_.NextBounded(static_cast<uint64_t>(fault.extra_delay_jitter)));
    }
    if (extra > 0) {
      delay += extra;
      ++stats_.delayed;
      ++ls.delayed;
    }
  }
  bool duplicate = fault.dup_prob > 0 && rng_.NextBool(fault.dup_prob);
  if (duplicate) {
    ++stats_.duplicated;
    ++ls.duplicated;
  }

  if (fifo) {
    // Channel key: mix both endpoint hashes.
    uint64_t channel = std::hash<ServerId>{}(from) * 0x9e3779b97f4a7c15ULL +
                       std::hash<ServerId>{}(to);
    SimTime arrival = sim_->now() + delay;
    SimTime& clock = channel_clock_[channel];
    if (arrival <= clock) {
      arrival = clock + 1;  // Preserve order: never overtake the channel.
    }
    clock = arrival;
    if (duplicate) {
      ScheduleDelivery(key, arrival, deliver);
      clock = arrival + 1;  // Duplicate rides the channel right behind.
      ScheduleDelivery(key, clock, std::move(deliver));
    } else {
      ScheduleDelivery(key, arrival, std::move(deliver));
    }
    return;
  }

  if (fault.reorder_prob > 0 && delay > 0 && rng_.NextBool(fault.reorder_prob)) {
    // Reshuffle the delivery into [0, 2·delay]: the message can overtake
    // earlier traffic or be overtaken by later traffic on the same link.
    delay = static_cast<SimTime>(
        rng_.NextBounded(static_cast<uint64_t>(2 * delay) + 1));
    ++stats_.reordered;
    ++ls.reordered;
  }
  if (duplicate) {
    // Independent delay for the duplicate, so the copies can arrive in
    // either order.
    SimTime dup_delay = delay + 1 +
        static_cast<SimTime>(rng_.NextBounded(static_cast<uint64_t>(delay) + 1));
    ScheduleDelivery(key, sim_->now() + delay, deliver);
    ScheduleDelivery(key, sim_->now() + dup_delay, std::move(deliver));
  } else {
    ScheduleDelivery(key, sim_->now() + delay, std::move(deliver));
  }
}

void Network::Send(const ServerId& from, const ServerId& to, int64_t bytes,
                   std::function<void()> deliver) {
  SendInternal(from, to, bytes, std::move(deliver), /*fifo=*/false);
}

void Network::SendFifo(const ServerId& from, const ServerId& to, int64_t bytes,
                       std::function<void()> deliver) {
  SendInternal(from, to, bytes, std::move(deliver), /*fifo=*/true);
}

}  // namespace configerator
