#include "src/sim/network.h"

#include <algorithm>

namespace configerator {

void FailureInjector::AttachTopology(const Topology* topology) {
  topology_ = topology;
  down_.assign(
      topology == nullptr ? 0 : static_cast<size_t>(topology->total_servers()),
      0);
}

void FailureInjector::Crash(const ServerId& id) {
  if (topology_ != nullptr && topology_->Contains(id)) {
    uint8_t& bit = down_[static_cast<size_t>(topology_->FlatIndex(id))];
    if (bit == 0) {
      bit = 1;
      ++down_count_;
    }
    return;
  }
  if (other_down_.insert(id).second) {
    ++down_count_;
  }
}

void FailureInjector::Recover(const ServerId& id) {
  if (topology_ != nullptr && topology_->Contains(id)) {
    uint8_t& bit = down_[static_cast<size_t>(topology_->FlatIndex(id))];
    if (bit != 0) {
      bit = 0;
      --down_count_;
    }
    return;
  }
  if (other_down_.erase(id) > 0) {
    --down_count_;
  }
}

Network::Network(Simulator* sim, Topology topology, uint64_t seed)
    : sim_(sim), topology_(std::move(topology)), rng_(seed) {
  failures_.AttachTopology(&topology_);
  // Typical traffic touches a few links per server (proxy <-> observer, both
  // directions); reserving that up front spares the link and FIFO-channel
  // tables ~20 growth rehashes over a 100k-server run. Capped so a huge
  // topology with sparse traffic doesn't pay memory for nothing.
  size_t expected_links =
      std::min<size_t>(static_cast<size_t>(topology_.total_servers()) * 4,
                       size_t{1} << 22);
  link_index_.reserve(expected_links);
  channel_clock_.reserve(expected_links);
}

uint64_t Network::AddPartitionRule(const std::vector<ServerId>& from_group,
                                   const std::vector<ServerId>& to_group,
                                   bool bidirectional) {
  PartitionRule rule;
  rule.id = next_partition_id_++;
  size_t words = (static_cast<size_t>(topology_.total_servers()) + 63) / 64;
  rule.from_bits.assign(words, 0);
  rule.to_bits.assign(words, 0);
  for (const ServerId& id : from_group) {
    uint32_t f = Flat(id);
    rule.from_bits[f >> 6] |= uint64_t{1} << (f & 63);
  }
  for (const ServerId& id : to_group) {
    uint32_t f = Flat(id);
    rule.to_bits[f >> 6] |= uint64_t{1} << (f & 63);
  }
  rule.bidirectional = bidirectional;
  partitions_.push_back(std::move(rule));
  return partitions_.back().id;
}

uint64_t Network::Partition(const std::vector<ServerId>& group_a,
                            const std::vector<ServerId>& group_b) {
  return AddPartitionRule(group_a, group_b, /*bidirectional=*/true);
}

uint64_t Network::PartitionOneWay(const std::vector<ServerId>& from_group,
                                  const std::vector<ServerId>& to_group) {
  return AddPartitionRule(from_group, to_group, /*bidirectional=*/false);
}

bool Network::HealPartition(uint64_t rule_id) {
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].id == rule_id) {
      partitions_.erase(partitions_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

bool Network::Blocked(const ServerId& from, const ServerId& to) const {
  if (partitions_.empty()) {
    return false;
  }
  uint32_t f = Flat(from);
  uint32_t t = Flat(to);
  for (const PartitionRule& rule : partitions_) {
    if (TestBit(rule.from_bits, f) && TestBit(rule.to_bits, t)) {
      return true;
    }
    if (rule.bidirectional && TestBit(rule.from_bits, t) &&
        TestBit(rule.to_bits, f)) {
      return true;
    }
  }
  return false;
}

void Network::SetLinkFault(const ServerId& from, const ServerId& to,
                           LinkFault fault) {
  link_faults_[PackLink(from, to)] = fault;
}

const LinkFault& Network::EffectiveFault(uint64_t link) const {
  auto it = link_faults_.find(link);
  return it == link_faults_.end() ? default_fault_ : it->second;
}

LinkStats Network::link_stats(const ServerId& from, const ServerId& to) const {
  auto it = link_index_.find(PackLink(from, to));
  return it == link_index_.end() ? LinkStats{} : link_pool_[it->second];
}

NetStats Network::SumLinkStats() const {
  NetStats sum;
  for (const LinkStats& ls : link_pool_) {
    sum.messages_sent += ls.sent;
    sum.delivered += ls.delivered;
    sum.dropped += ls.dropped;
    sum.delayed += ls.delayed;
    sum.duplicated += ls.duplicated;
    sum.reordered += ls.reordered;
  }
  sum.bytes_sent = stats_.bytes_sent;  // Tracked in aggregate only.
  return sum;
}

uint32_t Network::LinkIndexFor(uint64_t link) {
  auto [it, inserted] = link_index_.try_emplace(
      link, static_cast<uint32_t>(link_pool_.size()));
  if (inserted) {
    link_pool_.emplace_back();
  }
  return it->second;
}

void Network::ScheduleDelivery(const ServerId& to, uint32_t link_index,
                               SimTime arrival,
                               std::function<void()> deliver) {
  sim_->ScheduleAt(arrival,
                   [this, to, link_index, deliver = std::move(deliver)] {
    // Re-index the pool at delivery time: the vector may have grown (never
    // shrunk) since the send materialized the entry.
    if (failures_.IsDown(to)) {
      ++stats_.dropped;
      ++link_pool_[link_index].dropped;
      return;
    }
    ++stats_.delivered;
    ++link_pool_[link_index].delivered;
    deliver();
  });
}

void Network::SendInternal(const ServerId& from, const ServerId& to,
                           int64_t bytes, std::function<void()> deliver,
                           bool fifo) {
  uint64_t link = PackLink(from, to);
  if (failures_.IsDown(from) || failures_.IsDown(to) || Blocked(from, to)) {
    ++stats_.dropped;
    ++link_pool_[LinkIndexFor(link)].dropped;
    return;
  }
  const LinkFault& fault = EffectiveFault(link);
  if (fault.drop_prob > 0 && rng_.NextBool(fault.drop_prob)) {
    ++stats_.dropped;
    ++link_pool_[LinkIndexFor(link)].dropped;
    return;
  }

  uint32_t li = LinkIndexFor(link);
  ++stats_.messages_sent;
  ++link_pool_[li].sent;
  stats_.bytes_sent += static_cast<uint64_t>(bytes);

  SimTime delay = topology_.Latency(from, to, rng_) + topology_.TransmitTime(bytes);
  if (fault.extra_delay > 0 || fault.extra_delay_jitter > 0) {
    SimTime extra = fault.extra_delay;
    if (fault.extra_delay_jitter > 0) {
      extra += static_cast<SimTime>(
          rng_.NextBounded(static_cast<uint64_t>(fault.extra_delay_jitter)));
    }
    if (extra > 0) {
      delay += extra;
      ++stats_.delayed;
      ++link_pool_[li].delayed;
    }
  }
  bool duplicate = fault.dup_prob > 0 && rng_.NextBool(fault.dup_prob);
  if (duplicate) {
    ++stats_.duplicated;
    ++link_pool_[li].duplicated;
  }

  if (fifo) {
    SimTime arrival = sim_->now() + delay;
    SimTime& clock = channel_clock_[link];
    if (arrival <= clock) {
      arrival = clock + 1;  // Preserve order: never overtake the channel.
    }
    clock = arrival;
    if (duplicate) {
      ScheduleDelivery(to, li, arrival, deliver);
      clock = arrival + 1;  // Duplicate rides the channel right behind.
      ScheduleDelivery(to, li, clock, std::move(deliver));
    } else {
      ScheduleDelivery(to, li, arrival, std::move(deliver));
    }
    return;
  }

  if (fault.reorder_prob > 0 && delay > 0 && rng_.NextBool(fault.reorder_prob)) {
    // Reshuffle the delivery into [0, 2·delay]: the message can overtake
    // earlier traffic or be overtaken by later traffic on the same link.
    delay = static_cast<SimTime>(
        rng_.NextBounded(static_cast<uint64_t>(2 * delay) + 1));
    ++stats_.reordered;
    ++link_pool_[li].reordered;
  }
  if (duplicate) {
    // Independent delay for the duplicate, so the copies can arrive in
    // either order.
    SimTime dup_delay = delay + 1 +
        static_cast<SimTime>(rng_.NextBounded(static_cast<uint64_t>(delay) + 1));
    ScheduleDelivery(to, li, sim_->now() + delay, deliver);
    ScheduleDelivery(to, li, sim_->now() + dup_delay, std::move(deliver));
  } else {
    ScheduleDelivery(to, li, sim_->now() + delay, std::move(deliver));
  }
}

void Network::Send(const ServerId& from, const ServerId& to, int64_t bytes,
                   std::function<void()> deliver) {
  SendInternal(from, to, bytes, std::move(deliver), /*fifo=*/false);
}

void Network::SendFifo(const ServerId& from, const ServerId& to, int64_t bytes,
                       std::function<void()> deliver) {
  SendInternal(from, to, bytes, std::move(deliver), /*fifo=*/true);
}

}  // namespace configerator
