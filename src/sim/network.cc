#include "src/sim/network.h"

namespace configerator {

Network::Network(Simulator* sim, Topology topology, uint64_t seed)
    : sim_(sim), topology_(std::move(topology)), rng_(seed) {}

void Network::Send(const ServerId& from, const ServerId& to, int64_t bytes,
                   std::function<void()> deliver) {
  if (failures_.IsDown(from) || failures_.IsDown(to)) {
    ++messages_dropped_;
    return;
  }
  ++messages_sent_;
  bytes_sent_ += static_cast<uint64_t>(bytes);
  SimTime delay = topology_.Latency(from, to, rng_) + topology_.TransmitTime(bytes);
  ServerId dest = to;
  sim_->Schedule(delay, [this, dest, deliver = std::move(deliver)] {
    if (failures_.IsDown(dest)) {
      ++messages_dropped_;
      return;
    }
    deliver();
  });
}

void Network::SendFifo(const ServerId& from, const ServerId& to, int64_t bytes,
                       std::function<void()> deliver) {
  if (failures_.IsDown(from) || failures_.IsDown(to)) {
    ++messages_dropped_;
    return;
  }
  ++messages_sent_;
  bytes_sent_ += static_cast<uint64_t>(bytes);
  SimTime delay = topology_.Latency(from, to, rng_) + topology_.TransmitTime(bytes);
  // Channel key: mix both endpoint hashes.
  uint64_t key = std::hash<ServerId>{}(from) * 0x9e3779b97f4a7c15ULL +
                 std::hash<ServerId>{}(to);
  SimTime arrival = sim_->now() + delay;
  SimTime& clock = channel_clock_[key];
  if (arrival <= clock) {
    arrival = clock + 1;  // Preserve order: never overtake the channel.
  }
  clock = arrival;
  ServerId dest = to;
  sim_->ScheduleAt(arrival, [this, dest, deliver = std::move(deliver)] {
    if (failures_.IsDown(dest)) {
      ++messages_dropped_;
      return;
    }
    deliver();
  });
}

}  // namespace configerator
