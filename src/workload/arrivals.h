// Commit-arrival process for Figures 11 and 12: a diurnal human profile
// (peaks 10:00–18:00), a weekly pattern (quiet weekends), compounding
// long-term growth, and a flat automation floor. The paper's signature
// observation — Configerator's weekend throughput is ~33% of its busiest
// weekday, vs ~10%/7% for www/fbcode — falls out of the automation share.

#ifndef SRC_WORKLOAD_ARRIVALS_H_
#define SRC_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace configerator {

class CommitArrivalModel {
 public:
  struct Params {
    std::string repo_name = "configerator";
    double initial_daily_commits = 1500;
    double daily_growth = 0.0038;      // ~180% growth over 10 months (Fig 11).
    double automation_share = 0.39;    // Fraction of commits from tools.
    uint64_t seed = 7;
  };

  explicit CommitArrivalModel(Params params) : params_(params), rng_(params.seed) {}

  // Human activity multiplier for an hour-of-day (0-23), peaking 10-18.
  static double HourProfile(int hour);
  // Human activity multiplier for a day-of-week (0 = Monday).
  static double WeekdayProfile(int day_of_week);

  // Expected commits in a given hour of a given day since the window start
  // (day 0 is a Monday).
  double ExpectedCommits(int day, int hour) const;

  // Poisson-sampled commit counts per hour over `days` days (size 24*days).
  std::vector<int> SampleHourly(int days);

  // Daily totals from an hourly series.
  static std::vector<int64_t> DailyTotals(const std::vector<int>& hourly);

  const Params& params() const { return params_; }

 private:
  Params params_;
  Rng rng_;
};

}  // namespace configerator

#endif  // SRC_WORKLOAD_ARRIVALS_H_
