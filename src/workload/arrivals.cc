#include "src/workload/arrivals.h"

#include <cmath>

namespace configerator {

double CommitArrivalModel::HourProfile(int hour) {
  // Normalized so the mean over 24h is ~1. Quiet nights, ramp from 8am,
  // peak 10-18, taper evenings.
  static constexpr double kProfile[24] = {
      0.15, 0.10, 0.08, 0.08, 0.10, 0.15, 0.30, 0.60,  // 0-7
      1.20, 1.90, 2.40, 2.50, 2.30, 2.40, 2.50, 2.40,  // 8-15
      2.20, 1.90, 1.40, 0.90, 0.60, 0.45, 0.30, 0.20,  // 16-23
  };
  return kProfile[hour % 24];
}

double CommitArrivalModel::WeekdayProfile(int day_of_week) {
  // Monday..Friday ~1, Saturday/Sunday near zero for humans.
  static constexpr double kProfile[7] = {1.0, 1.05, 1.1, 1.05, 0.95, 0.08, 0.06};
  return kProfile[day_of_week % 7];
}

double CommitArrivalModel::ExpectedCommits(int day, int hour) const {
  double daily = params_.initial_daily_commits *
                 std::pow(1.0 + params_.daily_growth, static_cast<double>(day));
  double human_daily = daily * (1.0 - params_.automation_share);
  double automation_daily = daily * params_.automation_share;

  double human_hourly = human_daily / 24.0 * HourProfile(hour) *
                        WeekdayProfile(day % 7);
  double automation_hourly = automation_daily / 24.0;  // Flat, 24/7.
  return human_hourly + automation_hourly;
}

std::vector<int> CommitArrivalModel::SampleHourly(int days) {
  std::vector<int> series;
  series.reserve(static_cast<size_t>(days) * 24);
  for (int day = 0; day < days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      double lambda = ExpectedCommits(day, hour);
      // Poisson sampling via inversion for small lambda, normal
      // approximation for large.
      int count;
      if (lambda < 30) {
        double l = std::exp(-lambda);
        double p = 1.0;
        int k = 0;
        do {
          ++k;
          p *= rng_.NextDouble();
        } while (p > l);
        count = k - 1;
      } else {
        double g = rng_.NextGaussian();
        count = static_cast<int>(std::max(0.0, lambda + std::sqrt(lambda) * g));
      }
      series.push_back(count);
    }
  }
  return series;
}

std::vector<int64_t> CommitArrivalModel::DailyTotals(const std::vector<int>& hourly) {
  std::vector<int64_t> daily;
  daily.reserve(hourly.size() / 24 + 1);
  int64_t acc = 0;
  for (size_t i = 0; i < hourly.size(); ++i) {
    acc += hourly[i];
    if ((i + 1) % 24 == 0) {
      daily.push_back(acc);
      acc = 0;
    }
  }
  if (hourly.size() % 24 != 0) {
    daily.push_back(acc);
  }
  return daily;
}

}  // namespace configerator
