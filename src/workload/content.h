// Generates realistic JSON config contents and applies typed edits to them.
// Table 2 ("line changes per config update") is measured by running our real
// diff engine over before/after contents produced here — not by sampling a
// line-count distribution directly.

#ifndef SRC_WORKLOAD_CONTENT_H_
#define SRC_WORKLOAD_CONTENT_H_

#include <string>

#include "src/json/json.h"
#include "src/util/rng.h"

namespace configerator {

// Generates a pretty-printed JSON config of roughly `target_bytes` (an
// object of scalar fields, string lists and nested sections, like compiled
// configs look).
std::string GenerateConfigContent(int64_t target_bytes, Rng& rng);

// The kinds of edits engineers (and automation) make.
enum class EditKind {
  kModifyScalar,   // Change one value: a 2-line diff (delete + add).
  kAddField,       // Add one field.
  kRemoveField,    // Remove one field.
  kModifySeveral,  // Touch a handful of values.
  kRewriteSection, // Replace a nested section wholesale (large diff).
};

// Samples an edit kind with the empirical mix behind Table 2 (about half of
// updates are single-value modifications).
EditKind SampleEditKind(Rng& rng);

// Applies `kind` to pretty-printed JSON `content`; returns the new content.
// Falls back to appending a field if the requested edit isn't applicable
// (e.g. removing from an empty object).
std::string ApplyEdit(const std::string& content, EditKind kind, Rng& rng);

}  // namespace configerator

#endif  // SRC_WORKLOAD_CONTENT_H_
