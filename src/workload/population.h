// Synthetic config-population model calibrated to the paper's §6 statistics.
//
// The paper's Figures 7–10 and Tables 1–3 are measurements of organic usage
// of the production repository. To regenerate their *shape*, this model
// evolves a config population day by day:
//   * configs are created at an accelerating rate (Fig 7's growth curve),
//     with a one-time migration bump when Gatekeeper moved onto
//     Configerator;
//   * each config draws a heavy-tailed popularity weight at creation;
//     updates are allocated proportionally to popularity across the alive
//     population — which reproduces the extreme update skew (Table 1), the
//     freshness mix (Fig 9) and the old-configs-still-get-updated effect
//     (Fig 10) from one mechanism;
//   * sizes are log-normal with a heavy tail, fitted to the published
//     percentiles (Fig 8);
//   * authorship mixes sticky human co-author pools with automation actors
//     (89% of raw-config updates are automated) for Table 3.

#ifndef SRC_WORKLOAD_POPULATION_H_
#define SRC_WORKLOAD_POPULATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace configerator {

enum class ConfigKind { kCompiled, kRaw };

struct SyntheticConfig {
  ConfigKind kind = ConfigKind::kCompiled;
  int created_day = 0;
  double popularity = 1.0;
  int64_t size_bytes = 0;
  std::vector<int> update_days;       // Sorted (generation order is by day).
  std::vector<std::string> authors;   // Author per update (creation first).

  size_t update_count() const { return update_days.size(); }
  size_t distinct_authors() const;
  int last_touched_day() const {
    return update_days.empty() ? created_day : update_days.back();
  }
};

class PopulationModel {
 public:
  struct Params {
    int total_days = 1400;
    // Final population size (the paper's "hundreds of thousands" scaled to
    // bench-friendly size; shape is size-invariant).
    size_t final_configs = 30'000;
    double compiled_fraction = 0.75;
    // Mean lifetime updates (paper: 16 compiled / 44 raw).
    double mean_updates_compiled = 16.0;
    double mean_updates_raw = 44.0;
    double raw_automation_share = 0.89;
    // Popularity (expected lifetime updates) is a head/body mixture per
    // kind, calibrated to Table 1's marginals simultaneously: the share of
    // never-updated configs, the mean update count, and the update share of
    // the top 1%. `head_probability` configs form the hot head (automation-
    // driven for raw); the rest draw a Gamma-distributed body popularity.
    double compiled_head_probability = 0.010;
    double compiled_head_share = 0.645;  // Top updates share (Table 1).
    double compiled_body_gamma_shape = 0.6;
    double raw_head_probability = 0.012;
    double raw_head_share = 0.928;
    double raw_body_gamma_shape = 0.2;
    // Update recency bias: a config's effective update weight decays as
    // (1 + age/decay_tau_days)^-decay_beta. This produces Fig 10's "29% of
    // updates hit configs younger than 60 days" while old configs still
    // receive a meaningful share, and Fig 9's dormancy mass.
    double decay_tau_days = 60;
    double decay_beta = 0.75;
    // Day when Gatekeeper's configs migrated onto Configerator (Fig 7 bump).
    int gatekeeper_migration_day = 420;
    double gatekeeper_migration_size = 0.08;  // Fraction of final population.
    uint64_t seed = 42;
  };

  explicit PopulationModel(Params params);

  // Generates the full population and update history.
  void Run();

  const std::vector<SyntheticConfig>& configs() const { return configs_; }
  const Params& params() const { return params_; }

  // Count of configs existing at end of `day`, split by kind.
  struct DailyCount {
    size_t compiled = 0;
    size_t raw = 0;
  };
  std::vector<DailyCount> CountsByDay() const;

  // --- Statistic extraction for the benches (measured over the final
  //     population, like the paper measured its repository) ---

  // Fig 8: config sizes in bytes.
  SampleSet Sizes(ConfigKind kind) const;
  // Fig 9: days since last modification (relative to the final day).
  SampleSet Freshness() const;
  // Fig 10: config age (days) at each update event.
  SampleSet AgeAtUpdate() const;
  // Table 1: lifetime update counts.
  SampleSet UpdateCounts(ConfigKind kind) const;
  // Table 1 bold claims: share of total updates taken by the top
  // `fraction` most-updated configs.
  double TopUpdateShare(ConfigKind kind, double fraction) const;
  // Table 3: distinct co-author counts.
  SampleSet CoauthorCounts(ConfigKind kind) const;

  // Sample a size for a new config (also used by content generation).
  static int64_t SampleSize(ConfigKind kind, Rng& rng);

 private:
  void CreateConfig(ConfigKind kind, int day);
  double SamplePopularity(ConfigKind kind);
  double SampleGamma(double shape, double mean);

  Params params_;
  Rng rng_;
  std::vector<SyntheticConfig> configs_;
  std::vector<std::vector<std::string>> author_pool_;  // Per config.
};

}  // namespace configerator

#endif  // SRC_WORKLOAD_POPULATION_H_
