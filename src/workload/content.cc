#include "src/workload/content.h"

#include <algorithm>
#include <vector>

#include "src/util/strings.h"

namespace configerator {

namespace {

const char* const kFieldStems[] = {
    "timeout_ms", "max_connections", "cache_bytes", "batch_size", "enabled",
    "endpoint",   "retry_limit",     "sample_rate", "prefetch",   "region",
    "threshold",  "capacity",        "ttl_seconds", "pool_size",  "rate_limit",
};

Json RandomScalar(Rng& rng) {
  switch (rng.NextBounded(4)) {
    case 0:
      return Json(static_cast<int64_t>(rng.NextBounded(1'000'000)));
    case 1:
      return Json(rng.NextDouble() * 100.0);
    case 2:
      return Json(rng.NextBool(0.5));
    default:
      return Json(StrFormat("value-%llu",
                            static_cast<unsigned long long>(rng.NextBounded(100'000))));
  }
}

std::string FieldName(Rng& rng, int ordinal) {
  const char* stem = kFieldStems[rng.NextBounded(std::size(kFieldStems))];
  return StrFormat("%s_%d", stem, ordinal);
}

// Builds an object with ~n scalar fields (plus occasional lists/sections).
Json BuildObject(int fields, Rng& rng, int depth) {
  Json obj = Json::MakeObject();
  for (int i = 0; i < fields; ++i) {
    std::string name = FieldName(rng, i);
    uint64_t shape = rng.NextBounded(10);
    if (shape == 0 && depth < 2) {
      obj.Set(name, BuildObject(3 + static_cast<int>(rng.NextBounded(5)), rng,
                                depth + 1));
    } else if (shape == 1) {
      Json list = Json::MakeArray();
      size_t n = 1 + rng.NextBounded(6);
      for (size_t j = 0; j < n; ++j) {
        list.Append(RandomScalar(rng));
      }
      obj.Set(name, std::move(list));
    } else {
      obj.Set(name, RandomScalar(rng));
    }
  }
  return obj;
}

// Collects pointers to all scalar-valued keys of an object tree.
void CollectScalarSlots(Json* node, std::vector<std::pair<Json*, std::string>>* out) {
  if (!node->is_object()) {
    return;
  }
  for (auto& [key, value] : node->as_object()) {
    if (value.is_object()) {
      CollectScalarSlots(&value, out);
    } else if (!value.is_array()) {
      out->emplace_back(node, key);
    }
  }
}

void CollectSections(Json* node, std::vector<std::pair<Json*, std::string>>* out) {
  if (!node->is_object()) {
    return;
  }
  for (auto& [key, value] : node->as_object()) {
    if (value.is_object()) {
      out->emplace_back(node, key);
      CollectSections(&value, out);
    }
  }
}

}  // namespace

std::string GenerateConfigContent(int64_t target_bytes, Rng& rng) {
  // A scalar field pretty-prints to ~30 bytes/line.
  int fields = std::max(1, static_cast<int>(target_bytes / 30));
  fields = std::min(fields, 200'000);
  Json obj = BuildObject(fields, rng, 0);
  return obj.DumpPretty();
}

EditKind SampleEditKind(Rng& rng) {
  // Mix tuned to Table 2: ~half of updates are a single modified value
  // (two-line change); multi-value edits fill the 3-50 line buckets; a tail
  // of section rewrites produces the >100-line mass.
  double u = rng.NextDouble();
  if (u < 0.47) {
    return EditKind::kModifyScalar;
  }
  if (u < 0.50) {
    return EditKind::kAddField;
  }
  if (u < 0.52) {
    return EditKind::kRemoveField;
  }
  if (u < 0.90) {
    return EditKind::kModifySeveral;
  }
  return EditKind::kRewriteSection;
}

std::string ApplyEdit(const std::string& content, EditKind kind, Rng& rng) {
  auto parsed = Json::Parse(content);
  if (!parsed.ok() || !parsed->is_object()) {
    // Not JSON (raw config of another format): emulate a line edit by
    // appending a marker line.
    return content + StrFormat("# edit %llu\n",
                               static_cast<unsigned long long>(rng.Next()));
  }
  Json root = std::move(parsed).value();

  std::vector<std::pair<Json*, std::string>> scalars;
  CollectScalarSlots(&root, &scalars);

  auto modify_one = [&rng, &scalars] {
    if (scalars.empty()) {
      return false;
    }
    auto& [node, key] = scalars[rng.NextBounded(scalars.size())];
    node->Set(key, RandomScalar(rng));
    return true;
  };

  switch (kind) {
    case EditKind::kModifyScalar:
      if (!modify_one()) {
        root.Set("added_field", RandomScalar(rng));
      }
      break;
    case EditKind::kAddField: {
      root.Set(StrFormat("added_%llu",
                         static_cast<unsigned long long>(rng.NextBounded(1'000'000))),
               RandomScalar(rng));
      break;
    }
    case EditKind::kRemoveField: {
      if (scalars.empty()) {
        root.Set("added_field", RandomScalar(rng));
        break;
      }
      auto& [node, key] = scalars[rng.NextBounded(scalars.size())];
      node->as_object().erase(key);
      break;
    }
    case EditKind::kModifySeveral: {
      // Mostly a pair of related values (a 4-line diff), sometimes a wider
      // sweep — matching Table 2's mid buckets.
      size_t n = rng.NextBool(0.3) ? 2 : 3 + rng.NextBounded(7);
      for (size_t i = 0; i < n; ++i) {
        if (!modify_one()) {
          break;
        }
      }
      break;
    }
    case EditKind::kRewriteSection: {
      std::vector<std::pair<Json*, std::string>> sections;
      CollectSections(&root, &sections);
      int new_fields = 10 + static_cast<int>(rng.NextBounded(80));
      if (sections.empty()) {
        root.Set("rewritten_section", BuildObject(new_fields, rng, 1));
      } else {
        auto& [node, key] = sections[rng.NextBounded(sections.size())];
        node->Set(key, BuildObject(new_fields, rng, 1));
      }
      break;
    }
  }
  return root.DumpPretty();
}

}  // namespace configerator
