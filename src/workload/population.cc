#include "src/workload/population.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/strings.h"

namespace configerator {

size_t SyntheticConfig::distinct_authors() const {
  std::set<std::string> unique(authors.begin(), authors.end());
  return unique.size();
}

PopulationModel::PopulationModel(Params params)
    : params_(params), rng_(params.seed) {}

int64_t PopulationModel::SampleSize(ConfigKind kind, Rng& rng) {
  // Log-normal fitted to the published percentiles:
  //   raw:      P50 = 400 B, P95 = 25 KB  -> mu = ln 400,  sigma = 2.51
  //   compiled: P50 = 1 KB,  P95 = 45 KB  -> mu = ln 1000, sigma = 2.31
  // (sigma = ln(P95/P50) / 1.645). The tail is clamped at 16 MB — anything
  // larger goes through PackageVessel and only metadata lands here.
  double mu;
  double sigma;
  if (kind == ConfigKind::kRaw) {
    mu = std::log(400.0);
    sigma = 2.51;
  } else {
    mu = std::log(1000.0);
    sigma = 2.31;
  }
  double size = rng.NextLogNormal(mu, sigma);
  size = std::clamp(size, 16.0, 16.0 * 1024 * 1024);
  return static_cast<int64_t>(size);
}

double PopulationModel::SampleGamma(double shape, double mean) {
  // Marsaglia–Tsang for shape >= 1; boosting trick for shape < 1.
  double k = shape;
  double boost = 1.0;
  if (k < 1.0) {
    double u = std::max(rng_.NextDouble(), 1e-12);
    boost = std::pow(u, 1.0 / k);
    k += 1.0;
  }
  double d = k - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  double sample;
  for (;;) {
    double x = rng_.NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0) {
      continue;
    }
    v = v * v * v;
    double u = std::max(rng_.NextDouble(), 1e-12);
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) {
      sample = d * v;
      break;
    }
  }
  sample *= boost;
  return sample * mean / shape;  // Scale so the mean is `mean`.
}

double PopulationModel::SamplePopularity(ConfigKind kind) {
  // Head/body mixture producing the Table 1 marginals: popularity equals the
  // config's expected lifetime updates (relative weights; the update pass
  // normalizes totals per kind).
  double mean;
  double head_prob;
  double head_share;
  double body_shape;
  if (kind == ConfigKind::kRaw) {
    mean = params_.mean_updates_raw;
    head_prob = params_.raw_head_probability;
    head_share = params_.raw_head_share;
    body_shape = params_.raw_body_gamma_shape;
  } else {
    mean = params_.mean_updates_compiled;
    head_prob = params_.compiled_head_probability;
    head_share = params_.compiled_head_share;
    body_shape = params_.compiled_body_gamma_shape;
  }
  if (rng_.NextBool(head_prob)) {
    double head_mean = head_share * mean / head_prob;
    // Spread the head exponentially so head configs are not identical.
    return head_mean * std::max(rng_.NextExponential(1.0), 1e-3);
  }
  double body_mean = (1.0 - head_share) * mean / (1.0 - head_prob);
  return SampleGamma(body_shape, body_mean);
}

void PopulationModel::CreateConfig(ConfigKind kind, int day) {
  SyntheticConfig config;
  config.kind = kind;
  config.created_day = day;
  config.size_bytes = SampleSize(kind, rng_);
  config.popularity = SamplePopularity(kind);

  // Author pool: mostly 1-2 humans, occasionally a crowd. Pool size
  // correlates with popularity — a widely shared, frequently updated config
  // accumulates many co-authors (the paper saw one sitevar with 727 authors
  // over two years).
  size_t pool_size = 1;
  double continue_p = config.popularity > 50 ? 0.75 : 0.48;
  while (pool_size < 400 && rng_.NextBool(continue_p)) {
    ++pool_size;
  }
  if (config.popularity > 200 && rng_.NextBool(0.25)) {
    pool_size = 50 + rng_.NextBounded(700);
  }
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    pool.push_back(StrFormat(
        "eng%llu", static_cast<unsigned long long>(rng_.NextBounded(100'000))));
  }
  config.authors.push_back(pool.front());  // Creation counts as first touch.

  configs_.push_back(std::move(config));
  author_pool_.push_back(std::move(pool));
}

void PopulationModel::Run() {
  configs_.clear();
  author_pool_.clear();
  configs_.reserve(params_.final_configs);

  const int days = params_.total_days;
  const double growth_exponent = 2.2;  // Fig 7's superlinear growth.

  // Pass 1: creations. cumulative(d) = final * (d/D)^k, plus the migration
  // bump (Gatekeeper projects arriving as compiled configs).
  size_t migration_extra = static_cast<size_t>(
      params_.gatekeeper_migration_size * static_cast<double>(params_.final_configs));
  size_t organic_total = params_.final_configs - migration_extra;
  size_t created = 0;
  for (int day = 1; day <= days; ++day) {
    double frac = std::pow(static_cast<double>(day) / days, growth_exponent);
    size_t target = static_cast<size_t>(frac * static_cast<double>(organic_total));
    while (created < target) {
      ConfigKind kind = rng_.NextBool(params_.compiled_fraction)
                            ? ConfigKind::kCompiled
                            : ConfigKind::kRaw;
      CreateConfig(kind, day);
      ++created;
    }
    if (day == params_.gatekeeper_migration_day) {
      for (size_t i = 0; i < migration_extra; ++i) {
        CreateConfig(ConfigKind::kCompiled, day);
      }
    }
  }

  // Pass 2: updates, independently per kind. For each kind build the
  // creation-ordered prefix-sum of popularity; each day's update budget is
  // proportional to the kind's alive population, and updates are drawn from
  // the alive prefix weighted by popularity.
  for (ConfigKind kind : {ConfigKind::kCompiled, ConfigKind::kRaw}) {
    std::vector<size_t> members;      // Config indices, creation order.
    std::vector<double> cumulative;   // Prefix popularity sums.
    double total_popularity = 0;
    for (size_t i = 0; i < configs_.size(); ++i) {
      if (configs_[i].kind != kind) {
        continue;
      }
      members.push_back(i);
      total_popularity += configs_[i].popularity;
      cumulative.push_back(total_popularity);
    }
    if (members.empty()) {
      continue;
    }
    double mean_updates = kind == ConfigKind::kRaw ? params_.mean_updates_raw
                                                   : params_.mean_updates_compiled;
    double total_updates = mean_updates * static_cast<double>(members.size());

    // Alive-count per day for this kind (members are creation-ordered).
    std::vector<size_t> alive_by_day(static_cast<size_t>(days) + 1, 0);
    {
      size_t next = 0;
      for (int day = 1; day <= days; ++day) {
        while (next < members.size() &&
               configs_[members[next]].created_day <= day) {
          ++next;
        }
        alive_by_day[static_cast<size_t>(day)] = next;
      }
    }
    double weight_sum = 0;
    for (int day = 1; day <= days; ++day) {
      weight_sum += static_cast<double>(alive_by_day[static_cast<size_t>(day)]);
    }
    if (weight_sum == 0) {
      continue;
    }

    for (int day = 1; day <= days; ++day) {
      size_t alive = alive_by_day[static_cast<size_t>(day)];
      if (alive == 0) {
        continue;
      }
      double day_weight = static_cast<double>(alive) / weight_sum;
      size_t updates_today =
          static_cast<size_t>(total_updates * day_weight + rng_.NextDouble());
      double limit = cumulative[alive - 1];
      for (size_t i = 0; i < updates_today; ++i) {
        // Popularity-weighted sample with recency-biased rejection: effective
        // weight = popularity * (1 + age/tau)^-beta.
        size_t idx = members[alive - 1];
        for (int attempt = 0; attempt < 24; ++attempt) {
          double u = rng_.NextDouble() * limit;
          auto it = std::upper_bound(
              cumulative.begin(), cumulative.begin() + static_cast<long>(alive),
              u);
          size_t pos = static_cast<size_t>(it - cumulative.begin());
          if (pos >= alive) {
            pos = alive - 1;
          }
          size_t candidate = members[pos];
          double age = static_cast<double>(day - configs_[candidate].created_day);
          double decay = std::pow(1.0 + age / params_.decay_tau_days,
                                  -params_.decay_beta);
          if (rng_.NextDouble() < decay) {
            idx = candidate;
            break;
          }
          idx = candidate;  // Fallback if every attempt rejects.
        }
        SyntheticConfig& config = configs_[idx];
        config.update_days.push_back(day);

        // Author of this update.
        bool automated;
        if (config.kind == ConfigKind::kRaw) {
          automated = rng_.NextBool(params_.raw_automation_share);
        } else {
          automated = rng_.NextBool(0.30);
        }
        if (automated) {
          config.authors.push_back("automation");
        } else {
          const std::vector<std::string>& pool = author_pool_[idx];
          // Sticky authorship: usually the previous human author returns.
          if (config.authors.size() > 1 && rng_.NextBool(0.6)) {
            config.authors.push_back(config.authors.back() == "automation"
                                         ? pool[rng_.NextBounded(pool.size())]
                                         : config.authors.back());
          } else {
            config.authors.push_back(pool[rng_.NextBounded(pool.size())]);
          }
        }
      }
    }
  }
}

std::vector<PopulationModel::DailyCount> PopulationModel::CountsByDay() const {
  std::vector<DailyCount> counts(static_cast<size_t>(params_.total_days) + 1);
  for (const SyntheticConfig& config : configs_) {
    size_t day = static_cast<size_t>(config.created_day);
    if (config.kind == ConfigKind::kCompiled) {
      ++counts[day].compiled;
    } else {
      ++counts[day].raw;
    }
  }
  for (size_t day = 1; day < counts.size(); ++day) {
    counts[day].compiled += counts[day - 1].compiled;
    counts[day].raw += counts[day - 1].raw;
  }
  return counts;
}

SampleSet PopulationModel::Sizes(ConfigKind kind) const {
  SampleSet samples;
  for (const SyntheticConfig& config : configs_) {
    if (config.kind == kind) {
      samples.Add(static_cast<double>(config.size_bytes));
    }
  }
  return samples;
}

SampleSet PopulationModel::Freshness() const {
  SampleSet samples;
  for (const SyntheticConfig& config : configs_) {
    samples.Add(static_cast<double>(params_.total_days - config.last_touched_day()));
  }
  return samples;
}

SampleSet PopulationModel::AgeAtUpdate() const {
  SampleSet samples;
  for (const SyntheticConfig& config : configs_) {
    for (int day : config.update_days) {
      samples.Add(static_cast<double>(day - config.created_day));
    }
  }
  return samples;
}

SampleSet PopulationModel::UpdateCounts(ConfigKind kind) const {
  SampleSet samples;
  for (const SyntheticConfig& config : configs_) {
    if (config.kind == kind) {
      // The paper's Table 1 counts "written once" as created-never-updated,
      // so the count reported is 1 + updates.
      samples.Add(static_cast<double>(1 + config.update_count()));
    }
  }
  return samples;
}

double PopulationModel::TopUpdateShare(ConfigKind kind, double fraction) const {
  std::vector<size_t> counts;
  size_t total = 0;
  for (const SyntheticConfig& config : configs_) {
    if (config.kind == kind) {
      counts.push_back(config.update_count());
      total += config.update_count();
    }
  }
  if (counts.empty() || total == 0) {
    return 0;
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  size_t top_n = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(counts.size())));
  size_t top_updates = 0;
  for (size_t i = 0; i < top_n; ++i) {
    top_updates += counts[i];
  }
  return static_cast<double>(top_updates) / static_cast<double>(total);
}

SampleSet PopulationModel::CoauthorCounts(ConfigKind kind) const {
  SampleSet samples;
  for (const SyntheticConfig& config : configs_) {
    if (config.kind == kind) {
      samples.Add(static_cast<double>(config.distinct_authors()));
    }
  }
  return samples;
}

}  // namespace configerator
