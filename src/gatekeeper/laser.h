// Laser (paper §4): a key-value store holding precomputed, data-intensive
// gating signals (outputs of stream processing or MapReduce jobs). The
// special laser() restraint passes when get("$project-$user_id") exceeds a
// configurable threshold, letting any offline system integrate with
// Gatekeeper by loading data into Laser.

#ifndef SRC_GATEKEEPER_LASER_H_
#define SRC_GATEKEEPER_LASER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace configerator {

class LaserStore {
 public:
  void Put(const std::string& key, double value) { data_[key] = value; }
  std::optional<double> Get(const std::string& key) const {
    auto it = data_.find(key);
    if (it == data_.end()) {
      return std::nullopt;
    }
    return it->second;
  }
  size_t size() const { return data_.size(); }

  // Bulk load from an offline pipeline: assigns `value` under
  // "<project>-<user_id>" for each id — the shape the laser restraint reads.
  void LoadPipelineOutput(const std::string& project,
                          const std::unordered_map<int64_t, double>& per_user) {
    for (const auto& [user_id, value] : per_user) {
      Put(project + "-" + std::to_string(user_id), value);
    }
  }

 private:
  std::unordered_map<std::string, double> data_;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_LASER_H_
