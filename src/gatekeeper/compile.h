// Shared compilation path for Gatekeeper project configs (paper §4).
//
// Every evaluator in the tree — the single-threaded learner
// (GatekeeperProject), the naive reference evaluator (NaiveEvaluator), and
// the concurrent shared-snapshot runtime (GatekeeperRuntime) — compiles the
// same JSON through CompileProjectSpec(), so validation and semantics can
// never diverge between them. Restraints come out as shared_ptr<const>:
// after creation a restraint is immutable and pure, so one compiled instance
// can be shared across snapshot generations and across threads without
// copying or locking.
//
// The deterministic per-(project,user) sampling die also lives here, keyed
// by a precomputed 64-bit project salt instead of a per-check string
// concatenation — all evaluators must cast exactly the same die or the
// differential test battery (tests/gatekeeper_differential_test.cc) fails.

#ifndef SRC_GATEKEEPER_COMPILE_H_
#define SRC_GATEKEEPER_COMPILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/gatekeeper/restraint.h"
#include "src/json/json.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace configerator {

// One if-statement: a conjunction of restraints plus a pass probability.
struct CompiledRuleSpec {
  std::vector<std::shared_ptr<const Restraint>> restraints;
  double pass_probability = 0;
};

// A validated, compiled project config. Immutable after compilation; cheap
// to copy (restraints are shared).
struct CompiledProjectSpec {
  std::string name;
  uint64_t salt = 0;  // ProjectSalt(name), precomputed for the die.
  std::vector<CompiledRuleSpec> rules;
};

// Compiles and validates a project config. Rejects malformed specs with the
// same messages FromJson always produced.
Result<CompiledProjectSpec> CompileProjectSpec(
    const Json& config,
    const RestraintRegistry& registry = RestraintRegistry::Builtin());

// The die salt for a project name (hashed once at compile time).
inline uint64_t ProjectSalt(const std::string& project) {
  return StableHash64(project);
}

// Deterministic per-(project,user) die in [0,1): the same user consistently
// passes or fails a given percentage rollout, so features don't flicker.
// Mixing the precomputed salt with the user id avoids the string
// concatenation + hash the hot path used to pay per check.
inline double GatekeeperDie(uint64_t project_salt, int64_t user_id) {
  uint64_t state = project_salt ^ (static_cast<uint64_t>(user_id) +
                                   0x9e3779b97f4a7c15ULL);
  uint64_t h = SplitMix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Evaluates one rule's conjunction in the given index order (pure, so order
// never changes the outcome — only the work done before a short-circuit).
// Declared order = indices 0..n-1.
inline bool RuleMatches(const CompiledRuleSpec& rule, const UserContext& user,
                        const LaserStore* laser) {
  for (const auto& restraint : rule.restraints) {
    if (!restraint->Test(user, laser)) {
      return false;
    }
  }
  return true;
}

}  // namespace configerator

#endif  // SRC_GATEKEEPER_COMPILE_H_
