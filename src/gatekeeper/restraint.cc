#include "src/gatekeeper/restraint.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

// ---- Param-parsing helpers -------------------------------------------------

Result<std::vector<std::string>> GetStringList(const Json& params,
                                               const std::string& key) {
  const Json* field = params.Get(key);
  if (field == nullptr || !field->is_array()) {
    return InvalidConfigError("restraint param '" + key + "' must be a list");
  }
  std::vector<std::string> out;
  out.reserve(field->as_array().size());
  for (const Json& item : field->as_array()) {
    if (!item.is_string()) {
      return InvalidConfigError("restraint param '" + key + "' must hold strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

Result<int64_t> GetInt(const Json& params, const std::string& key) {
  const Json* field = params.Get(key);
  if (field == nullptr || !field->is_int()) {
    return InvalidConfigError("restraint param '" + key + "' must be an integer");
  }
  return field->as_int();
}

Result<double> GetDouble(const Json& params, const std::string& key) {
  const Json* field = params.Get(key);
  if (field == nullptr || !field->is_number()) {
    return InvalidConfigError("restraint param '" + key + "' must be a number");
  }
  return field->as_double();
}

Result<std::string> GetString(const Json& params, const std::string& key) {
  const Json* field = params.Get(key);
  if (field == nullptr || !field->is_string()) {
    return InvalidConfigError("restraint param '" + key + "' must be a string");
  }
  return field->as_string();
}

// ---- Builtin restraints ----------------------------------------------------

class AlwaysRestraint : public Restraint {
 public:
  explicit AlwaysRestraint(bool value) : value_(value) {}
  bool Evaluate(const UserContext&, const LaserStore*) const override {
    return value_;
  }
  double cost() const override { return 0.1; }
  std::string_view type_name() const override { return "always"; }

 private:
  bool value_;
};

class EmployeeRestraint : public Restraint {
 public:
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    return user.is_employee;
  }
  std::string_view type_name() const override { return "employee"; }
};

// Generic membership restraint over a string field.
class StringSetRestraint : public Restraint {
 public:
  StringSetRestraint(std::string type, std::vector<std::string> values,
                     std::string UserContext::* field)
      : type_(std::move(type)), values_(values.begin(), values.end()),
        field_(field) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    return values_.count(user.*field_) > 0;
  }
  double cost() const override { return 1.5; }
  std::string_view type_name() const override { return type_; }

 private:
  std::string type_;
  std::set<std::string> values_;
  std::string UserContext::* field_;
};

// Generic threshold over an int32 field.
class IntThresholdRestraint : public Restraint {
 public:
  IntThresholdRestraint(std::string type, int64_t threshold, bool at_least,
                        int32_t UserContext::* field)
      : type_(std::move(type)), threshold_(threshold), at_least_(at_least),
        field_(field) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    int64_t v = user.*field_;
    return at_least_ ? v >= threshold_ : v <= threshold_;
  }
  std::string_view type_name() const override { return type_; }

 private:
  std::string type_;
  int64_t threshold_;
  bool at_least_;
  int32_t UserContext::* field_;
};

class IdInRestraint : public Restraint {
 public:
  explicit IdInRestraint(std::unordered_set<int64_t> ids) : ids_(std::move(ids)) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    return ids_.count(user.user_id) > 0;
  }
  std::string_view type_name() const override { return "id_in"; }

 private:
  std::unordered_set<int64_t> ids_;
};

class IdModRestraint : public Restraint {
 public:
  IdModRestraint(int64_t mod, int64_t lo, int64_t hi)
      : mod_(mod), lo_(lo), hi_(hi) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    int64_t bucket = ((user.user_id % mod_) + mod_) % mod_;
    return bucket >= lo_ && bucket < hi_;
  }
  std::string_view type_name() const override { return "id_mod"; }

 private:
  int64_t mod_;
  int64_t lo_;
  int64_t hi_;
};

// Deterministic pseudo-random slice of users: hash(salt, user) in [lo, hi).
// Used for sticky experiment segments independent of user-id structure.
class HashRangeRestraint : public Restraint {
 public:
  HashRangeRestraint(std::string salt, double lo, double hi)
      : salt_(std::move(salt)), lo_(lo), hi_(hi) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    uint64_t h = StableHash64(salt_ + "/" + std::to_string(user.user_id));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u >= lo_ && u < hi_;
  }
  double cost() const override { return 2.0; }
  std::string_view type_name() const override { return "hash_range"; }

 private:
  std::string salt_;
  double lo_;
  double hi_;
};

class StringAttrEqualsRestraint : public Restraint {
 public:
  StringAttrEqualsRestraint(std::string attr, std::string value)
      : attr_(std::move(attr)), value_(std::move(value)) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    auto it = user.string_attrs.find(attr_);
    return it != user.string_attrs.end() && it->second == value_;
  }
  double cost() const override { return 2.0; }
  std::string_view type_name() const override { return "string_attr_equals"; }

 private:
  std::string attr_;
  std::string value_;
};

class NumericAttrRestraint : public Restraint {
 public:
  NumericAttrRestraint(std::string type, std::string attr, double threshold,
                       bool greater)
      : type_(std::move(type)), attr_(std::move(attr)), threshold_(threshold),
        greater_(greater) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    auto it = user.numeric_attrs.find(attr_);
    if (it == user.numeric_attrs.end()) {
      return false;
    }
    return greater_ ? it->second > threshold_ : it->second < threshold_;
  }
  double cost() const override { return 2.0; }
  std::string_view type_name() const override { return type_; }

 private:
  std::string type_;
  std::string attr_;
  double threshold_;
  bool greater_;
};

class HasAttrRestraint : public Restraint {
 public:
  explicit HasAttrRestraint(std::string attr) : attr_(std::move(attr)) {}
  bool Evaluate(const UserContext& user, const LaserStore*) const override {
    return user.string_attrs.count(attr_) > 0 || user.numeric_attrs.count(attr_) > 0;
  }
  double cost() const override { return 2.0; }
  std::string_view type_name() const override { return "has_attr"; }

 private:
  std::string attr_;
};

// laser(): passes if get("$project-$user_id") > threshold. Expensive — it is
// a store lookup — so it carries a high cost for the optimizer.
class LaserRestraint : public Restraint {
 public:
  LaserRestraint(std::string project, double threshold)
      : project_(std::move(project)), threshold_(threshold) {}
  bool Evaluate(const UserContext& user, const LaserStore* laser) const override {
    if (laser == nullptr) {
      return false;
    }
    auto value = laser->Get(project_ + "-" + std::to_string(user.user_id));
    return value.has_value() && *value > threshold_;
  }
  double cost() const override { return 25.0; }
  std::string_view type_name() const override { return "laser"; }

 private:
  std::string project_;
  double threshold_;
};

// ---- Registry ---------------------------------------------------------------

RestraintRegistry MakeBuiltinRegistry() {
  RestraintRegistry registry;

  registry.Register("always", [](const Json& params) -> Result<RestraintPtr> {
    const Json* v = params.Get("value");
    bool value = v != nullptr && v->is_bool() ? v->as_bool() : true;
    return RestraintPtr(std::make_unique<AlwaysRestraint>(value));
  });

  registry.Register("employee", [](const Json&) -> Result<RestraintPtr> {
    return RestraintPtr(std::make_unique<EmployeeRestraint>());
  });

  struct StringSetSpec {
    const char* type;
    const char* param;
    std::string UserContext::* field;
  };
  static constexpr StringSetSpec kStringSets[] = {
      {"country", "countries", &UserContext::country},
      {"locale", "locales", &UserContext::locale},
      {"app", "apps", &UserContext::app},
      {"device", "devices", &UserContext::device},
      {"platform", "platforms", &UserContext::platform},
  };
  for (const StringSetSpec& spec : kStringSets) {
    registry.Register(
        spec.type, [spec](const Json& params) -> Result<RestraintPtr> {
          ASSIGN_OR_RETURN(std::vector<std::string> values,
                           GetStringList(params, spec.param));
          return RestraintPtr(std::make_unique<StringSetRestraint>(
              spec.type, std::move(values), spec.field));
        });
  }

  struct ThresholdSpec {
    const char* type;
    const char* param;
    bool at_least;
    int32_t UserContext::* field;
  };
  static constexpr ThresholdSpec kThresholds[] = {
      {"min_friend_count", "count", true, &UserContext::friend_count},
      {"max_friend_count", "count", false, &UserContext::friend_count},
      {"min_account_age", "days", true, &UserContext::account_age_days},
      {"new_user", "max_days", false, &UserContext::account_age_days},
      {"min_app_version", "version", true, &UserContext::app_version},
  };
  for (const ThresholdSpec& spec : kThresholds) {
    registry.Register(
        spec.type, [spec](const Json& params) -> Result<RestraintPtr> {
          ASSIGN_OR_RETURN(int64_t threshold, GetInt(params, spec.param));
          return RestraintPtr(std::make_unique<IntThresholdRestraint>(
              spec.type, threshold, spec.at_least, spec.field));
        });
  }

  registry.Register("id_in", [](const Json& params) -> Result<RestraintPtr> {
    const Json* ids = params.Get("ids");
    if (ids == nullptr || !ids->is_array()) {
      return InvalidConfigError("id_in needs an 'ids' list");
    }
    std::unordered_set<int64_t> set;
    for (const Json& id : ids->as_array()) {
      if (!id.is_int()) {
        return InvalidConfigError("id_in ids must be integers");
      }
      set.insert(id.as_int());
    }
    return RestraintPtr(std::make_unique<IdInRestraint>(std::move(set)));
  });

  registry.Register("id_mod", [](const Json& params) -> Result<RestraintPtr> {
    ASSIGN_OR_RETURN(int64_t mod, GetInt(params, "mod"));
    ASSIGN_OR_RETURN(int64_t lo, GetInt(params, "lo"));
    ASSIGN_OR_RETURN(int64_t hi, GetInt(params, "hi"));
    if (mod <= 0 || lo < 0 || hi > mod || lo >= hi) {
      return InvalidConfigError("id_mod needs 0 <= lo < hi <= mod, mod > 0");
    }
    return RestraintPtr(std::make_unique<IdModRestraint>(mod, lo, hi));
  });

  registry.Register("hash_range", [](const Json& params) -> Result<RestraintPtr> {
    ASSIGN_OR_RETURN(std::string salt, GetString(params, "salt"));
    ASSIGN_OR_RETURN(double lo, GetDouble(params, "lo"));
    ASSIGN_OR_RETURN(double hi, GetDouble(params, "hi"));
    if (lo < 0 || hi > 1 || lo >= hi) {
      return InvalidConfigError("hash_range needs 0 <= lo < hi <= 1");
    }
    return RestraintPtr(
        std::make_unique<HashRangeRestraint>(std::move(salt), lo, hi));
  });

  registry.Register("string_attr_equals",
                    [](const Json& params) -> Result<RestraintPtr> {
                      ASSIGN_OR_RETURN(std::string attr, GetString(params, "attr"));
                      ASSIGN_OR_RETURN(std::string value,
                                       GetString(params, "value"));
                      return RestraintPtr(std::make_unique<StringAttrEqualsRestraint>(
                          std::move(attr), std::move(value)));
                    });

  registry.Register("numeric_attr_gt", [](const Json& params) -> Result<RestraintPtr> {
    ASSIGN_OR_RETURN(std::string attr, GetString(params, "attr"));
    ASSIGN_OR_RETURN(double threshold, GetDouble(params, "threshold"));
    return RestraintPtr(std::make_unique<NumericAttrRestraint>(
        "numeric_attr_gt", std::move(attr), threshold, /*greater=*/true));
  });

  registry.Register("numeric_attr_lt", [](const Json& params) -> Result<RestraintPtr> {
    ASSIGN_OR_RETURN(std::string attr, GetString(params, "attr"));
    ASSIGN_OR_RETURN(double threshold, GetDouble(params, "threshold"));
    return RestraintPtr(std::make_unique<NumericAttrRestraint>(
        "numeric_attr_lt", std::move(attr), threshold, /*greater=*/false));
  });

  registry.Register("has_attr", [](const Json& params) -> Result<RestraintPtr> {
    ASSIGN_OR_RETURN(std::string attr, GetString(params, "attr"));
    return RestraintPtr(std::make_unique<HasAttrRestraint>(std::move(attr)));
  });

  registry.Register("laser", [](const Json& params) -> Result<RestraintPtr> {
    ASSIGN_OR_RETURN(std::string project, GetString(params, "project"));
    ASSIGN_OR_RETURN(double threshold, GetDouble(params, "threshold"));
    return RestraintPtr(
        std::make_unique<LaserRestraint>(std::move(project), threshold));
  });

  return registry;
}

}  // namespace

const RestraintRegistry& RestraintRegistry::Builtin() {
  static const RestraintRegistry* registry =
      new RestraintRegistry(MakeBuiltinRegistry());
  return *registry;
}

void RestraintRegistry::Register(const std::string& type, Factory factory) {
  factories_[type] = std::move(factory);
}

Result<RestraintPtr> RestraintRegistry::Create(const Json& spec) const {
  if (!spec.is_object()) {
    return InvalidConfigError("restraint spec must be an object");
  }
  const Json* type = spec.Get("type");
  if (type == nullptr || !type->is_string()) {
    return InvalidConfigError("restraint spec needs a string 'type'");
  }
  auto it = factories_.find(type->as_string());
  if (it == factories_.end()) {
    return InvalidConfigError("unknown restraint type '" + type->as_string() + "'");
  }
  static const Json kEmptyParams = Json::MakeObject();
  const Json* params = spec.Get("params");
  ASSIGN_OR_RETURN(RestraintPtr restraint,
                   it->second(params != nullptr ? *params : kEmptyParams));
  const Json* negate = spec.Get("negate");
  if (negate != nullptr && negate->is_bool()) {
    restraint->set_negate(negate->as_bool());
  }
  return restraint;
}

std::vector<std::string> RestraintRegistry::TypeNames() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace configerator
