#include "src/gatekeeper/project.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

constexpr uint64_t kReorderInterval = 1024;

// Deterministic per-(project,user) die in [0,1): the same user consistently
// passes or fails a given percentage rollout, so features don't flicker.
double SampleDie(const std::string& project, int64_t user_id) {
  uint64_t h = StableHash64(project + "#" + std::to_string(user_id));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

Result<GatekeeperProject> GatekeeperProject::FromJson(
    const Json& config, const RestraintRegistry& registry) {
  if (!config.is_object()) {
    return InvalidConfigError("gatekeeper project config must be an object");
  }
  const Json* name = config.Get("project");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return InvalidConfigError("gatekeeper project needs a 'project' name");
  }
  GatekeeperProject project;
  project.name_ = name->as_string();

  const Json* rules = config.Get("rules");
  if (rules == nullptr || !rules->is_array()) {
    return InvalidConfigError("gatekeeper project needs a 'rules' list");
  }
  for (const Json& rule_spec : rules->as_array()) {
    if (!rule_spec.is_object()) {
      return InvalidConfigError("gatekeeper rule must be an object");
    }
    Rule rule;
    const Json* prob = rule_spec.Get("pass_probability");
    if (prob == nullptr || !prob->is_number()) {
      return InvalidConfigError("gatekeeper rule needs 'pass_probability'");
    }
    rule.pass_probability = prob->as_double();
    if (rule.pass_probability < 0 || rule.pass_probability > 1) {
      return InvalidConfigError("pass_probability must be within [0, 1]");
    }
    const Json* restraints = rule_spec.Get("restraints");
    if (restraints == nullptr || !restraints->is_array()) {
      return InvalidConfigError("gatekeeper rule needs a 'restraints' list");
    }
    for (const Json& spec : restraints->as_array()) {
      ASSIGN_OR_RETURN(RestraintPtr restraint, registry.Create(spec));
      rule.restraints.push_back(std::move(restraint));
    }
    rule.order.resize(rule.restraints.size());
    std::iota(rule.order.begin(), rule.order.end(), size_t{0});
    rule.stats.resize(rule.restraints.size());
    project.rules_.push_back(std::move(rule));
  }
  return project;
}

void GatekeeperProject::MaybeReorder(Rule& rule) const {
  if (++rule.evals_since_reorder < kReorderInterval ||
      rule.restraints.size() < 2) {
    return;
  }
  rule.evals_since_reorder = 0;
  // For a conjunction, evaluate first the restraint with the lowest
  // cost / P(short-circuit) = cost / (1 - pass_rate). A restraint that is
  // cheap and usually false eliminates most work.
  std::stable_sort(rule.order.begin(), rule.order.end(),
                   [&rule](size_t a, size_t b) {
                     auto rank = [&rule](size_t i) {
                       const RestraintStats& s = rule.stats[i];
                       double pass_rate =
                           s.evals == 0
                               ? 0.5
                               : static_cast<double>(s.passes) /
                                     static_cast<double>(s.evals);
                       double short_circuit = std::max(1.0 - pass_rate, 1e-6);
                       return rule.restraints[i]->cost() / short_circuit;
                     };
                     return rank(a) < rank(b);
                   });
}

bool GatekeeperProject::Check(const UserContext& user,
                              const LaserStore* laser) const {
  for (Rule& rule : rules_) {
    bool all_pass = true;
    for (size_t idx : rule.order) {
      bool pass = rule.restraints[idx]->Test(user, laser);
      RestraintStats& stats = rule.stats[idx];
      ++stats.evals;
      if (pass) {
        ++stats.passes;
      } else {
        all_pass = false;
        break;  // Conjunction short-circuits.
      }
    }
    if (cost_based_ordering_) {
      MaybeReorder(rule);
    }
    if (all_pass) {
      // Cast the die: user sampling for staged rollout.
      return SampleDie(name_, user.user_id) < rule.pass_probability;
    }
  }
  return false;
}

std::vector<std::vector<GatekeeperProject::RestraintStatsView>>
GatekeeperProject::StatsSnapshot() const {
  std::vector<std::vector<RestraintStatsView>> snapshot;
  snapshot.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    std::vector<RestraintStatsView> rule_stats;
    rule_stats.reserve(rule.restraints.size());
    for (size_t idx : rule.order) {
      RestraintStatsView view;
      view.type = std::string(rule.restraints[idx]->type_name());
      view.cost = rule.restraints[idx]->cost();
      view.evals = rule.stats[idx].evals;
      view.passes = rule.stats[idx].passes;
      rule_stats.push_back(std::move(view));
    }
    snapshot.push_back(std::move(rule_stats));
  }
  return snapshot;
}

Status GatekeeperRuntime::LoadProject(const Json& config) {
  ASSIGN_OR_RETURN(GatekeeperProject project, GatekeeperProject::FromJson(config));
  project.set_cost_based_ordering(cost_based_ordering_);
  std::string name = project.name();
  projects_[name] = std::make_unique<GatekeeperProject>(std::move(project));
  return OkStatus();
}

Status GatekeeperRuntime::RemoveProject(const std::string& project) {
  if (projects_.erase(project) == 0) {
    return NotFoundError("no gatekeeper project '" + project + "'");
  }
  return OkStatus();
}

bool GatekeeperRuntime::Check(const std::string& project, const UserContext& user) {
  ++check_count_;
  if (checks_counter_ != nullptr) {
    checks_counter_->Inc();
  }
  auto it = projects_.find(project);
  if (it == projects_.end()) {
    return false;
  }
  bool pass = it->second->Check(user, laser_);
  if (pass && passes_counter_ != nullptr) {
    passes_counter_->Inc();
  }
  return pass;
}

Status GatekeeperRuntime::ApplyConfigUpdate(const std::string& path,
                                            const std::string& json_text) {
  if (!path.starts_with("gatekeeper/")) {
    return InvalidArgumentError("not a gatekeeper config path: " + path);
  }
  if (updates_counter_ != nullptr) {
    updates_counter_->Inc();
  }
  if (json_text.empty()) {
    // Tombstone: project deleted. Derive the name from the path.
    std::string name = path.substr(strlen("gatekeeper/"));
    if (name.ends_with(".json")) {
      name = name.substr(0, name.size() - 5);
    }
    projects_.erase(name);
    return OkStatus();
  }
  ASSIGN_OR_RETURN(Json config, Json::Parse(json_text));
  return LoadProject(config);
}

void GatekeeperRuntime::set_cost_based_ordering(bool enabled) {
  cost_based_ordering_ = enabled;
  for (auto& [name, project] : projects_) {
    project->set_cost_based_ordering(enabled);
  }
}

}  // namespace configerator
