#include "src/gatekeeper/project.h"

#include <algorithm>
#include <numeric>

namespace configerator {

namespace {

constexpr uint64_t kReorderInterval = 1024;

}  // namespace

GatekeeperProject::GatekeeperProject(CompiledProjectSpec spec)
    : spec_(std::move(spec)) {
  rules_.resize(spec_.rules.size());
  for (size_t r = 0; r < spec_.rules.size(); ++r) {
    RuleState& state = rules_[r];
    state.order.resize(spec_.rules[r].restraints.size());
    std::iota(state.order.begin(), state.order.end(), size_t{0});
    state.stats.resize(spec_.rules[r].restraints.size());
  }
}

Result<GatekeeperProject> GatekeeperProject::FromJson(
    const Json& config, const RestraintRegistry& registry) {
  ASSIGN_OR_RETURN(CompiledProjectSpec spec, CompileProjectSpec(config, registry));
  return GatekeeperProject(std::move(spec));
}

void GatekeeperProject::MaybeReorder(const CompiledRuleSpec& rule,
                                     RuleState& state) const {
  if (++state.evals_since_reorder < kReorderInterval ||
      rule.restraints.size() < 2) {
    return;
  }
  state.evals_since_reorder = 0;
  // For a conjunction, evaluate first the restraint with the lowest
  // cost / P(short-circuit) = cost / (1 - pass_rate). A restraint that is
  // cheap and usually false eliminates most work.
  std::stable_sort(state.order.begin(), state.order.end(),
                   [&rule, &state](size_t a, size_t b) {
                     auto rank = [&rule, &state](size_t i) {
                       const RestraintStats& s = state.stats[i];
                       double pass_rate =
                           s.evals == 0
                               ? 0.5
                               : static_cast<double>(s.passes) /
                                     static_cast<double>(s.evals);
                       double short_circuit = std::max(1.0 - pass_rate, 1e-6);
                       return rule.restraints[i]->cost() / short_circuit;
                     };
                     return rank(a) < rank(b);
                   });
}

bool GatekeeperProject::Check(const UserContext& user,
                              const LaserStore* laser) const {
  for (size_t r = 0; r < spec_.rules.size(); ++r) {
    const CompiledRuleSpec& rule = spec_.rules[r];
    RuleState& state = rules_[r];
    bool all_pass = true;
    for (size_t idx : state.order) {
      bool pass = rule.restraints[idx]->Test(user, laser);
      RestraintStats& stats = state.stats[idx];
      ++stats.evals;
      if (pass) {
        ++stats.passes;
      } else {
        all_pass = false;
        break;  // Conjunction short-circuits.
      }
    }
    if (cost_based_ordering_) {
      MaybeReorder(rule, state);
    }
    if (all_pass) {
      // Cast the die: user sampling for staged rollout.
      return GatekeeperDie(spec_.salt, user.user_id) < rule.pass_probability;
    }
  }
  return false;
}

std::vector<std::vector<GatekeeperProject::RestraintStatsView>>
GatekeeperProject::StatsSnapshot() const {
  std::vector<std::vector<RestraintStatsView>> snapshot;
  snapshot.reserve(spec_.rules.size());
  for (size_t r = 0; r < spec_.rules.size(); ++r) {
    const CompiledRuleSpec& rule = spec_.rules[r];
    const RuleState& state = rules_[r];
    std::vector<RestraintStatsView> rule_stats;
    rule_stats.reserve(rule.restraints.size());
    for (size_t idx : state.order) {
      RestraintStatsView view;
      view.type = std::string(rule.restraints[idx]->type_name());
      view.cost = rule.restraints[idx]->cost();
      view.evals = state.stats[idx].evals;
      view.passes = state.stats[idx].passes;
      rule_stats.push_back(std::move(view));
    }
    snapshot.push_back(std::move(rule_stats));
  }
  return snapshot;
}

}  // namespace configerator
