#include "src/gatekeeper/runtime.h"

#include <cstring>

namespace configerator {

namespace {

// Thread-local snapshot cache: (runtime id, version, pinned snapshot). As
// long as the published version is unchanged, a reader thread reuses its
// pinned snapshot without touching the atomic shared_ptr (and its contended
// refcount) at all. Keyed by a globally unique runtime id so the cache can
// never confuse two runtimes (ids are never reused, unlike addresses).
struct TlsSnapCache {
  uint64_t runtime_id = 0;
  uint64_t version = 0;
  std::shared_ptr<const GatekeeperSnapshot> snap;
};
thread_local TlsSnapCache t_snap_cache;

std::atomic<uint64_t> g_next_runtime_id{1};

constexpr size_t kCountStripes = 8;

size_t CountStripe() {
  static std::atomic<size_t> next_slot{0};
  thread_local size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kCountStripes;
  return slot;
}

}  // namespace

GatekeeperRuntime::GatekeeperRuntime(const LaserStore* laser)
    : laser_(laser),
      id_(g_next_runtime_id.fetch_add(1, std::memory_order_relaxed)) {
  snapshot_ = std::make_shared<const GatekeeperSnapshot>(
      next_version_, GatekeeperSnapshot::ProjectMap{});
  published_version_.store(next_version_, std::memory_order_release);
  ++next_version_;
}

GatekeeperRuntime::~GatekeeperRuntime() = default;

const GatekeeperSnapshot* GatekeeperRuntime::AcquireSnapshot() const {
  TlsSnapCache& cache = t_snap_cache;
  uint64_t v = published_version_.load(std::memory_order_acquire);
  if (cache.runtime_id == id_ && cache.version >= v && cache.snap != nullptr) {
    return cache.snap.get();
  }
  // Version moved (or this thread never saw this runtime): re-pin. The
  // writer assigns snapshot_ before release-storing the version, so the
  // snapshot copied here is at least as new as `v`.
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    cache.snap = snapshot_;
  }
  cache.runtime_id = id_;
  cache.version = cache.snap->version();
  return cache.snap.get();
}

std::shared_ptr<const GatekeeperSnapshot> GatekeeperRuntime::snapshot() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snapshot_;
}

bool GatekeeperRuntime::Check(const std::string& project,
                              const UserContext& user) const {
  check_counts_[CountStripe()].v.fetch_add(1, std::memory_order_relaxed);
  if (checks_counter_ != nullptr) {
    checks_counter_->Inc();
  }
  const GatekeeperSnapshot* snap = AcquireSnapshot();
  const CompiledProject* compiled = snap->Find(project);
  if (compiled == nullptr) {
    return false;
  }
  bool pass = compiled->Check(user, laser_);
  if (pass && passes_counter_ != nullptr) {
    passes_counter_->Inc();
  }
  return pass;
}

size_t GatekeeperRuntime::CheckMany(const std::string& project,
                                    const std::vector<UserContext>& users,
                                    std::vector<uint8_t>* results) const {
  const size_t n = users.size();
  if (results != nullptr) {
    results->assign(n, 0);
  }
  if (n == 0) {
    return 0;
  }
  check_counts_[CountStripe()].v.fetch_add(n, std::memory_order_relaxed);
  if (checks_counter_ != nullptr) {
    checks_counter_->Inc(n);
  }
  const GatekeeperSnapshot* snap = AcquireSnapshot();
  const CompiledProject* compiled = snap->Find(project);
  if (compiled == nullptr) {
    return 0;
  }
  size_t passed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (compiled->Check(users[i], laser_)) {
      ++passed;
      if (results != nullptr) {
        (*results)[i] = 1;
      }
    }
  }
  if (passed > 0 && passes_counter_ != nullptr) {
    passes_counter_->Inc(passed);
  }
  return passed;
}

uint64_t GatekeeperRuntime::check_count() const {
  uint64_t total = 0;
  for (const PaddedCounter& stripe : check_counts_) {
    total += stripe.v.load(std::memory_order_relaxed);
  }
  return total;
}

size_t GatekeeperRuntime::project_count() const {
  return AcquireSnapshot()->project_count();
}

bool GatekeeperRuntime::HasProject(const std::string& project) const {
  return AcquireSnapshot()->Find(project) != nullptr;
}

std::vector<std::vector<CompiledProject::RestraintStatsView>>
GatekeeperRuntime::StatsSnapshot(const std::string& project) const {
  std::shared_ptr<const GatekeeperSnapshot> snap = snapshot();
  const CompiledProject* compiled = snap->Find(project);
  if (compiled == nullptr) {
    return {};
  }
  return compiled->StatsView();
}

void GatekeeperRuntime::PublishLocked() {
  GatekeeperSnapshot::ProjectMap projects;
  for (const auto& [name, source] : sources_) {
    projects.emplace(name, source.compiled);
  }
  uint64_t version = next_version_++;
  auto snap =
      std::make_shared<const GatekeeperSnapshot>(version, std::move(projects));
  // Order matters: snapshot first, then version (release) — a reader that
  // observes the new version is guaranteed to copy a snapshot at least that
  // new (see AcquireSnapshot). The critical section is two refcount ops.
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snapshot_ = std::move(snap);
  }
  published_version_.store(version, std::memory_order_release);
  if (swaps_counter_ != nullptr) {
    swaps_counter_->Inc();
  }
  if (version_gauge_ != nullptr) {
    version_gauge_->Set(static_cast<double>(version));
  }
}

Status GatekeeperRuntime::LoadProject(const Json& config) {
  ASSIGN_OR_RETURN(CompiledProjectSpec spec, CompileProjectSpec(config));
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::string name = spec.name;
  Source source;
  source.spec = spec;
  // New/replaced config: declared order, fresh stats (the restraint set may
  // have changed, so old statistics are not meaningful for it).
  source.compiled = std::make_shared<const CompiledProject>(
      std::move(spec), std::vector<std::vector<size_t>>{}, nullptr);
  sources_[name] = std::move(source);
  PublishLocked();
  return OkStatus();
}

Status GatekeeperRuntime::RemoveProject(const std::string& project) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (sources_.erase(project) == 0) {
    return NotFoundError("no gatekeeper project '" + project + "'");
  }
  PublishLocked();
  return OkStatus();
}

Status GatekeeperRuntime::ApplyConfigUpdateInternal(const std::string& path,
                                                    const std::string& json_text) {
  if (!path.starts_with("gatekeeper/")) {
    return InvalidArgumentError("not a gatekeeper config path: " + path);
  }
  if (updates_counter_ != nullptr) {
    updates_counter_->Inc();
  }
  if (json_text.empty()) {
    // Tombstone: project deleted. Derive the name from the path.
    std::string name = path.substr(strlen("gatekeeper/"));
    if (name.ends_with(".json")) {
      name = name.substr(0, name.size() - 5);
    }
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (sources_.erase(name) > 0) {
      PublishLocked();
    }
    return OkStatus();
  }
  ASSIGN_OR_RETURN(Json config, Json::Parse(json_text));
  return LoadProject(config);
}

Status GatekeeperRuntime::ApplyConfigUpdate(const std::string& path,
                                            const std::string& json_text) {
  return ApplyConfigUpdateInternal(path, json_text);
}

Status GatekeeperRuntime::ApplyConfigUpdate(const std::string& path,
                                            const std::string& json_text,
                                            int64_t zxid, SimTime now) {
  if (obs_ == nullptr || zxid < 0) {
    return ApplyConfigUpdateInternal(path, json_text);
  }
  // Causal join: the span parents at whatever trace the distribution layer
  // bound to this zxid, so the hot swap shows up in the commit's span tree.
  TraceContext parent = obs_->tracer.ZxidContext(zxid);
  TraceContext span =
      obs_->tracer.StartSpan(parent, "gatekeeper.snapshot_swap", host_, now);
  Status status = ApplyConfigUpdateInternal(path, json_text);
  obs_->tracer.EndSpan(span, now);
  return status;
}

void GatekeeperRuntime::Rebuild() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  for (auto& [name, source] : sources_) {
    std::vector<ProjectStats::Folded> folded = source.compiled->stats()->Fold();
    std::vector<std::vector<size_t>> orders =
        cost_based_ordering_ ? CostBasedOrders(source.spec, folded)
                             : DeclaredOrders(source.spec);
    // Same spec, same (shared) stats block, new evaluation order: learning
    // carries across the swap because stats are indexed by declared
    // position, not by order slot.
    source.compiled = std::make_shared<const CompiledProject>(
        source.spec, std::move(orders), source.compiled->stats());
  }
  if (folds_counter_ != nullptr) {
    folds_counter_->Inc();
  }
  PublishLocked();
}

void GatekeeperRuntime::set_cost_based_ordering(bool enabled) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (cost_based_ordering_ == enabled) {
    return;
  }
  cost_based_ordering_ = enabled;
  if (!enabled) {
    // Revert every project to declared order right away (benches rely on the
    // ablation taking effect immediately).
    for (auto& [name, source] : sources_) {
      source.compiled = std::make_shared<const CompiledProject>(
          source.spec, DeclaredOrders(source.spec), source.compiled->stats());
    }
    PublishLocked();
  }
}

void GatekeeperRuntime::AttachObservability(Observability* obs,
                                            const std::string& host) {
  obs_ = obs;
  host_ = host;
  checks_counter_ = obs->metrics.GetCounter("gk_checks_total");
  passes_counter_ = obs->metrics.GetCounter("gk_passes_total");
  updates_counter_ = obs->metrics.GetCounter("gk_config_updates_total");
  swaps_counter_ = obs->metrics.GetCounter("gk_snapshot_swaps_total");
  folds_counter_ = obs->metrics.GetCounter("gk_stats_folds_total");
  MetricLabels labels;
  if (!host.empty()) {
    labels.emplace("server", host);
  }
  version_gauge_ = obs->metrics.GetGauge("gk_snapshot_version", labels);
  version_gauge_->Set(
      static_cast<double>(published_version_.load(std::memory_order_acquire)));
}

}  // namespace configerator
