// The naive reference evaluator for differential testing (following Xu &
// Legunsen's configuration-testing framing: test a config value by running
// the code that consumes it). NaiveEvaluator walks rules and restraints in
// *declared* order, keeps no statistics, and never reorders — the simplest
// possible semantics of a Gatekeeper config. Every optimized evaluator
// (the cost-ordered learner, the concurrent shared-snapshot runtime) must
// agree with it on every (config, user) pair; the DST harness and the fuzz
// battery assert exactly that.
//
// Check() is const and touches no mutable state, so one NaiveEvaluator can
// be shared freely across threads.

#ifndef SRC_GATEKEEPER_NAIVE_H_
#define SRC_GATEKEEPER_NAIVE_H_

#include <string>

#include "src/gatekeeper/compile.h"

namespace configerator {

class NaiveEvaluator {
 public:
  static Result<NaiveEvaluator> FromJson(
      const Json& config,
      const RestraintRegistry& registry = RestraintRegistry::Builtin());

  const std::string& name() const { return spec_.name; }
  size_t rule_count() const { return spec_.rules.size(); }

  // First rule whose conjunction holds (declared order) casts the die; no
  // rule matching → false. Thread-safe: no state is mutated.
  bool Check(const UserContext& user, const LaserStore* laser) const;

 private:
  explicit NaiveEvaluator(CompiledProjectSpec spec) : spec_(std::move(spec)) {}

  CompiledProjectSpec spec_;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_NAIVE_H_
