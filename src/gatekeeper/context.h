// The per-request user context a Gatekeeper check evaluates against
// (paper §4): who the user is, where they are, what device/app they use.

#ifndef SRC_GATEKEEPER_CONTEXT_H_
#define SRC_GATEKEEPER_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>

namespace configerator {

struct UserContext {
  int64_t user_id = 0;
  std::string country;       // "US", "BR", ...
  std::string locale;        // "en_US", ...
  std::string app;           // "fb4a", "messenger", "www", ...
  std::string device;        // "iphone6", "galaxy_s5", ...
  std::string platform;      // "ios", "android", "www".
  bool is_employee = false;
  int32_t account_age_days = 0;
  int32_t friend_count = 0;
  int32_t app_version = 0;   // Monotone build number.

  // Open-ended attributes for product-specific restraints.
  std::map<std::string, std::string> string_attrs;
  std::map<std::string, double> numeric_attrs;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_CONTEXT_H_
