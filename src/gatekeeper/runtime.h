// The concurrent Gatekeeper runtime for a frontend server (paper §4): holds
// the live projects and answers gk_check() from any number of worker threads
// while config updates are applied live underneath them.
//
// Design (RCU-style shared snapshot):
//   * All threads share one immutable GatekeeperSnapshot. Check()/CheckMany()
//     are const and thread-safe: they acquire the current snapshot, evaluate
//     against it, and record execution statistics into striped relaxed
//     atomics — no locks, no in-place mutation, readers never block.
//   * Config updates (LoadProject / RemoveProject / ApplyConfigUpdate)
//     compile a *new* snapshot and publish it RCU-style: a brief
//     pointer-swap critical section followed by a release store of the
//     published version. In-flight checks finish on the old snapshot; the
//     old snapshot is freed when its last reader drops it. Writers serialize
//     on a mutex; snapshot versions are strictly monotone.
//   * Cost-based restraint reordering is an epoch job: Rebuild() folds the
//     striped statistics and publishes a snapshot whose per-rule evaluation
//     orders are recomputed from the fold (cheap, usually-false restraints
//     first). Unchanged projects keep their stats blocks across swaps, so
//     learning survives both epochs and unrelated config updates.
//   * A hot thread caches the snapshot pointer thread-locally and
//     revalidates it against the published version with one acquire load per
//     check, so the steady-state hot path does no reference counting and
//     takes no lock at all; re-pinning after a swap costs one brief
//     pointer-copy lock (two refcount ops — not std::atomic<shared_ptr>,
//     whose libstdc++ spinlock ThreadSanitizer cannot model). CheckMany()
//     additionally amortizes the snapshot acquire, the project lookup, and
//     the die-salt hash over a whole batch of users.
//
// Observability (opt-in via AttachObservability): gk_checks_total /
// gk_passes_total / gk_config_updates_total counters on the hot path,
// gk_snapshot_swaps_total + gk_stats_folds_total + a gk_snapshot_version
// gauge on the writer path, and — when a config update carries a zxid — a
// "gatekeeper.snapshot_swap" span parented at that commit's trace, so a
// proxy-applied update shows up in the commit's causal span tree.

#ifndef SRC_GATEKEEPER_RUNTIME_H_
#define SRC_GATEKEEPER_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/gatekeeper/snapshot.h"
#include "src/obs/observability.h"

namespace configerator {

class GatekeeperRuntime {
 public:
  explicit GatekeeperRuntime(const LaserStore* laser = nullptr);
  ~GatekeeperRuntime();

  GatekeeperRuntime(const GatekeeperRuntime&) = delete;
  GatekeeperRuntime& operator=(const GatekeeperRuntime&) = delete;

  // --- Writer path (serialized; safe to call while readers check) ----------

  // Loads or replaces a project from its JSON config and publishes a new
  // snapshot. Other projects' compiled form and learned stats are untouched.
  Status LoadProject(const Json& config);
  Status RemoveProject(const std::string& project);

  // Hook for the distribution layer: config updates under "gatekeeper/"
  // (path "gatekeeper/<project>.json") hot-swap the snapshot; an empty value
  // removes the project. The traced overload parents a
  // "gatekeeper.snapshot_swap" span at the commit bound to `zxid` (no-op
  // when unattached or the zxid was never traced).
  Status ApplyConfigUpdate(const std::string& path, const std::string& json_text);
  Status ApplyConfigUpdate(const std::string& path, const std::string& json_text,
                           int64_t zxid, SimTime now);

  // Epoch job: folds the striped stats of every project and publishes a
  // snapshot with recomputed cost-based evaluation orders. Call it
  // periodically from a maintenance thread (or between request batches);
  // never required for correctness.
  void Rebuild();

  // Cost-based ordering toggle (on by default; benches ablate it). Turning
  // it off republishes every project in declared order and makes Rebuild()
  // keep declared order.
  void set_cost_based_ordering(bool enabled);

  // --- Read path (const, thread-safe, lock-free) ----------------------------

  // Figure 4's gk_check(). Unknown project → false (fail closed: an
  // undistributed project gates nothing on).
  bool Check(const std::string& project, const UserContext& user) const;

  // Batch check: one snapshot acquire + one project lookup for the whole
  // batch. Returns the number of passing users; if `results` is non-null it
  // is resized to users.size() with the per-user outcomes.
  size_t CheckMany(const std::string& project,
                   const std::vector<UserContext>& users,
                   std::vector<uint8_t>* results) const;

  // Current snapshot (acquire). Holding the returned shared_ptr pins that
  // version; meant for tests, tools, and stats inspection — not the hot path.
  std::shared_ptr<const GatekeeperSnapshot> snapshot() const;

  // Version of the most recently published snapshot. Strictly monotone.
  uint64_t snapshot_version() const {
    return published_version_.load(std::memory_order_acquire);
  }

  // Folded per-restraint stats of `project` in its current evaluation order;
  // empty if unknown.
  std::vector<std::vector<CompiledProject::RestraintStatsView>> StatsSnapshot(
      const std::string& project) const;

  // Total Check()/CheckMany() evaluations, folded across thread stripes.
  // Exact once callers have quiesced.
  uint64_t check_count() const;

  size_t project_count() const;
  bool HasProject(const std::string& project) const;

  // Opt-in metrics + tracing. Hot-path cost is two relaxed increments
  // through cached pointers — the Figure-15 bench ablates this and demands
  // < 5% overhead. `host` labels the per-server gk_snapshot_version gauge
  // and stamps snapshot-swap spans (empty = unlabeled).
  void AttachObservability(Observability* obs, const std::string& host = "");

 private:
  struct Source {
    CompiledProjectSpec spec;
    // The live compiled form (shared with published snapshots), so updates
    // to *other* projects can reuse it — stats block included.
    std::shared_ptr<const CompiledProject> compiled;
  };

  // Writer helpers; callers hold writer_mu_.
  void PublishLocked();
  Status ApplyConfigUpdateInternal(const std::string& path,
                                   const std::string& json_text);

  // Hot-path snapshot access: thread-locally cached raw pointer, revalidated
  // against published_version_ with one acquire load. The pointer stays
  // valid for the duration of the calling function (the thread-local cache
  // holds a reference); do not store it.
  const GatekeeperSnapshot* AcquireSnapshot() const;

  const LaserStore* laser_;
  const uint64_t id_;  // Globally unique, for the thread-local cache.

  // Published state. Steady-state readers only load published_version_; the
  // shared_ptr itself is copied under snap_mu_, and only when the version
  // moved (or a thread sees this runtime for the first time). Writers
  // assign snapshot_ first, then release-store the version, so a reader
  // that re-pins after observing version v always gets a snapshot >= v.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const GatekeeperSnapshot> snapshot_;  // Guarded by snap_mu_.
  std::atomic<uint64_t> published_version_{0};

  // Writers: serialized.
  mutable std::mutex writer_mu_;
  std::map<std::string, Source> sources_;
  uint64_t next_version_ = 1;
  bool cost_based_ordering_ = true;

  // Striped check counter (check_count() folds it). Stripe count matches
  // CountStripe() in runtime.cc.
  struct alignas(64) PaddedCounter {
    std::atomic<uint64_t> v{0};
  };
  mutable std::array<PaddedCounter, 8> check_counts_;

  // Observability (nullptr = unattached; near-zero overhead).
  Observability* obs_ = nullptr;
  std::string host_;
  Counter* checks_counter_ = nullptr;
  Counter* passes_counter_ = nullptr;
  Counter* updates_counter_ = nullptr;
  Counter* swaps_counter_ = nullptr;
  Counter* folds_counter_ = nullptr;
  Gauge* version_gauge_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_RUNTIME_H_
