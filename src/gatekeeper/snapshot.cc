#include "src/gatekeeper/snapshot.h"

#include <algorithm>

namespace configerator {

namespace {

// Cheap thread → stripe mapping: each thread draws a slot id once, ever.
size_t ThreadStripe() {
  static std::atomic<size_t> next_slot{0};
  thread_local size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % ProjectStats::kStripes;
  return slot;
}

}  // namespace

ProjectStats::ProjectStats(size_t restraint_count)
    : restraint_count_(restraint_count) {
  for (Stripe& stripe : stripes_) {
    // make_unique value-initializes: every atomic starts at 0.
    stripe.cells = std::make_unique<RestraintCell[]>(restraint_count);
  }
}

RestraintCell* ProjectStats::StripeCells() {
  return stripes_[ThreadStripe()].cells.get();
}

std::vector<ProjectStats::Folded> ProjectStats::Fold() const {
  std::vector<Folded> folded(restraint_count_);
  for (const Stripe& stripe : stripes_) {
    for (size_t i = 0; i < restraint_count_; ++i) {
      folded[i].evals +=
          stripe.cells[i].evals.load(std::memory_order_relaxed);
      folded[i].passes +=
          stripe.cells[i].passes.load(std::memory_order_relaxed);
    }
  }
  return folded;
}

CompiledProject::CompiledProject(CompiledProjectSpec spec,
                                 std::vector<std::vector<size_t>> orders,
                                 std::shared_ptr<ProjectStats> stats)
    : spec_(std::move(spec)), orders_(std::move(orders)), stats_(std::move(stats)) {
  size_t total = 0;
  rule_base_.reserve(spec_.rules.size());
  for (const CompiledRuleSpec& rule : spec_.rules) {
    rule_base_.push_back(total);
    total += rule.restraints.size();
  }
  if (orders_.empty()) {
    orders_ = DeclaredOrders(spec_);
  }
  if (stats_ == nullptr) {
    stats_ = std::make_shared<ProjectStats>(total);
  }
}

bool CompiledProject::Check(const UserContext& user, const LaserStore* laser) const {
  RestraintCell* cells = stats_->StripeCells();
  for (size_t r = 0; r < spec_.rules.size(); ++r) {
    const CompiledRuleSpec& rule = spec_.rules[r];
    const std::vector<size_t>& order = orders_[r];
    RestraintCell* rule_cells = cells + rule_base_[r];
    bool all_pass = true;
    for (size_t idx : order) {
      bool pass = rule.restraints[idx]->Test(user, laser);
      RestraintCell& cell = rule_cells[idx];
      cell.evals.fetch_add(1, std::memory_order_relaxed);
      if (pass) {
        cell.passes.fetch_add(1, std::memory_order_relaxed);
      } else {
        all_pass = false;
        break;  // Conjunction short-circuits.
      }
    }
    if (all_pass) {
      return GatekeeperDie(spec_.salt, user.user_id) < rule.pass_probability;
    }
  }
  return false;
}

std::vector<std::vector<CompiledProject::RestraintStatsView>>
CompiledProject::StatsView() const {
  std::vector<ProjectStats::Folded> folded = stats_->Fold();
  std::vector<std::vector<RestraintStatsView>> view;
  view.reserve(spec_.rules.size());
  for (size_t r = 0; r < spec_.rules.size(); ++r) {
    const CompiledRuleSpec& rule = spec_.rules[r];
    std::vector<RestraintStatsView> rule_view;
    rule_view.reserve(rule.restraints.size());
    for (size_t idx : orders_[r]) {
      RestraintStatsView v;
      v.type = std::string(rule.restraints[idx]->type_name());
      v.cost = rule.restraints[idx]->cost();
      v.evals = folded[rule_base_[r] + idx].evals;
      v.passes = folded[rule_base_[r] + idx].passes;
      rule_view.push_back(std::move(v));
    }
    view.push_back(std::move(rule_view));
  }
  return view;
}

std::vector<std::vector<size_t>> DeclaredOrders(const CompiledProjectSpec& spec) {
  std::vector<std::vector<size_t>> orders;
  orders.reserve(spec.rules.size());
  for (const CompiledRuleSpec& rule : spec.rules) {
    std::vector<size_t> order(rule.restraints.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    orders.push_back(std::move(order));
  }
  return orders;
}

std::vector<std::vector<size_t>> CostBasedOrders(
    const CompiledProjectSpec& spec,
    const std::vector<ProjectStats::Folded>& folded) {
  std::vector<std::vector<size_t>> orders = DeclaredOrders(spec);
  size_t base = 0;
  for (size_t r = 0; r < spec.rules.size(); ++r) {
    const CompiledRuleSpec& rule = spec.rules[r];
    if (rule.restraints.size() >= 2) {
      // For a conjunction, evaluate first the restraint with the lowest
      // cost / P(short-circuit) = cost / (1 - pass_rate): cheap and usually
      // false eliminates most work.
      std::stable_sort(orders[r].begin(), orders[r].end(),
                       [&](size_t a, size_t b) {
                         auto rank = [&](size_t i) {
                           double pass_rate = folded[base + i].pass_rate();
                           double short_circuit =
                               std::max(1.0 - pass_rate, 1e-6);
                           return rule.restraints[i]->cost() / short_circuit;
                         };
                         return rank(a) < rank(b);
                       });
    }
    base += rule.restraints.size();
  }
  return orders;
}

}  // namespace configerator
