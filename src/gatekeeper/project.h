// Gatekeeper projects and runtime (paper §4).
//
// A project's gating logic is an ordered list of if-statements; each is a
// conjunction of restraints plus a pass probability for user sampling
// (1% → 10% → 100% rollouts). The logic lives in a JSON config and is
// updated live; the runtime rebuilds the boolean tree on config update.
//
// Like the paper's SQL-style cost-based optimization, the runtime collects
// per-restraint execution statistics (pass rate; declared cost) and reorders
// each conjunction so cheap, likely-short-circuiting restraints run first —
// without changing semantics (restraints are pure).
//
// JSON shape:
//   {
//     "project": "ProjectX",
//     "rules": [
//       {"restraints": [{"type": "employee"}, ...], "pass_probability": 0.01},
//       ...
//     ]
//   }

#ifndef SRC_GATEKEEPER_PROJECT_H_
#define SRC_GATEKEEPER_PROJECT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/gatekeeper/restraint.h"
#include "src/obs/observability.h"

namespace configerator {

class GatekeeperProject {
 public:
  // Compiles a project from its JSON config. Rejects malformed specs.
  static Result<GatekeeperProject> FromJson(
      const Json& config,
      const RestraintRegistry& registry = RestraintRegistry::Builtin());

  const std::string& name() const { return name_; }

  // The gk_check() of Figure 4: evaluates rules in order; the first rule
  // whose conjunction holds casts the (deterministic per-user) sampling die.
  // No rule matching → false.
  //
  // Thread-compatibility: Check() updates evaluation statistics, so
  // concurrent callers need one GatekeeperProject instance per thread (the
  // production pattern: the runtime rebuilds per-worker state on config
  // update anyway).
  bool Check(const UserContext& user, const LaserStore* laser) const;

  // Cost-based restraint reordering (on by default; benches ablate it).
  void set_cost_based_ordering(bool enabled) { cost_based_ordering_ = enabled; }

  size_t rule_count() const { return rules_.size(); }

  // Execution-statistics snapshot, per rule, in *current evaluation order*
  // (the paper: the runtime leverages "the execution time of a restraint and
  // its probability of returning true" — this exposes what it learned).
  struct RestraintStatsView {
    std::string type;
    double cost = 0;
    uint64_t evals = 0;
    uint64_t passes = 0;

    double pass_rate() const {
      return evals == 0 ? 0.0
                        : static_cast<double>(passes) / static_cast<double>(evals);
    }
  };
  std::vector<std::vector<RestraintStatsView>> StatsSnapshot() const;

 private:
  struct RestraintStats {
    uint64_t evals = 0;
    uint64_t passes = 0;
  };

  struct Rule {
    std::vector<RestraintPtr> restraints;
    double pass_probability = 0;
    // Evaluation order over `restraints`, re-derived from stats.
    std::vector<size_t> order;
    std::vector<RestraintStats> stats;
    uint64_t evals_since_reorder = 0;
  };

  void MaybeReorder(Rule& rule) const;

  std::string name_;
  mutable std::vector<Rule> rules_;  // Mutable: stats/order are bookkeeping.
  bool cost_based_ordering_ = true;
};

// Holds the live projects for a frontend server; integrates with the config
// distribution path (project configs arrive as JSON under "gatekeeper/").
class GatekeeperRuntime {
 public:
  explicit GatekeeperRuntime(const LaserStore* laser = nullptr) : laser_(laser) {}

  // Loads or replaces a project from its JSON config.
  Status LoadProject(const Json& config);
  Status RemoveProject(const std::string& project);

  // Entry point matching Figure 4's gk_check(). Unknown project → false
  // (fail closed: an undistributed project gates nothing on).
  bool Check(const std::string& project, const UserContext& user);

  // Hook for the distribution layer: config updates under "gatekeeper/"
  // (path "gatekeeper/<project>.json") re-compile the project in place; an
  // empty value removes it.
  Status ApplyConfigUpdate(const std::string& path, const std::string& json_text);

  void set_cost_based_ordering(bool enabled);

  // Opt-in metrics: gk_checks_total / gk_passes_total / gk_config_updates_
  // total. Hot-path cost is two increments through cached pointers — the
  // Figure-15 bench ablates this and demands < 5% overhead.
  void AttachObservability(Observability* obs) {
    checks_counter_ = obs->metrics.GetCounter("gk_checks_total");
    passes_counter_ = obs->metrics.GetCounter("gk_passes_total");
    updates_counter_ = obs->metrics.GetCounter("gk_config_updates_total");
  }

  uint64_t check_count() const { return check_count_; }
  size_t project_count() const { return projects_.size(); }
  bool HasProject(const std::string& project) const {
    return projects_.count(project) > 0;
  }

 private:
  const LaserStore* laser_;
  std::map<std::string, std::unique_ptr<GatekeeperProject>> projects_;
  bool cost_based_ordering_ = true;
  uint64_t check_count_ = 0;
  Counter* checks_counter_ = nullptr;
  Counter* passes_counter_ = nullptr;
  Counter* updates_counter_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_PROJECT_H_
