// Gatekeeper projects (paper §4): the single-threaded learner/reference
// evaluation unit. The concurrent serving runtime lives in
// src/gatekeeper/runtime.h.
//
// A project's gating logic is an ordered list of if-statements; each is a
// conjunction of restraints plus a pass probability for user sampling
// (1% → 10% → 100% rollouts). The logic lives in a JSON config, compiled via
// the shared CompileProjectSpec() path so its validation and semantics match
// every other evaluator in the tree exactly.
//
// Like the paper's SQL-style cost-based optimization, a project collects
// per-restraint execution statistics (pass rate; declared cost) and reorders
// each conjunction so cheap, likely-short-circuiting restraints run first —
// without changing semantics (restraints are pure).
//
// JSON shape:
//   {
//     "project": "ProjectX",
//     "rules": [
//       {"restraints": [{"type": "employee"}, ...], "pass_probability": 0.01},
//       ...
//     ]
//   }

#ifndef SRC_GATEKEEPER_PROJECT_H_
#define SRC_GATEKEEPER_PROJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/gatekeeper/compile.h"

namespace configerator {

class GatekeeperProject {
 public:
  // Compiles a project from its JSON config. Rejects malformed specs.
  static Result<GatekeeperProject> FromJson(
      const Json& config,
      const RestraintRegistry& registry = RestraintRegistry::Builtin());

  const std::string& name() const { return spec_.name; }

  // The gk_check() of Figure 4: evaluates rules in order; the first rule
  // whose conjunction holds casts the (deterministic per-user) sampling die.
  // No rule matching → false.
  //
  // Thread-compatibility: Check() updates evaluation statistics and reorders
  // conjunctions *in place* (plain non-atomic bookkeeping), so a
  // GatekeeperProject must be confined to one thread. It is the
  // learner/reference unit — DST and the differential battery use it
  // single-threaded. Concurrent serving is GatekeeperRuntime
  // (src/gatekeeper/runtime.h), which shares one immutable snapshot across
  // threads and keeps statistics in striped atomics instead.
  bool Check(const UserContext& user, const LaserStore* laser) const;

  // Cost-based restraint reordering (on by default; benches ablate it).
  void set_cost_based_ordering(bool enabled) { cost_based_ordering_ = enabled; }

  size_t rule_count() const { return spec_.rules.size(); }

  // Execution-statistics snapshot, per rule, in *current evaluation order*
  // (the paper: the runtime leverages "the execution time of a restraint and
  // its probability of returning true" — this exposes what it learned).
  struct RestraintStatsView {
    std::string type;
    double cost = 0;
    uint64_t evals = 0;
    uint64_t passes = 0;

    double pass_rate() const {
      return evals == 0 ? 0.0
                        : static_cast<double>(passes) / static_cast<double>(evals);
    }
  };
  std::vector<std::vector<RestraintStatsView>> StatsSnapshot() const;

 private:
  struct RestraintStats {
    uint64_t evals = 0;
    uint64_t passes = 0;
  };

  // Per-rule learning state, parallel to spec_.rules.
  struct RuleState {
    // Evaluation order over the rule's restraints, re-derived from stats.
    std::vector<size_t> order;
    std::vector<RestraintStats> stats;
    uint64_t evals_since_reorder = 0;
  };

  explicit GatekeeperProject(CompiledProjectSpec spec);

  void MaybeReorder(const CompiledRuleSpec& rule, RuleState& state) const;

  CompiledProjectSpec spec_;
  mutable std::vector<RuleState> rules_;  // Mutable: stats/order bookkeeping.
  bool cost_based_ordering_ = true;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_PROJECT_H_
