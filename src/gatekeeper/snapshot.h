// An immutable compiled snapshot of every live Gatekeeper project, shared
// by all worker threads (paper §4: gating logic is evaluated "billions of
// times per second" across many threads while configs are swapped live
// underneath it).
//
// Concurrency model:
//   * Everything reachable from a snapshot is logically immutable — project
//     map, rules, evaluation orders, restraints. Check() is const and
//     thread-safe; any number of threads can evaluate one snapshot forever.
//   * The only mutable state is execution statistics, kept in striped
//     relaxed atomics: each thread bumps its own stripe (separate cache
//     lines), so the hot path never contends and never locks. FoldStats()
//     sums the stripes; the runtime's epoch job uses the fold to compute a
//     better evaluation order for the *next* snapshot — reordering never
//     happens in place.
//   * Stats blocks are shared (by shared_ptr) between snapshot generations
//     whose compiled project did not change, so learning survives both
//     unrelated config updates and epoch reorders. Statistics are indexed
//     by *declared* restraint position, which is stable across reorders.
//
// Versioning: snapshots carry a monotonically increasing version; the
// runtime publishes them RCU-style (readers finish in-flight checks on the
// old snapshot, new checks see the new one).

#ifndef SRC_GATEKEEPER_SNAPSHOT_H_
#define SRC_GATEKEEPER_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/gatekeeper/compile.h"

namespace configerator {

// Per-restraint evaluation counters for one stripe. Relaxed atomics: the
// counts are statistics, not synchronization — exactness at a fold point is
// guaranteed only once the writing threads have quiesced (joined).
struct RestraintCell {
  std::atomic<uint64_t> evals{0};
  std::atomic<uint64_t> passes{0};
};

// Striped statistics for one compiled project. Stripe s holds a private
// array of cells (one per restraint, flattened across rules); threads map to
// stripes by a cheap thread-local slot id, so concurrent writers touch
// disjoint allocations.
class ProjectStats {
 public:
  static constexpr size_t kStripes = 8;

  explicit ProjectStats(size_t restraint_count);

  // The calling thread's stripe.
  RestraintCell* StripeCells();

  // Folded (summed over stripes) totals, indexed like StripeCells.
  struct Folded {
    uint64_t evals = 0;
    uint64_t passes = 0;
    double pass_rate(double if_unobserved = 0.5) const {
      return evals == 0 ? if_unobserved
                        : static_cast<double>(passes) /
                              static_cast<double>(evals);
    }
  };
  std::vector<Folded> Fold() const;

  size_t restraint_count() const { return restraint_count_; }

 private:
  struct Stripe {
    std::unique_ptr<RestraintCell[]> cells;
  };
  size_t restraint_count_;
  std::array<Stripe, kStripes> stripes_;
};

// One project compiled into a snapshot: the shared spec plus a baked
// evaluation order per rule and the (possibly shared) stats block.
class CompiledProject {
 public:
  // `orders` must contain one permutation of [0, restraints) per rule;
  // empty → declared order. `stats` empty → fresh stats.
  CompiledProject(CompiledProjectSpec spec,
                  std::vector<std::vector<size_t>> orders,
                  std::shared_ptr<ProjectStats> stats);

  const std::string& name() const { return spec_.name; }
  const CompiledProjectSpec& spec() const { return spec_; }
  const std::vector<std::vector<size_t>>& orders() const { return orders_; }
  const std::shared_ptr<ProjectStats>& stats() const { return stats_; }

  // Thread-safe const check: evaluates rules in declared order, each
  // conjunction in this snapshot's baked order, recording stats into the
  // calling thread's stripe.
  bool Check(const UserContext& user, const LaserStore* laser) const;

  // Execution-statistics view per rule, in this snapshot's evaluation order
  // (mirrors GatekeeperProject::StatsSnapshot for the concurrent runtime).
  struct RestraintStatsView {
    std::string type;
    double cost = 0;
    uint64_t evals = 0;
    uint64_t passes = 0;
    double pass_rate() const {
      return evals == 0 ? 0.0
                        : static_cast<double>(passes) /
                              static_cast<double>(evals);
    }
  };
  std::vector<std::vector<RestraintStatsView>> StatsView() const;

  size_t restraint_count() const { return stats_->restraint_count(); }

 private:
  friend class GatekeeperSnapshot;

  CompiledProjectSpec spec_;
  std::vector<std::vector<size_t>> orders_;  // Per rule, over its restraints.
  std::vector<size_t> rule_base_;            // Flattened stats offset per rule.
  std::shared_ptr<ProjectStats> stats_;
};

// The immutable project map one version of the world. Built only by
// GatekeeperRuntime's writer path; readers hold it via shared_ptr and never
// block.
class GatekeeperSnapshot {
 public:
  using ProjectMap =
      std::map<std::string, std::shared_ptr<const CompiledProject>, std::less<>>;

  GatekeeperSnapshot(uint64_t version, ProjectMap projects)
      : version_(version), projects_(std::move(projects)) {}

  uint64_t version() const { return version_; }
  size_t project_count() const { return projects_.size(); }

  const CompiledProject* Find(std::string_view project) const {
    auto it = projects_.find(project);
    return it == projects_.end() ? nullptr : it->second.get();
  }
  const ProjectMap& projects() const { return projects_; }

 private:
  uint64_t version_;
  ProjectMap projects_;
};

// Computes the cost-based evaluation order for each rule from folded stats:
// ascending cost / P(short-circuit), i.e. cheap, usually-false restraints
// first (the paper's SQL-style optimization). Unobserved restraints assume a
// 0.5 pass rate. Stable, so ties keep declared order.
std::vector<std::vector<size_t>> CostBasedOrders(
    const CompiledProjectSpec& spec, const std::vector<ProjectStats::Folded>& folded);

// Declared-order permutations (the identity), one per rule.
std::vector<std::vector<size_t>> DeclaredOrders(const CompiledProjectSpec& spec);

}  // namespace configerator

#endif  // SRC_GATEKEEPER_SNAPSHOT_H_
