#include "src/gatekeeper/naive.h"

namespace configerator {

Result<NaiveEvaluator> NaiveEvaluator::FromJson(const Json& config,
                                                const RestraintRegistry& registry) {
  ASSIGN_OR_RETURN(CompiledProjectSpec spec, CompileProjectSpec(config, registry));
  return NaiveEvaluator(std::move(spec));
}

bool NaiveEvaluator::Check(const UserContext& user, const LaserStore* laser) const {
  for (const CompiledRuleSpec& rule : spec_.rules) {
    if (RuleMatches(rule, user, laser)) {
      return GatekeeperDie(spec_.salt, user.user_id) < rule.pass_probability;
    }
  }
  return false;
}

}  // namespace configerator
