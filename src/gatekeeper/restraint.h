// Restraints (paper §4): the statically-implemented predicate vocabulary
// from which Gatekeeper projects are composed dynamically through config.
// "Currently, hundreds of restraints have been implemented" — this library
// ships the representative core: identity, geo, device/app, account-shape,
// bucketing, attribute comparisons, and the Laser integration. Negation is
// built into every restraint, so if-statements of negated restraints give
// the gating logic full DNF expressiveness.

#ifndef SRC_GATEKEEPER_RESTRAINT_H_
#define SRC_GATEKEEPER_RESTRAINT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/gatekeeper/context.h"
#include "src/gatekeeper/laser.h"
#include "src/json/json.h"
#include "src/util/status.h"

namespace configerator {

// A compiled restraint instance, ready to evaluate.
class Restraint {
 public:
  virtual ~Restraint() = default;

  // Pure predicate over the context (and read-only Laser).
  virtual bool Evaluate(const UserContext& user, const LaserStore* laser) const = 0;

  // Relative evaluation cost (1.0 = trivial field compare). The runtime's
  // cost-based optimizer uses this together with observed pass rates.
  virtual double cost() const { return 1.0; }

  virtual std::string_view type_name() const = 0;

  bool negate() const { return negate_; }
  void set_negate(bool negate) { negate_ = negate; }

  // Evaluate() with negation applied.
  bool Test(const UserContext& user, const LaserStore* laser) const {
    bool result = Evaluate(user, laser);
    return negate_ ? !result : result;
  }

 private:
  bool negate_ = false;
};

using RestraintPtr = std::unique_ptr<Restraint>;

// Builds a restraint from its JSON spec:
//   {"type": "country", "negate": false, "params": {"countries": ["US","CA"]}}
// The factory validates params and rejects unknown types.
class RestraintRegistry {
 public:
  using Factory = std::function<Result<RestraintPtr>(const Json& params)>;

  // Registry preloaded with all builtin restraint types.
  static const RestraintRegistry& Builtin();

  void Register(const std::string& type, Factory factory);

  Result<RestraintPtr> Create(const Json& spec) const;

  std::vector<std::string> TypeNames() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace configerator

#endif  // SRC_GATEKEEPER_RESTRAINT_H_
