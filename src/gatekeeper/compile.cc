#include "src/gatekeeper/compile.h"

namespace configerator {

Result<CompiledProjectSpec> CompileProjectSpec(const Json& config,
                                               const RestraintRegistry& registry) {
  if (!config.is_object()) {
    return InvalidConfigError("gatekeeper project config must be an object");
  }
  const Json* name = config.Get("project");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return InvalidConfigError("gatekeeper project needs a 'project' name");
  }
  CompiledProjectSpec spec;
  spec.name = name->as_string();
  spec.salt = ProjectSalt(spec.name);

  const Json* rules = config.Get("rules");
  if (rules == nullptr || !rules->is_array()) {
    return InvalidConfigError("gatekeeper project needs a 'rules' list");
  }
  for (const Json& rule_spec : rules->as_array()) {
    if (!rule_spec.is_object()) {
      return InvalidConfigError("gatekeeper rule must be an object");
    }
    CompiledRuleSpec rule;
    const Json* prob = rule_spec.Get("pass_probability");
    if (prob == nullptr || !prob->is_number()) {
      return InvalidConfigError("gatekeeper rule needs 'pass_probability'");
    }
    rule.pass_probability = prob->as_double();
    if (rule.pass_probability < 0 || rule.pass_probability > 1) {
      return InvalidConfigError("pass_probability must be within [0, 1]");
    }
    const Json* restraints = rule_spec.Get("restraints");
    if (restraints == nullptr || !restraints->is_array()) {
      return InvalidConfigError("gatekeeper rule needs a 'restraints' list");
    }
    for (const Json& restraint_spec : restraints->as_array()) {
      ASSIGN_OR_RETURN(RestraintPtr restraint, registry.Create(restraint_spec));
      rule.restraints.push_back(
          std::shared_ptr<const Restraint>(std::move(restraint)));
    }
    spec.rules.push_back(std::move(rule));
  }
  return spec;
}

}  // namespace configerator
