#include "src/pipeline/ci.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "src/canary/canary.h"
#include "src/gatekeeper/project.h"
#include "src/lang/unit_cache.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace configerator {

Sandcastle::Sandcastle(const Repository* repo, const DependencyService* deps)
    : repo_(repo),
      deps_(deps),
      unit_cache_(std::make_unique<CompiledUnitCache>()) {
  // Builtin raw-config validators, keyed by path convention. Ordering
  // matters: the most specific check that applies decides.
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.starts_with("gatekeeper/") || !path.ends_with(".json")) {
          return OkStatus();
        }
        ASSIGN_OR_RETURN(Json json, Json::Parse(content));
        ASSIGN_OR_RETURN(GatekeeperProject project,
                         GatekeeperProject::FromJson(json));
        (void)project;
        return OkStatus();
      });
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.ends_with(".canary.json")) {
          return OkStatus();
        }
        ASSIGN_OR_RETURN(Json json, Json::Parse(content));
        ASSIGN_OR_RETURN(CanarySpec spec, CanarySpec::FromJson(json));
        (void)spec;
        return OkStatus();
      });
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.starts_with("invariants/") || !path.ends_with(".json")) {
          return OkStatus();
        }
        // A spec file must parse with zero I000s: a malformed invariant is a
        // silently-unenforced invariant, which must not land.
        InvariantRegistry registry;
        registry.AddSpecFile(path, content);
        if (!registry.diagnostics.empty()) {
          return InvalidConfigError(registry.diagnostics.front().message);
        }
        return OkStatus();
      });
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.ends_with(".json")) {
          return OkStatus();
        }
        ASSIGN_OR_RETURN(Json json, Json::Parse(content));
        (void)json;
        return OkStatus();
      });
}

Sandcastle::~Sandcastle() = default;

void Sandcastle::RegisterRawValidator(RawValidator validator) {
  raw_validators_.push_back(std::move(validator));
}

std::string CiReport::Summary() const {
  std::string out = passed ? "PASS" : "FAIL";
  out += StrFormat(": %zu entries recompiled", compiled_entries.size());
  if (!reanalyzed_entries.empty() || pruned_dependents > 0) {
    out += StrFormat("; %zu dependent(s) re-analyzed, %zu pruned by symbol "
                     "slices",
                     reanalyzed_entries.size(), pruned_dependents);
  }
  if (closure_truncated) {
    out += " (closure truncated)";
  }
  if (!semantic_impacts.empty()) {
    size_t counts[4] = {0, 0, 0, 0};
    for (const SymbolImpact& impact : semantic_impacts) {
      ++counts[impact.severity()];
    }
    out += StrFormat(
        "; semdiff: %zu no-op, %zu value-delta, %zu control-shift, %zu "
        "type-change",
        counts[0], counts[1], counts[2], counts[3]);
  }
  if (provably_noop) {
    out += " (provably no-op: closure re-analysis skipped)";
  }
  if (!invariant_outcomes.empty()) {
    size_t violated = 0;
    for (const InvariantOutcome& outcome : invariant_outcomes) {
      if (outcome.status == InvariantStatus::kViolated) {
        ++violated;
      }
    }
    out += StrFormat("; invariants: %zu proven, %zu violated, %zu in-jeopardy",
                     invariants_proven, violated, invariants_in_jeopardy);
  }
  if (!lint_findings.empty()) {
    out += StrFormat("; lint: %zu error(s), %zu warning(s)", lint_errors(),
                     lint_warnings());
  }
  for (const std::string& failure : failures) {
    out += "\n  " + failure;
  }
  for (const LintDiagnostic& finding : lint_findings) {
    out += "\n  " + finding.Format();
  }
  return out;
}

FileReader Sandcastle::OverlayReader(const ProposedDiff& diff) const {
  // Copy the diff's writes into the closure: the reader may outlive the call.
  auto overlay = std::make_shared<std::map<std::string, std::optional<std::string>>>();
  for (const FileWrite& write : diff.writes) {
    (*overlay)[write.path] = write.content;
  }
  const Repository* repo = repo_;
  return [overlay, repo](const std::string& path) -> Result<std::string> {
    auto it = overlay->find(path);
    if (it != overlay->end()) {
      if (!it->second.has_value()) {
        return NotFoundError("deleted in diff: " + path);
      }
      return *it->second;
    }
    return repo->ReadFile(path);
  };
}

CiReport Sandcastle::RunTests(const ProposedDiff& diff) const {
  CiReport report;
  // Entries to rebuild: every known entry affected by a touched path, plus
  // touched .cconf files themselves (they may be new entries).
  std::vector<std::string> changed;
  changed.reserve(diff.writes.size());
  for (const FileWrite& write : diff.writes) {
    changed.push_back(write.path);
  }
  std::set<std::string> entries;
  for (const std::string& entry : deps_->EntriesAffectedBy(changed)) {
    entries.insert(entry);
  }
  for (const FileWrite& write : diff.writes) {
    if (write.path.ends_with(".cconf") && write.content.has_value()) {
      entries.insert(write.path);
    }
    if (!write.content.has_value()) {
      // An entry deleted by this diff no longer needs to compile.
      entries.erase(write.path);
    }
  }

  CompilerOptions compiler_options;
  compiler_options.unit_cache = unit_cache_.get();
  compiler_options.metrics = metrics_;
  ConfigCompiler compiler(OverlayReader(diff), compiler_options);
  report.passed = true;
  for (const std::string& entry : entries) {
    auto output = compiler.Compile(entry);
    if (output.ok()) {
      report.compiled_entries.push_back(entry);
    } else {
      report.passed = false;
      report.failures.push_back(entry + ": " + output.status().ToString());
    }
  }

  // Raw-config validation for every written path (compiled outputs included
  // — a malformed generated JSON would indicate a compiler bug).
  for (const FileWrite& write : diff.writes) {
    if (!write.content.has_value()) {
      continue;
    }
    for (const RawValidator& validator : raw_validators_) {
      Status status = validator(write.path, *write.content);
      if (!status.ok()) {
        report.passed = false;
        report.failures.push_back(write.path + ": " + status.ToString());
        break;  // One failure per path is enough signal.
      }
    }
  }

  // Static analysis over everything the diff touches, then over the reverse
  // dependency closure — untouched entries the change can still break.
  // Error-severity findings block the diff just like a failing compile;
  // warnings are advisory unless strict lint is on.
  report.lint_findings = RunLint(diff);

  // Semantic diff: classify every impacted symbol (head tree vs overlay)
  // and attach the classification to the landing. The differ's gating
  // findings (G007–G010) ride the same lint stream and can block.
  std::set<std::string> closure = PrunedClosure(diff, &report);
  const Repository* repo = repo_;
  FileReader head_reader = [repo](const std::string& path) {
    return repo->ReadFile(path);
  };
  SemanticDiffer differ(head_reader, OverlayReader(diff));
  SemanticDiffReport semdiff = differ.Classify(
      changed, std::vector<std::string>(closure.begin(), closure.end()));
  report.semantic_impacts = semdiff.impacts;
  report.provably_noop = semdiff.provably_noop;
  report.lint_findings.insert(report.lint_findings.end(),
                              semdiff.findings.begin(),
                              semdiff.findings.end());

  if (report.provably_noop) {
    // Certified no-op (comment/reformat-only): the reverse closure cannot
    // observe it, so skip re-analyzing it.
    CLOG(Info) << "Sandcastle: diff is provably no-op; skipping reverse-"
               << "closure re-analysis of " << closure.size()
               << " dependent(s)";
  } else {
    ReanalyzeClosure(diff, closure, &report);
  }

  // Cross-config invariants over the blast radius. A provably-no-op diff
  // cannot change any exported value, so re-verification is skipped — unless
  // the diff edits an invariant spec itself (then the *predicates* changed
  // even though no config value did), or touches a path the no-op
  // certificate does not cover: the semantic differ only certifies CSL
  // sources and Gatekeeper projects, so any other write (a raw JSON config,
  // say) can change invariant inputs while leaving the certificate intact.
  bool touches_invariants = false;
  bool outside_certificate = false;
  for (const FileWrite& write : diff.writes) {
    if (write.path.starts_with("invariants/")) {
      touches_invariants = true;
    }
    bool certified = write.path.ends_with(".cconf") ||
                     write.path.ends_with(".cinc") ||
                     (write.path.starts_with("gatekeeper/") &&
                      write.path.ends_with(".json"));
    if (!certified || !write.content.has_value()) {
      outside_certificate = true;
    }
  }
  if (!report.provably_noop || touches_invariants || outside_certificate) {
    std::set<std::string> scope;
    for (const std::string& path : changed) {
      scope.insert(path);
    }
    for (const std::string& entry : report.compiled_entries) {
      scope.insert(ConfigCompiler::OutputPathFor(entry));
    }
    for (const std::string& entry : closure) {
      scope.insert(ConfigCompiler::OutputPathFor(entry));
    }
    RunInvariants(diff, scope, &report);
  } else if (report.provably_noop) {
    CLOG(Info) << "Sandcastle: provably no-op diff; invariant re-verification "
               << "skipped";
  }

  if (report.lint_errors() > 0 ||
      (strict_lint_ && !report.lint_findings.empty())) {
    report.passed = false;
  }
  return report;
}

std::map<std::string, std::optional<std::set<std::string>>> DiffChangedSymbols(
    const Repository& repo, const ProposedDiff& diff, AstCache* ast_cache) {
  std::map<std::string, std::optional<std::set<std::string>>> changed;
  for (const FileWrite& write : diff.writes) {
    const std::string& path = write.path;
    if (!path.ends_with(".cconf") && !path.ends_with(".cinc")) {
      continue;  // Schema/JSON edits have no CSL symbol surface.
    }
    auto head = repo.ReadFile(path);
    if (!head.ok() || !write.content.has_value()) {
      changed[path] = std::nullopt;  // Added or deleted: file-level.
      continue;
    }
    changed[path] =
        ChangedSymbols(ComputeSymbolSurface(path, *head),
                       ComputeSymbolSurface(path, *write.content, ast_cache));
  }
  return changed;
}

std::set<std::string> Sandcastle::PrunedClosure(const ProposedDiff& diff,
                                                CiReport* report) const {
  // The file-level reverse closure, then the symbol-pruned one. The
  // difference is the pruning win: dependents whose slice proves the edit
  // can't reach them.
  auto changed_symbols = DiffChangedSymbols(*repo_, diff);
  std::set<std::string> file_level;
  std::set<std::string> closure;
  for (const FileWrite& write : diff.writes) {
    for (const std::string& entry : deps_->EntriesAffectedBy({write.path})) {
      file_level.insert(entry);
    }
    auto it = changed_symbols.find(write.path);
    if (it != changed_symbols.end() && it->second.has_value()) {
      for (const std::string& entry :
           deps_->EntriesAffectedBySymbols(write.path, *it->second)) {
        closure.insert(entry);
      }
    } else {
      for (const std::string& entry : deps_->EntriesAffectedBy({write.path})) {
        closure.insert(entry);
      }
    }
  }
  report->pruned_dependents = file_level.size() - closure.size();
  return closure;
}

void Sandcastle::ReanalyzeClosure(const ProposedDiff& diff,
                                  CiReport* report) const {
  ReanalyzeClosure(diff, PrunedClosure(diff, report), report);
}

void Sandcastle::ReanalyzeClosure(const ProposedDiff& diff,
                                  const std::set<std::string>& closure,
                                  CiReport* report) const {
  std::set<std::string> touched;
  for (const FileWrite& write : diff.writes) {
    touched.insert(write.path);
  }

  FileReader overlay = OverlayReader(diff);
  // One parse per (path, content) across the lint and absint passes: the
  // linter and the interpreter walk the same overlay closure.
  AstCache ast_cache;
  ConfigLint linter(overlay);
  linter.set_ast_cache(&ast_cache);
  AbstractInterpreter absint(overlay);
  absint.set_ast_cache(&ast_cache);

  // Touched CSL files get the semantic pass unconditionally (RunLint already
  // ran the syntactic rules on them).
  for (const std::string& path : touched) {
    if (!path.ends_with(".cconf") && !path.ends_with(".cinc")) {
      continue;
    }
    auto content = overlay(path);
    if (!content.ok()) {
      continue;  // Deleted in the diff.
    }
    AbsintResult result = absint.Analyze(path, *content);
    report->lint_findings.insert(report->lint_findings.end(),
                                 result.diagnostics.begin(),
                                 result.diagnostics.end());
  }

  // Untouched dependents: full re-lint + re-interpretation through the
  // overlay, so both syntactic and semantic breakage caused *by the diff*
  // surfaces here, capped to keep one shared-file edit from re-analyzing
  // the world.
  size_t analyzed = 0;
  for (const std::string& entry : closure) {
    if (touched.count(entry) > 0) {
      continue;
    }
    if (analyzed >= max_closure_) {
      report->closure_truncated = true;
      CLOG(Warning) << "Sandcastle: reverse-closure re-analysis truncated at "
                    << max_closure_ << " of " << closure.size()
                    << " dependent entries; remaining dependents were not "
                    << "re-analyzed";
      break;
    }
    auto content = overlay(entry);
    if (!content.ok()) {
      continue;
    }
    ++analyzed;
    report->reanalyzed_entries.push_back(entry);
    std::vector<LintDiagnostic> lint_findings =
        linter.LintFile(entry, *content);
    report->lint_findings.insert(
        report->lint_findings.end(),
        std::make_move_iterator(lint_findings.begin()),
        std::make_move_iterator(lint_findings.end()));
    AbsintResult result = absint.Analyze(entry, *content);
    report->lint_findings.insert(report->lint_findings.end(),
                                 result.diagnostics.begin(),
                                 result.diagnostics.end());
  }
}

void Sandcastle::RunInvariants(const ProposedDiff& diff,
                               const std::set<std::string>& scope,
                               CiReport* report) const {
  // The spec set: every "invariants/" file at head plus any the diff adds.
  // Files the diff deletes drop out naturally — Load skips unreadable paths,
  // and the overlay reports deleted files as not found.
  std::set<std::string> spec_files;
  for (const std::string& file : repo_->ListFilesUnder("invariants/")) {
    spec_files.insert(file);
  }
  for (const FileWrite& write : diff.writes) {
    if (write.path.starts_with("invariants/")) {
      spec_files.insert(write.path);
    }
  }
  if (spec_files.empty()) {
    return;
  }
  FileReader overlay = OverlayReader(diff);
  InvariantRegistry registry = InvariantRegistry::Load(
      overlay,
      std::vector<std::string>(spec_files.begin(), spec_files.end()));
  InvariantChecker checker(overlay);
  InvariantReport result = checker.Check(registry, scope);
  report->invariants_proven = result.proven;
  report->invariants_in_jeopardy = result.in_jeopardy;
  if (result.violated > 0) {
    CLOG(Warning) << "Sandcastle: " << result.violated
                  << " cross-config invariant(s) violated by this diff";
  }
  report->lint_findings.insert(report->lint_findings.end(),
                               std::make_move_iterator(
                                   result.diagnostics.begin()),
                               std::make_move_iterator(
                                   result.diagnostics.end()));
  report->invariant_outcomes = std::move(result.outcomes);
}

std::vector<LintDiagnostic> Sandcastle::RunLint(const ProposedDiff& diff) const {
  // Imports resolve through the overlay: a finding (or its absence) reflects
  // the tree as it would look with the diff applied.
  ConfigLint linter(OverlayReader(diff));
  AstCache ast_cache;
  linter.set_ast_cache(&ast_cache);
  std::vector<LintDiagnostic> findings;
  for (const FileWrite& write : diff.writes) {
    if (!write.content.has_value()) {
      continue;  // Deletions have no content to lint.
    }
    std::vector<LintDiagnostic> file_findings =
        linter.LintFile(write.path, *write.content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace configerator
