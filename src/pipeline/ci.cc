#include "src/pipeline/ci.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "src/canary/canary.h"
#include "src/gatekeeper/project.h"
#include "src/util/strings.h"

namespace configerator {

Sandcastle::Sandcastle(const Repository* repo, const DependencyService* deps)
    : repo_(repo), deps_(deps) {
  // Builtin raw-config validators, keyed by path convention. Ordering
  // matters: the most specific check that applies decides.
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.starts_with("gatekeeper/") || !path.ends_with(".json")) {
          return OkStatus();
        }
        ASSIGN_OR_RETURN(Json json, Json::Parse(content));
        ASSIGN_OR_RETURN(GatekeeperProject project,
                         GatekeeperProject::FromJson(json));
        (void)project;
        return OkStatus();
      });
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.ends_with(".canary.json")) {
          return OkStatus();
        }
        ASSIGN_OR_RETURN(Json json, Json::Parse(content));
        ASSIGN_OR_RETURN(CanarySpec spec, CanarySpec::FromJson(json));
        (void)spec;
        return OkStatus();
      });
  raw_validators_.push_back(
      [](const std::string& path, const std::string& content) -> Status {
        if (!path.ends_with(".json")) {
          return OkStatus();
        }
        ASSIGN_OR_RETURN(Json json, Json::Parse(content));
        (void)json;
        return OkStatus();
      });
}

void Sandcastle::RegisterRawValidator(RawValidator validator) {
  raw_validators_.push_back(std::move(validator));
}

std::string CiReport::Summary() const {
  std::string out = passed ? "PASS" : "FAIL";
  out += StrFormat(": %zu entries recompiled", compiled_entries.size());
  if (!lint_findings.empty()) {
    out += StrFormat("; lint: %zu error(s), %zu warning(s)", lint_errors(),
                     lint_warnings());
  }
  for (const std::string& failure : failures) {
    out += "\n  " + failure;
  }
  for (const LintDiagnostic& finding : lint_findings) {
    out += "\n  " + finding.Format();
  }
  return out;
}

FileReader Sandcastle::OverlayReader(const ProposedDiff& diff) const {
  // Copy the diff's writes into the closure: the reader may outlive the call.
  auto overlay = std::make_shared<std::map<std::string, std::optional<std::string>>>();
  for (const FileWrite& write : diff.writes) {
    (*overlay)[write.path] = write.content;
  }
  const Repository* repo = repo_;
  return [overlay, repo](const std::string& path) -> Result<std::string> {
    auto it = overlay->find(path);
    if (it != overlay->end()) {
      if (!it->second.has_value()) {
        return NotFoundError("deleted in diff: " + path);
      }
      return *it->second;
    }
    return repo->ReadFile(path);
  };
}

CiReport Sandcastle::RunTests(const ProposedDiff& diff) const {
  CiReport report;
  // Entries to rebuild: every known entry affected by a touched path, plus
  // touched .cconf files themselves (they may be new entries).
  std::vector<std::string> changed;
  changed.reserve(diff.writes.size());
  for (const FileWrite& write : diff.writes) {
    changed.push_back(write.path);
  }
  std::set<std::string> entries;
  for (const std::string& entry : deps_->EntriesAffectedBy(changed)) {
    entries.insert(entry);
  }
  for (const FileWrite& write : diff.writes) {
    if (write.path.ends_with(".cconf") && write.content.has_value()) {
      entries.insert(write.path);
    }
    if (!write.content.has_value()) {
      // An entry deleted by this diff no longer needs to compile.
      entries.erase(write.path);
    }
  }

  ConfigCompiler compiler(OverlayReader(diff));
  report.passed = true;
  for (const std::string& entry : entries) {
    auto output = compiler.Compile(entry);
    if (output.ok()) {
      report.compiled_entries.push_back(entry);
    } else {
      report.passed = false;
      report.failures.push_back(entry + ": " + output.status().ToString());
    }
  }

  // Raw-config validation for every written path (compiled outputs included
  // — a malformed generated JSON would indicate a compiler bug).
  for (const FileWrite& write : diff.writes) {
    if (!write.content.has_value()) {
      continue;
    }
    for (const RawValidator& validator : raw_validators_) {
      Status status = validator(write.path, *write.content);
      if (!status.ok()) {
        report.passed = false;
        report.failures.push_back(write.path + ": " + status.ToString());
        break;  // One failure per path is enough signal.
      }
    }
  }

  // Static analysis over everything the diff touches. Error-severity
  // findings block the diff just like a failing compile; warnings are
  // advisory unless strict lint is on.
  report.lint_findings = RunLint(diff);
  if (report.lint_errors() > 0 ||
      (strict_lint_ && !report.lint_findings.empty())) {
    report.passed = false;
  }
  return report;
}

std::vector<LintDiagnostic> Sandcastle::RunLint(const ProposedDiff& diff) const {
  // Imports resolve through the overlay: a finding (or its absence) reflects
  // the tree as it would look with the diff applied.
  ConfigLint linter(OverlayReader(diff));
  std::vector<LintDiagnostic> findings;
  for (const FileWrite& write : diff.writes) {
    if (!write.content.has_value()) {
      continue;  // Deletions have no content to lint.
    }
    std::vector<LintDiagnostic> file_findings =
        linter.LintFile(write.path, *write.content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace configerator
