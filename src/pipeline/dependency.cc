#include "src/pipeline/dependency.h"

#include <algorithm>

namespace configerator {

void DependencyService::UpdateEntry(const std::string& entry,
                                    const std::vector<std::string>& deps) {
  RemoveEntry(entry);
  std::set<std::string>& dep_set = deps_of_entry_[entry];
  dep_set.insert(entry);
  for (const std::string& dep : deps) {
    dep_set.insert(dep);
  }
  for (const std::string& dep : dep_set) {
    entries_of_dep_[dep].insert(entry);
  }
}

void DependencyService::RemoveEntry(const std::string& entry) {
  slice_of_entry_.erase(entry);
  auto it = deps_of_entry_.find(entry);
  if (it == deps_of_entry_.end()) {
    return;
  }
  for (const std::string& dep : it->second) {
    auto inv = entries_of_dep_.find(dep);
    if (inv != entries_of_dep_.end()) {
      inv->second.erase(entry);
      if (inv->second.empty()) {
        entries_of_dep_.erase(inv);
      }
    }
  }
  deps_of_entry_.erase(it);
}

std::vector<std::string> DependencyService::EntriesAffectedBy(
    const std::vector<std::string>& changed_paths) const {
  std::set<std::string> affected;
  for (const std::string& path : changed_paths) {
    auto it = entries_of_dep_.find(path);
    if (it != entries_of_dep_.end()) {
      affected.insert(it->second.begin(), it->second.end());
    }
  }
  return {affected.begin(), affected.end()};
}

void DependencyService::UpdateEntrySymbols(
    const std::string& entry,
    std::map<std::string, std::set<std::string>> used_symbols, bool sound) {
  slice_of_entry_[entry] = SymbolSlice{std::move(used_symbols), sound};
}

std::vector<std::string> DependencyService::EntriesAffectedBySymbols(
    const std::string& path, const std::set<std::string>& changed_symbols) const {
  std::vector<std::string> affected;
  auto it = entries_of_dep_.find(path);
  if (it == entries_of_dep_.end()) {
    return affected;
  }
  bool surface_grew = changed_symbols.count("*") > 0;
  for (const std::string& entry : it->second) {
    if (entry == path) {
      affected.push_back(entry);  // The entry's own source changed.
      continue;
    }
    auto sit = slice_of_entry_.find(entry);
    if (sit == slice_of_entry_.end() || !sit->second.sound ||
        changed_symbols.empty()) {
      affected.push_back(entry);  // No sound slice: file-level fallback.
      continue;
    }
    auto uit = sit->second.used.find(path);
    if (uit == sit->second.used.end()) {
      continue;  // Sound slice that never reads the file: pruned.
    }
    const std::set<std::string>& used = uit->second;
    bool star_importer = used.count("*") > 0;
    bool hit = surface_grew && star_importer;
    for (const std::string& symbol : changed_symbols) {
      if (hit) {
        break;
      }
      hit = symbol != "*" && used.count(symbol) > 0;
    }
    if (hit) {
      affected.push_back(entry);
    }
  }
  return affected;
}

size_t DependencyService::SymbolFanIn(const std::string& path,
                                      const std::string& symbol) const {
  auto it = entries_of_dep_.find(path);
  if (it == entries_of_dep_.end()) {
    return 0;
  }
  size_t fan_in = 0;
  for (const std::string& entry : it->second) {
    auto sit = slice_of_entry_.find(entry);
    if (sit == slice_of_entry_.end() || !sit->second.sound) {
      ++fan_in;  // Unknown slice counts conservatively.
      continue;
    }
    auto uit = sit->second.used.find(path);
    if (uit != sit->second.used.end() &&
        (uit->second.count(symbol) > 0 || uit->second.count("*") > 0)) {
      ++fan_in;
    }
  }
  return fan_in;
}

std::vector<std::string> DependencyService::DependenciesOf(
    const std::string& entry) const {
  auto it = deps_of_entry_.find(entry);
  if (it == deps_of_entry_.end()) {
    return {};
  }
  return {it->second.begin(), it->second.end()};
}

}  // namespace configerator
