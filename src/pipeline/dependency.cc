#include "src/pipeline/dependency.h"

#include <algorithm>

namespace configerator {

void DependencyService::UpdateEntry(const std::string& entry,
                                    const std::vector<std::string>& deps) {
  RemoveEntry(entry);
  std::set<std::string>& dep_set = deps_of_entry_[entry];
  dep_set.insert(entry);
  for (const std::string& dep : deps) {
    dep_set.insert(dep);
  }
  for (const std::string& dep : dep_set) {
    entries_of_dep_[dep].insert(entry);
  }
}

void DependencyService::RemoveEntry(const std::string& entry) {
  auto it = deps_of_entry_.find(entry);
  if (it == deps_of_entry_.end()) {
    return;
  }
  for (const std::string& dep : it->second) {
    auto inv = entries_of_dep_.find(dep);
    if (inv != entries_of_dep_.end()) {
      inv->second.erase(entry);
      if (inv->second.empty()) {
        entries_of_dep_.erase(inv);
      }
    }
  }
  deps_of_entry_.erase(it);
}

std::vector<std::string> DependencyService::EntriesAffectedBy(
    const std::vector<std::string>& changed_paths) const {
  std::set<std::string> affected;
  for (const std::string& path : changed_paths) {
    auto it = entries_of_dep_.find(path);
    if (it != entries_of_dep_.end()) {
      affected.insert(it->second.begin(), it->second.end());
    }
  }
  return {affected.begin(), affected.end()};
}

std::vector<std::string> DependencyService::DependenciesOf(
    const std::string& entry) const {
  auto it = deps_of_entry_.find(entry);
  if (it == deps_of_entry_.end()) {
    return {};
  }
  return {it->second.begin(), it->second.end()};
}

}  // namespace configerator
