// Sandcastle (paper §3.3): automated continuous-integration tests that run
// in a sandbox against the proposed config change before it can land. Here
// the sandbox is an overlay of the diff on top of the repository head: every
// entry config affected by the change is recompiled (schema checks and
// validators run as part of compilation), and the results are posted to the
// review.

#ifndef SRC_PIPELINE_CI_H_
#define SRC_PIPELINE_CI_H_

#include <string>
#include <vector>

#include "src/lang/compiler.h"
#include "src/pipeline/dependency.h"
#include "src/pipeline/landing_strip.h"
#include "src/vcs/repository.h"

namespace configerator {

struct CiReport {
  bool passed = false;
  std::vector<std::string> compiled_entries;
  std::vector<std::string> failures;  // One message per failing entry.

  std::string Summary() const;
};

class Sandcastle {
 public:
  // Validates one raw config's content by its path convention; empty status
  // = no validator applies. Registered via RegisterRawValidator.
  using RawValidator =
      std::function<Status(const std::string& path, const std::string& content)>;

  Sandcastle(const Repository* repo, const DependencyService* deps);

  // Recompiles every entry config affected by `diff` in a sandbox overlay,
  // and runs raw-config validators over touched non-compiled configs
  // (Gatekeeper project JSON must compile into a project; canary specs must
  // parse; any "*.json" must at least be valid JSON).
  CiReport RunTests(const ProposedDiff& diff) const;

  // A FileReader that resolves through `diff` first, then the repo head.
  FileReader OverlayReader(const ProposedDiff& diff) const;

  // Adds a custom raw-config validator (run for every written path).
  void RegisterRawValidator(RawValidator validator);

 private:
  const Repository* repo_;
  const DependencyService* deps_;
  std::vector<RawValidator> raw_validators_;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_CI_H_
