// Sandcastle (paper §3.3): automated continuous-integration tests that run
// in a sandbox against the proposed config change before it can land. Here
// the sandbox is an overlay of the diff on top of the repository head: every
// entry config affected by the change is recompiled (schema checks and
// validators run as part of compilation), ConfigLint statically analyses
// every touched source and Gatekeeper spec, and the results are posted to
// the review. Error-severity lint findings fail the report (and therefore
// block landing); warnings ride along as advisory review comments.

#ifndef SRC_PIPELINE_CI_H_
#define SRC_PIPELINE_CI_H_

#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/lang/compiler.h"
#include "src/pipeline/dependency.h"
#include "src/pipeline/landing_strip.h"
#include "src/vcs/repository.h"

namespace configerator {

struct CiReport {
  bool passed = false;
  std::vector<std::string> compiled_entries;
  std::vector<std::string> failures;  // One message per failing entry.
  // ConfigLint findings over every file the diff touches. Error severity
  // implies !passed; warnings never flip `passed` on their own.
  std::vector<LintDiagnostic> lint_findings;

  size_t lint_errors() const { return CountLintErrors(lint_findings); }
  size_t lint_warnings() const {
    return lint_findings.size() - CountLintErrors(lint_findings);
  }

  std::string Summary() const;
};

class Sandcastle {
 public:
  // Validates one raw config's content by its path convention; empty status
  // = no validator applies. Registered via RegisterRawValidator.
  using RawValidator =
      std::function<Status(const std::string& path, const std::string& content)>;

  Sandcastle(const Repository* repo, const DependencyService* deps);

  // Recompiles every entry config affected by `diff` in a sandbox overlay,
  // runs raw-config validators over touched non-compiled configs
  // (Gatekeeper project JSON must compile into a project; canary specs must
  // parse; any "*.json" must at least be valid JSON), and lints every
  // touched file with ConfigLint (imports resolved through the overlay, so
  // cross-module findings see the diff's state of the tree).
  CiReport RunTests(const ProposedDiff& diff) const;

  // The ConfigLint stage alone: diagnostics for every file `diff` touches.
  std::vector<LintDiagnostic> RunLint(const ProposedDiff& diff) const;

  // A FileReader that resolves through `diff` first, then the repo head.
  FileReader OverlayReader(const ProposedDiff& diff) const;

  // Adds a custom raw-config validator (run for every written path).
  void RegisterRawValidator(RawValidator validator);

  // Warnings-as-errors for the lint stage (off by default).
  void set_strict_lint(bool strict) { strict_lint_ = strict; }

 private:
  const Repository* repo_;
  const DependencyService* deps_;
  std::vector<RawValidator> raw_validators_;
  bool strict_lint_ = false;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_CI_H_
