// Sandcastle (paper §3.3): automated continuous-integration tests that run
// in a sandbox against the proposed config change before it can land. Here
// the sandbox is an overlay of the diff on top of the repository head: every
// entry config affected by the change is recompiled (schema checks and
// validators run as part of compilation), ConfigLint statically analyses
// every touched source and Gatekeeper spec, and the results are posted to
// the review. Error-severity lint findings fail the report (and therefore
// block landing); warnings ride along as advisory review comments.

#ifndef SRC_PIPELINE_CI_H_
#define SRC_PIPELINE_CI_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <memory>

#include "src/analysis/absint.h"
#include "src/analysis/invariant.h"
#include "src/analysis/lint.h"
#include "src/analysis/semdiff.h"
#include "src/lang/ast_cache.h"
#include "src/lang/compiler.h"
#include "src/pipeline/dependency.h"
#include "src/pipeline/landing_strip.h"
#include "src/vcs/repository.h"

namespace configerator {

struct CiReport {
  bool passed = false;
  std::vector<std::string> compiled_entries;
  std::vector<std::string> failures;  // One message per failing entry.
  // ConfigLint + abstract-interpretation findings over every file the diff
  // touches AND every entry in its (symbol-pruned) reverse dependency
  // closure. Error severity implies !passed; warnings never flip `passed`
  // on their own.
  std::vector<LintDiagnostic> lint_findings;
  // Untouched entries re-analyzed because the diff can reach them.
  std::vector<std::string> reanalyzed_entries;
  // File-level dependents skipped because their symbol slice proves the
  // changed symbols never flow into them.
  size_t pruned_dependents = 0;
  // True when the reverse closure was larger than the Sandcastle cap and
  // got truncated (a notice is logged; the skipped tail is not analyzed).
  bool closure_truncated = false;
  // Semantic diff of the landing: per-symbol classification (no-op /
  // value-delta / control-shift / type-change) over the touched files and
  // the symbol-pruned closure, attached to the review.
  std::vector<SymbolImpact> semantic_impacts;
  // Every impacted symbol is a provable no-op: Sandcastle then skips the
  // reverse-closure re-analysis and the landing takes the fast-path canary.
  bool provably_noop = false;
  // Cross-config invariants activated by the diff's blast radius (touched
  // paths + recompiled/reanalyzed outputs), evaluated over the overlay.
  // Violations inject I-series diagnostics into lint_findings (errors block
  // landing); in-jeopardy outcomes feed RiskAdvisor and CanaryScope.
  std::vector<InvariantOutcome> invariant_outcomes;
  size_t invariants_proven = 0;
  size_t invariants_in_jeopardy = 0;

  size_t lint_errors() const { return CountLintErrors(lint_findings); }
  size_t lint_warnings() const {
    return lint_findings.size() - CountLintErrors(lint_findings);
  }

  std::string Summary() const;
};

// Per changed path, which top-level symbols the diff modifies — computed by
// diffing ComputeSymbolSurface() of the head content against the diff's.
// nullopt = not statically comparable (parse failure, side-effecting
// statements changed); consumers then fall back to file-level edges.
// `ast_cache` (optional) shares parses with the other Sandcastle stages.
std::map<std::string, std::optional<std::set<std::string>>> DiffChangedSymbols(
    const Repository& repo, const ProposedDiff& diff,
    AstCache* ast_cache = nullptr);

class Sandcastle {
 public:
  // Validates one raw config's content by its path convention; empty status
  // = no validator applies. Registered via RegisterRawValidator.
  using RawValidator =
      std::function<Status(const std::string& path, const std::string& content)>;

  Sandcastle(const Repository* repo, const DependencyService* deps);
  ~Sandcastle();

  // Recompiles every entry config affected by `diff` in a sandbox overlay,
  // runs raw-config validators over touched non-compiled configs
  // (Gatekeeper project JSON must compile into a project; canary specs must
  // parse; any "*.json" must at least be valid JSON), and lints every
  // touched file with ConfigLint (imports resolved through the overlay, so
  // cross-module findings see the diff's state of the tree).
  CiReport RunTests(const ProposedDiff& diff) const;

  // The ConfigLint stage alone: diagnostics for every file `diff` touches.
  std::vector<LintDiagnostic> RunLint(const ProposedDiff& diff) const;

  // The cross-config invariant stage alone: loads every "invariants/" spec
  // through the overlay, activates those whose referenced configs intersect
  // `scope` (empty = audit everything), and records outcomes + diagnostics
  // in `report`. RunTests calls this with the semdiff-pruned blast radius;
  // a provably-no-op diff that touches no invariant spec skips it entirely.
  void RunInvariants(const ProposedDiff& diff,
                     const std::set<std::string>& scope,
                     CiReport* report) const;

  // A FileReader that resolves through `diff` first, then the repo head.
  FileReader OverlayReader(const ProposedDiff& diff) const;

  // Adds a custom raw-config validator (run for every written path).
  void RegisterRawValidator(RawValidator validator);

  // Warnings-as-errors for the lint stage (off by default).
  void set_strict_lint(bool strict) { strict_lint_ = strict; }

  // Metrics sink for the CSL engine (unit-cache hit/miss counters and
  // compile/execute histograms); nullptr (the default) disables them.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Upper bound on how many untouched dependent entries one diff may pull
  // into re-analysis; beyond it the closure is truncated with a logged
  // notice (report.closure_truncated).
  void set_max_closure(size_t max_closure) { max_closure_ = max_closure; }

  // The reverse-closure stage alone: re-lints and abstractly re-interprets
  // every entry the diff can reach through the dependency graph — not just
  // the files it touches — so a dependent that the diff silently breaks
  // (e.g. its schema shape becomes invalid under the new constants) blocks
  // landing even though no touched file mentions it. Symbol slices prune
  // dependents the changed symbols provably never reach. Results land in
  // `report` (findings, reanalyzed_entries, pruned_dependents,
  // closure_truncated).
  void ReanalyzeClosure(const ProposedDiff& diff, CiReport* report) const;

 private:
  // Computes the symbol-pruned reverse closure of `diff` and records the
  // pruning statistics in `report` (pruned_dependents).
  std::set<std::string> PrunedClosure(const ProposedDiff& diff,
                                      CiReport* report) const;
  // The analysis half of ReanalyzeClosure, over a precomputed closure.
  void ReanalyzeClosure(const ProposedDiff& diff,
                        const std::set<std::string>& closure,
                        CiReport* report) const;

  const Repository* repo_;
  const DependencyService* deps_;
  std::vector<RawValidator> raw_validators_;
  bool strict_lint_ = false;
  size_t max_closure_ = 64;
  // Shared across RunTests calls: unchanged files byte-compare equal and
  // skip parse+codegen, and an entry whose whole import closure is
  // unchanged replays its memoized output without evaluating at all, so
  // re-validating a diff costs one digest walk per reached entry.
  // Hermeticity is unaffected — every compile still re-reads sources
  // through the overlay and compares them against what was cached.
  std::unique_ptr<CompiledUnitCache> unit_cache_;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_CI_H_
