#include "src/pipeline/review.h"

namespace configerator {

int64_t ReviewService::Submit(ProposedDiff diff) {
  int64_t id = next_id_++;
  ReviewRecord record;
  record.id = id;
  record.diff = std::move(diff);
  reviews_.emplace(id, std::move(record));
  return id;
}

Status ReviewService::PostTestResults(int64_t review_id, std::string results) {
  auto it = reviews_.find(review_id);
  if (it == reviews_.end()) {
    return NotFoundError("no review " + std::to_string(review_id));
  }
  it->second.test_results.push_back(std::move(results));
  return OkStatus();
}

Status ReviewService::Approve(int64_t review_id, const std::string& reviewer) {
  auto it = reviews_.find(review_id);
  if (it == reviews_.end()) {
    return NotFoundError("no review " + std::to_string(review_id));
  }
  if (reviewer == it->second.diff.author) {
    return RejectedError("self-review is not allowed");
  }
  if (it->second.state == ReviewState::kRejected) {
    return RejectedError("review was already rejected");
  }
  it->second.state = ReviewState::kApproved;
  it->second.reviewer = reviewer;
  return OkStatus();
}

Status ReviewService::Reject(int64_t review_id, const std::string& reviewer,
                             std::string reason) {
  auto it = reviews_.find(review_id);
  if (it == reviews_.end()) {
    return NotFoundError("no review " + std::to_string(review_id));
  }
  it->second.state = ReviewState::kRejected;
  it->second.reviewer = reviewer;
  it->second.rejection_reason = std::move(reason);
  return OkStatus();
}

Result<const ReviewRecord*> ReviewService::Get(int64_t review_id) const {
  auto it = reviews_.find(review_id);
  if (it == reviews_.end()) {
    return NotFoundError("no review " + std::to_string(review_id));
  }
  return &it->second;
}

bool ReviewService::IsApproved(int64_t review_id) const {
  auto it = reviews_.find(review_id);
  return it != reviews_.end() && it->second.state == ReviewState::kApproved;
}

size_t ReviewService::open_reviews() const {
  size_t open = 0;
  for (const auto& [id, record] : reviews_) {
    if (record.state == ReviewState::kPending) {
      ++open;
    }
  }
  return open;
}

}  // namespace configerator
