#include "src/pipeline/landing_strip.h"

#include "src/util/sha256.h"

namespace configerator {

namespace {

// Blob id a path would have for `content` — matches ObjectStore::PutBlob.
ObjectId BlobIdFor(const std::string& content) {
  Sha256 hasher;
  hasher.Update("blob");
  hasher.Update("\0", 1);
  hasher.Update(content);
  return hasher.Finish();
}

}  // namespace

ProposedDiff MakeProposedDiff(const Repository& repo, std::string author,
                              std::string message, std::vector<FileWrite> writes,
                              int64_t timestamp_ms) {
  ProposedDiff diff;
  diff.author = std::move(author);
  diff.message = std::move(message);
  diff.timestamp_ms = timestamp_ms;
  for (const FileWrite& write : writes) {
    auto content = repo.ReadFile(write.path);
    if (content.ok()) {
      diff.base[write.path] = BlobIdFor(*content);
    } else {
      diff.base[write.path] = std::nullopt;
    }
  }
  diff.writes = std::move(writes);
  return diff;
}

Result<ObjectId> LandingStrip::Land(const ProposedDiff& diff,
                                    const TraceContext& parent) {
  std::lock_guard<std::mutex> lock(mutex_);
  // True-conflict check: every touched path must still be at the diff's base
  // version. Changes to *other* files never force a rebase — that is the
  // whole point of the landing strip.
  for (const auto& [path, base_id] : diff.base) {
    auto head_content = repo_->ReadFile(path);
    std::optional<ObjectId> head_id;
    if (head_content.ok()) {
      head_id = BlobIdFor(*head_content);
    } else if (head_content.status().code() != StatusCode::kNotFound) {
      return head_content.status();
    }
    if (head_id != base_id) {
      ++conflicts_;
      if (conflicts_counter_ != nullptr) {
        conflicts_counter_->Inc();
      }
      return ConflictError("path '" + path +
                           "' changed since the diff was created; update and "
                           "resolve the conflict");
    }
  }
  // Deleting a path that never existed would fail in Repository::Commit;
  // filter such no-op deletes (can happen when racing diffs both delete).
  std::vector<FileWrite> writes;
  writes.reserve(diff.writes.size());
  for (const FileWrite& write : diff.writes) {
    if (!write.content.has_value() && !repo_->FileExists(write.path)) {
      continue;
    }
    writes.push_back(write);
  }
  auto commit = repo_->Commit(diff.author, diff.message, writes, diff.timestamp_ms);
  if (commit.ok()) {
    ++landed_;
    if (obs_ != nullptr) {
      landed_counter_->Inc();
      SimTime at = diff.timestamp_ms * kSimMillisecond;
      TraceContext land =
          parent.valid()
              ? obs_->tracer.StartSpan(parent, "land", "landing-strip", at)
              : obs_->tracer.StartTrace("land:" + diff.author, "landing-strip",
                                        at);
      obs_->tracer.EndSpan(land, at);
      for (const FileWrite& write : writes) {
        obs_->tracer.BindPath(write.path, land);
      }
    }
  }
  return commit;
}

}  // namespace configerator
