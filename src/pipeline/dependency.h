// Dependency Service (paper Fig 3 / §3.1): tracks which entry configs
// transitively depend on which source files, extracted automatically from
// import statements by the compiler — "without the need to manually edit a
// makefile". When a shared file (e.g. app_port.cinc) changes, the service
// answers which .cconf entries must be recompiled so all affected JSON
// configs update in one commit.

#ifndef SRC_PIPELINE_DEPENDENCY_H_
#define SRC_PIPELINE_DEPENDENCY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace configerator {

class DependencyService {
 public:
  // Records (replaces) the dependency set of one entry config. The entry
  // itself is always implicitly a dependency.
  void UpdateEntry(const std::string& entry, const std::vector<std::string>& deps);

  // Removes an entry (its source was deleted).
  void RemoveEntry(const std::string& entry);

  // All entries affected by changes to `changed_paths` (sorted, unique).
  std::vector<std::string> EntriesAffectedBy(
      const std::vector<std::string>& changed_paths) const;

  // Direct dependencies of an entry (empty if unknown).
  std::vector<std::string> DependenciesOf(const std::string& entry) const;

  size_t entry_count() const { return deps_of_entry_.size(); }

 private:
  std::map<std::string, std::set<std::string>> deps_of_entry_;
  std::map<std::string, std::set<std::string>> entries_of_dep_;  // Inverted.
};

}  // namespace configerator

#endif  // SRC_PIPELINE_DEPENDENCY_H_
