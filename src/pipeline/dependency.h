// Dependency Service (paper Fig 3 / §3.1): tracks which entry configs
// transitively depend on which source files, extracted automatically from
// import statements by the compiler — "without the need to manually edit a
// makefile". When a shared file (e.g. app_port.cinc) changes, the service
// answers which .cconf entries must be recompiled so all affected JSON
// configs update in one commit.

#ifndef SRC_PIPELINE_DEPENDENCY_H_
#define SRC_PIPELINE_DEPENDENCY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace configerator {

class DependencyService {
 public:
  // Records (replaces) the dependency set of one entry config. The entry
  // itself is always implicitly a dependency.
  void UpdateEntry(const std::string& entry, const std::vector<std::string>& deps);

  // Removes an entry (its source was deleted).
  void RemoveEntry(const std::string& entry);

  // All entries affected by changes to `changed_paths` (sorted, unique).
  std::vector<std::string> EntriesAffectedBy(
      const std::vector<std::string>& changed_paths) const;

  // Records (replaces) the symbol-level slice of one entry, produced by the
  // abstract interpreter (AbsintResult::used_symbols): which top-level
  // symbols of which files the entry's compile actually consumes. `sound`
  // mirrors AbsintResult::slice_sound — an unsound slice is stored for
  // fan-in statistics but never used to prune.
  void UpdateEntrySymbols(
      const std::string& entry,
      std::map<std::string, std::set<std::string>> used_symbols, bool sound);

  // File-level dependents of `path`, pruned by symbol slices: an entry with
  // a sound slice is dropped when it reads none of `changed_symbols` from
  // `path`. Entries without a sound slice are always included (file-level
  // fallback), as is every entry when `changed_symbols` contains "*" and the
  // entry star-imports the file. Pass the symbols ChangedSymbols() reported
  // for the edit; an empty set means "changed in an unknown way" and prunes
  // nothing.
  std::vector<std::string> EntriesAffectedBySymbols(
      const std::string& path, const std::set<std::string>& changed_symbols) const;

  // How many entries actually consume `symbol` from `path` (sound slices
  // count precisely; entries without one count conservatively).
  size_t SymbolFanIn(const std::string& path, const std::string& symbol) const;

  // Direct dependencies of an entry (empty if unknown).
  std::vector<std::string> DependenciesOf(const std::string& entry) const;

  size_t entry_count() const { return deps_of_entry_.size(); }

 private:
  struct SymbolSlice {
    std::map<std::string, std::set<std::string>> used;  // path -> symbols.
    bool sound = false;
  };

  std::map<std::string, std::set<std::string>> deps_of_entry_;
  std::map<std::string, std::set<std::string>> entries_of_dep_;  // Inverted.
  std::map<std::string, SymbolSlice> slice_of_entry_;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_DEPENDENCY_H_
