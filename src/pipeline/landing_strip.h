// Landing Strip (paper §3.6): commits are delegated to a single lander per
// repository, which serializes diffs first-come-first-served and pushes them
// on behalf of committers — so a committer never needs to rebase just
// because unrelated files changed. Only a *true* conflict (the diff's base
// version of a touched file is no longer head) is rejected back to the
// committer.

#ifndef SRC_PIPELINE_LANDING_STRIP_H_
#define SRC_PIPELINE_LANDING_STRIP_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/vcs/multirepo.h"
#include "src/vcs/repository.h"

namespace configerator {

// A proposed change: writes plus the base blob ids the author based them on.
struct ProposedDiff {
  std::string author;
  std::string message;
  std::vector<FileWrite> writes;
  // Blob id of each touched path when the diff was authored; nullopt = the
  // path did not exist. Used for true-conflict detection.
  std::map<std::string, std::optional<ObjectId>> base;
  int64_t timestamp_ms = 0;
};

// Snapshots the current head state of each touched path into diff.base.
ProposedDiff MakeProposedDiff(const Repository& repo, std::string author,
                              std::string message, std::vector<FileWrite> writes,
                              int64_t timestamp_ms = 0);

class LandingStrip {
 public:
  explicit LandingStrip(Repository* repo) : repo_(repo) {}

  // Lands the diff (FCFS under an internal lock). Returns the commit id, or
  // kConflict if any touched path changed since the diff's base.
  Result<ObjectId> Land(const ProposedDiff& diff);

  uint64_t landed() const { return landed_; }
  uint64_t conflicts() const { return conflicts_; }

 private:
  Repository* repo_;
  std::mutex mutex_;
  uint64_t landed_ = 0;
  uint64_t conflicts_ = 0;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_LANDING_STRIP_H_
