// Landing Strip (paper §3.6): commits are delegated to a single lander per
// repository, which serializes diffs first-come-first-served and pushes them
// on behalf of committers — so a committer never needs to rebase just
// because unrelated files changed. Only a *true* conflict (the diff's base
// version of a touched file is no longer head) is rejected back to the
// committer.

#ifndef SRC_PIPELINE_LANDING_STRIP_H_
#define SRC_PIPELINE_LANDING_STRIP_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/observability.h"
#include "src/sim/simulator.h"
#include "src/vcs/multirepo.h"
#include "src/vcs/repository.h"

namespace configerator {

// A proposed change: writes plus the base blob ids the author based them on.
struct ProposedDiff {
  std::string author;
  std::string message;
  std::vector<FileWrite> writes;
  // Blob id of each touched path when the diff was authored; nullopt = the
  // path did not exist. Used for true-conflict detection.
  std::map<std::string, std::optional<ObjectId>> base;
  int64_t timestamp_ms = 0;
};

// Snapshots the current head state of each touched path into diff.base.
ProposedDiff MakeProposedDiff(const Repository& repo, std::string author,
                              std::string message, std::vector<FileWrite> writes,
                              int64_t timestamp_ms = 0);

class LandingStrip {
 public:
  explicit LandingStrip(Repository* repo) : repo_(repo) {}

  // Lands the diff (FCFS under an internal lock). Returns the commit id, or
  // kConflict if any touched path changed since the diff's base.
  //
  // With observability attached, a successful land opens the commit's trace:
  // a "land" span (child of `parent` if the caller already traced the change
  // through CI/canary, else a fresh root) stamped at diff.timestamp_ms, and
  // every written path is bound to it so the git tailer's publish span joins
  // the same tree.
  Result<ObjectId> Land(const ProposedDiff& diff,
                        const TraceContext& parent = {});

  // Opt-in metrics + tracing; must outlive the landing strip.
  void AttachObservability(Observability* obs) {
    obs_ = obs;
    landed_counter_ = obs->metrics.GetCounter("landing_landed_total");
    conflicts_counter_ = obs->metrics.GetCounter("landing_conflicts_total");
  }

  uint64_t landed() const { return landed_; }
  uint64_t conflicts() const { return conflicts_; }

 private:
  Repository* repo_;
  std::mutex mutex_;
  uint64_t landed_ = 0;
  uint64_t conflicts_ = 0;
  Observability* obs_ = nullptr;
  Counter* landed_counter_ = nullptr;
  Counter* conflicts_counter_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_LANDING_STRIP_H_
