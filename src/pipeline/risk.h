// Risk advisor — the paper's proposed future work, §6.2/§8: "it would be
// helpful to automatically flag high-risk updates on these highly-shared
// configs" and "a dormant config is suddenly changed in an unusual way".
//
// The advisor indexes the repository history once (per-path update times,
// author sets, and change sizes) and scores a proposed diff against it:
//   * dormant-config edits (untouched for months, now changing),
//   * edits to highly-shared configs (many distinct co-authors),
//   * changes much larger than the config's historical edits,
//   * first-time authors on a config others own,
//   * edits to high-fan-in sources (many entries depend on them).
// Scores are advisory: they annotate the review, they do not block.

#ifndef SRC_PIPELINE_RISK_H_
#define SRC_PIPELINE_RISK_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/invariant.h"
#include "src/analysis/semdiff.h"
#include "src/pipeline/dependency.h"
#include "src/pipeline/landing_strip.h"
#include "src/util/status.h"
#include "src/vcs/repository.h"

namespace configerator {

struct RiskAssessment {
  double score = 0;  // >= threshold -> high risk.
  std::vector<std::string> reasons;
  bool high_risk = false;
};

class RiskAdvisor {
 public:
  struct Options {
    int64_t dormant_ms = 180LL * 24 * 3600 * 1000;  // 180 days.
    size_t shared_author_threshold = 10;
    double unusual_size_multiplier = 5.0;  // vs historical mean change.
    size_t fan_in_threshold = 10;          // Dependent entries.
    double high_risk_score = 2.0;
    size_t max_history_commits = 10'000;
  };

  explicit RiskAdvisor(Options options) : options_(options) {}
  RiskAdvisor() : RiskAdvisor(Options{}) {}

  // Builds (or incrementally extends) the history index from the repository
  // log: only commits newer than the last indexed head are walked, so
  // calling this per-proposal stays O(new commits), not O(history).
  Status IndexHistory(const Repository& repo);

  // Scores a proposed diff. `deps` may be null (skips the fan-in signal).
  // `changed_symbols` (per path, as DiffChangedSymbols() produces) refines
  // the fan-in signal to symbol edges: only entries that actually consume a
  // changed symbol count, so editing an unused constant in a popular module
  // no longer reads as high-risk. Paths missing from the map — or mapped to
  // nullopt — fall back to file-level fan-in. `impacts` (the semantic
  // diff's per-symbol classification, as Sandcastle attaches to the
  // landing) weights the fan-in signal by severity: a provably-no-op edit
  // to a popular module contributes nothing, a value-delta half weight, a
  // control-shift full weight, a type-change 1.5x. `invariants` (the
  // outcomes Sandcastle's invariant stage attaches) adds the
  // newly-in-jeopardy signal: an invariant that still holds concretely but
  // lost its abstract proof under this diff is one bad follow-up edit away
  // from an outage, so each in-jeopardy outcome raises the score.
  RiskAssessment Assess(
      const ProposedDiff& diff, const DependencyService* deps = nullptr,
      const std::map<std::string, std::optional<std::set<std::string>>>*
          changed_symbols = nullptr,
      const std::vector<SymbolImpact>* impacts = nullptr,
      const std::vector<InvariantOutcome>* invariants = nullptr) const;

  // Per-path history snapshot (for tests and UIs).
  struct PathHistory {
    std::vector<int64_t> update_times_ms;  // Ascending.
    std::set<std::string> authors;
    double mean_change_lines = 0;
    size_t change_count = 0;
  };
  const PathHistory* HistoryFor(const std::string& path) const;

 private:
  Options options_;
  std::map<std::string, PathHistory> history_;
  std::optional<ObjectId> last_indexed_;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_RISK_H_
