#include "src/pipeline/risk.h"

#include <algorithm>

#include "src/util/strings.h"
#include "src/vcs/diff.h"

namespace configerator {

Status RiskAdvisor::IndexHistory(const Repository& repo) {
  if (repo.head() == last_indexed_) {
    return OkStatus();  // Already current.
  }
  ASSIGN_OR_RETURN(std::vector<ObjectId> log,
                   repo.Log(options_.max_history_commits));
  // Keep only commits newer than the last indexed head, oldest first.
  std::vector<ObjectId> fresh;
  for (const ObjectId& commit_id : log) {
    if (last_indexed_.has_value() && commit_id == *last_indexed_) {
      break;
    }
    fresh.push_back(commit_id);
  }
  std::reverse(fresh.begin(), fresh.end());
  std::optional<ObjectId> previous = last_indexed_;
  for (const ObjectId& commit_id : fresh) {
    ASSIGN_OR_RETURN(CommitObject commit, repo.GetCommit(commit_id));
    ASSIGN_OR_RETURN(std::vector<FileDelta> deltas,
                     repo.DiffCommits(previous, commit_id));
    for (const FileDelta& delta : deltas) {
      PathHistory& entry = history_[delta.path];
      entry.update_times_ms.push_back(commit.timestamp_ms);
      entry.authors.insert(commit.author);
      // Change size: line diff of this path across the commit.
      auto line_diff = repo.DiffFile(previous, commit_id, delta.path);
      if (line_diff.ok()) {
        double lines = static_cast<double>(line_diff->changed_lines());
        entry.mean_change_lines =
            (entry.mean_change_lines * static_cast<double>(entry.change_count) +
             lines) /
            static_cast<double>(entry.change_count + 1);
        ++entry.change_count;
      }
    }
    previous = commit_id;
  }
  last_indexed_ = repo.head();
  return OkStatus();
}

const RiskAdvisor::PathHistory* RiskAdvisor::HistoryFor(
    const std::string& path) const {
  auto it = history_.find(path);
  return it == history_.end() ? nullptr : &it->second;
}

RiskAssessment RiskAdvisor::Assess(
    const ProposedDiff& diff, const DependencyService* deps,
    const std::map<std::string, std::optional<std::set<std::string>>>*
        changed_symbols,
    const std::vector<SymbolImpact>* impacts,
    const std::vector<InvariantOutcome>* invariants) const {
  RiskAssessment assessment;

  // Invariants newly in jeopardy: the diff did not break them, but it
  // removed the abstract proof that they *cannot* break — the joint
  // consistency now rests on the specific values at head. Violated outcomes
  // block at Sandcastle and are not double-counted here.
  if (invariants != nullptr) {
    for (const InvariantOutcome& outcome : *invariants) {
      if (outcome.status == InvariantStatus::kInJeopardy) {
        assessment.score += 0.75;
        assessment.reasons.push_back(
            "invariant '" + outcome.name +
            "' is in jeopardy: it holds concretely but is no longer "
            "abstractly provable (" + outcome.detail + ")");
      }
    }
  }

  for (const FileWrite& write : diff.writes) {
    const PathHistory* history = HistoryFor(write.path);
    if (history == nullptr) {
      continue;  // New path: no history-based signal.
    }

    // Dormant config suddenly changed.
    if (!history->update_times_ms.empty() && diff.timestamp_ms > 0) {
      int64_t idle = diff.timestamp_ms - history->update_times_ms.back();
      if (idle >= options_.dormant_ms) {
        assessment.score += 1.0;
        assessment.reasons.push_back(StrFormat(
            "%s has been dormant for %lld days", write.path.c_str(),
            static_cast<long long>(idle / (24LL * 3600 * 1000))));
      }
    }

    // Highly-shared config.
    if (history->authors.size() >= options_.shared_author_threshold) {
      assessment.score += 1.0;
      assessment.reasons.push_back(StrFormat(
          "%s is highly shared (%zu distinct authors)", write.path.c_str(),
          history->authors.size()));
    }

    // First-time author on a config others own.
    if (!history->authors.empty() && history->authors.count(diff.author) == 0) {
      assessment.score += 0.5;
      assessment.reasons.push_back(StrFormat(
          "%s has never been updated by %s before", write.path.c_str(),
          diff.author.c_str()));
    }

    // Unusually large change vs this config's own history.
    if (write.content.has_value() && history->change_count >= 3 &&
        history->mean_change_lines > 0) {
      // The proposed change size is unknown without the base content; use
      // the new content's line count as an upper bound when the file is
      // being replaced wholesale, which is the risky case.
      double new_lines = static_cast<double>(SplitLines(*write.content).size());
      if (new_lines >
          history->mean_change_lines * options_.unusual_size_multiplier &&
          new_lines > 20) {
        assessment.score += 1.0;
        assessment.reasons.push_back(StrFormat(
            "%s: change touches ~%.0f lines vs a historical mean of %.1f",
            write.path.c_str(), new_lines, history->mean_change_lines));
      }
    }

    // Deleting a config many entries depend on.
    if (!write.content.has_value()) {
      assessment.score += 0.5;
      assessment.reasons.push_back(write.path + " is being deleted");
    }

    // High fan-in source file. With a symbol-level view of the edit, count
    // only entries that consume a changed symbol — the true blast radius —
    // instead of every file-level dependent. With a semantic classification
    // of the edit, weight by the worst impact on this path: blast radius is
    // fan-in times severity, not fan-in alone.
    if (deps != nullptr) {
      size_t fan_in = deps->EntriesAffectedBy({write.path}).size();
      bool symbol_refined = false;
      if (changed_symbols != nullptr) {
        auto it = changed_symbols->find(write.path);
        if (it != changed_symbols->end() && it->second.has_value()) {
          fan_in = deps->EntriesAffectedBySymbols(write.path, *it->second).size();
          symbol_refined = true;
        }
      }
      int max_severity = -1;  // -1 = no semantic view of this path.
      if (impacts != nullptr) {
        for (const SymbolImpact& impact : *impacts) {
          if (impact.file == write.path) {
            max_severity = std::max(max_severity, impact.severity());
          }
        }
      }
      if (fan_in >= options_.fan_in_threshold) {
        if (max_severity == 0) {
          assessment.reasons.push_back(StrFormat(
              "%s has %zu dependents but the edit is provably no-op; "
              "fan-in signal skipped",
              write.path.c_str(), fan_in));
        } else {
          static constexpr double kSeverityWeight[4] = {0.0, 0.5, 1.0, 1.5};
          double weight =
              max_severity < 0 ? 1.0 : kSeverityWeight[max_severity];
          assessment.score += weight;
          std::string reason = StrFormat(
              "%zu entry configs %s %s", fan_in,
              symbol_refined ? "consume symbols changed in" : "depend on",
              write.path.c_str());
          if (max_severity > 0) {
            reason += StrFormat(
                " (worst semantic impact: %s, weight %.1f)",
                std::string(ImpactKindName(
                                static_cast<ImpactKind>(max_severity)))
                    .c_str(),
                weight);
          }
          assessment.reasons.push_back(std::move(reason));
        }
      }
    }
  }

  assessment.high_risk = assessment.score >= options_.high_risk_score;
  return assessment;
}

}  // namespace configerator
