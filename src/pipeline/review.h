// Code review (the Phabricator stage of Fig 3): every config change — source
// and generated JSON alike — goes through the same review flow as code.
// Sandcastle posts its CI results onto the review so reviewers see them.

#ifndef SRC_PIPELINE_REVIEW_H_
#define SRC_PIPELINE_REVIEW_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/pipeline/landing_strip.h"
#include "src/util/status.h"

namespace configerator {

enum class ReviewState { kPending, kApproved, kRejected };

struct ReviewRecord {
  int64_t id = 0;
  ProposedDiff diff;
  ReviewState state = ReviewState::kPending;
  std::string reviewer;
  std::string rejection_reason;
  std::vector<std::string> test_results;  // Posted by Sandcastle.
};

class ReviewService {
 public:
  // Opens a review for the diff; returns its id.
  int64_t Submit(ProposedDiff diff);

  // Attaches CI output to the review.
  Status PostTestResults(int64_t review_id, std::string results);

  // Approve/reject. Self-review is not allowed.
  Status Approve(int64_t review_id, const std::string& reviewer);
  Status Reject(int64_t review_id, const std::string& reviewer,
                std::string reason);

  Result<const ReviewRecord*> Get(int64_t review_id) const;
  bool IsApproved(int64_t review_id) const;

  size_t open_reviews() const;

 private:
  std::map<int64_t, ReviewRecord> reviews_;
  int64_t next_id_ = 1;
};

}  // namespace configerator

#endif  // SRC_PIPELINE_REVIEW_H_
