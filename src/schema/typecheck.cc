#include "src/schema/typecheck.h"

#include "src/util/strings.h"

namespace configerator {

namespace {

std::string Child(const std::string& path, const std::string& name) {
  if (path.empty()) {
    return name;
  }
  return path + "." + name;
}

}  // namespace

Status TypeCheckValue(const SchemaRegistry& registry, const Type& type,
                      const Json& value, const std::string& path) {
  switch (type.kind()) {
    case TypeKind::kBool:
      if (!value.is_bool()) {
        return InvalidConfigError(path + ": expected bool");
      }
      return OkStatus();
    case TypeKind::kI16:
    case TypeKind::kI32:
    case TypeKind::kI64: {
      if (!value.is_int()) {
        return InvalidConfigError(path + ": expected integer (" +
                                  type.ToString() + ")");
      }
      int64_t v = value.as_int();
      if (v < IntTypeMin(type.kind()) || v > IntTypeMax(type.kind())) {
        return InvalidConfigError(StrFormat("%s: value %lld out of range for %s",
                                            path.c_str(),
                                            static_cast<long long>(v),
                                            type.ToString().c_str()));
      }
      return OkStatus();
    }
    case TypeKind::kDouble:
      if (!value.is_number()) {
        return InvalidConfigError(path + ": expected number");
      }
      return OkStatus();
    case TypeKind::kString:
      if (!value.is_string()) {
        return InvalidConfigError(path + ": expected string");
      }
      return OkStatus();
    case TypeKind::kList: {
      if (!value.is_array()) {
        return InvalidConfigError(path + ": expected array");
      }
      size_t i = 0;
      for (const Json& elem : value.as_array()) {
        RETURN_IF_ERROR(TypeCheckValue(registry, type.element(), elem,
                                       StrFormat("%s[%zu]", path.c_str(), i)));
        ++i;
      }
      return OkStatus();
    }
    case TypeKind::kMap: {
      if (!value.is_object()) {
        return InvalidConfigError(path + ": expected object (map)");
      }
      for (const auto& [key, elem] : value.as_object()) {
        RETURN_IF_ERROR(
            TypeCheckValue(registry, type.element(), elem, Child(path, key)));
      }
      return OkStatus();
    }
    case TypeKind::kEnum: {
      const EnumDef* e = registry.FindEnum(type.name());
      if (e == nullptr) {
        return InternalError(path + ": unknown enum " + type.name());
      }
      if (value.is_int()) {
        if (!e->HasValue(value.as_int())) {
          return InvalidConfigError(StrFormat(
              "%s: %lld is not a value of enum %s", path.c_str(),
              static_cast<long long>(value.as_int()), type.name().c_str()));
        }
        return OkStatus();
      }
      if (value.is_string() && e->ValueOf(value.as_string()).has_value()) {
        return OkStatus();
      }
      return InvalidConfigError(path + ": expected value of enum " + type.name());
    }
    case TypeKind::kStruct: {
      // A StructRef that actually names an enum (forward reference at parse
      // time) is checked as an enum.
      if (registry.FindEnum(type.name()) != nullptr) {
        return TypeCheckValue(registry, Type::EnumRef(type.name()), value, path);
      }
      return TypeCheckStruct(registry, type.name(), value, path);
    }
  }
  return InternalError(path + ": unhandled type kind");
}

Status TypeCheckStruct(const SchemaRegistry& registry, std::string_view struct_name,
                       const Json& value, const std::string& path) {
  const StructDef* def = registry.FindStruct(struct_name);
  if (def == nullptr) {
    return NotFoundError("unknown struct '" + std::string(struct_name) + "'");
  }
  if (!value.is_object()) {
    return InvalidConfigError(path + ": expected object for struct " + def->name);
  }
  // Unknown-field (typo) detection.
  for (const auto& [key, field_value] : value.as_object()) {
    if (def->FindField(key) == nullptr) {
      return InvalidConfigError(StrFormat("%s: unknown field '%s' in struct %s",
                                          path.c_str(), key.c_str(),
                                          def->name.c_str()));
    }
  }
  for (const FieldDef& field : def->fields) {
    const Json* field_value = value.Get(field.name);
    if (field_value == nullptr || field_value->is_null()) {
      if (field.required && !field.default_value.has_value()) {
        return InvalidConfigError(StrFormat("%s: missing required field '%s'",
                                            path.c_str(), field.name.c_str()));
      }
      continue;
    }
    RETURN_IF_ERROR(TypeCheckValue(registry, field.type, *field_value,
                                   Child(path, field.name)));
  }
  return OkStatus();
}

namespace {

Json ZeroValue(const SchemaRegistry& registry, const Type& type);

Json ZeroStruct(const SchemaRegistry& registry, const StructDef& def) {
  Json obj = Json::MakeObject();
  for (const FieldDef& field : def.fields) {
    if (field.default_value.has_value()) {
      obj.Set(field.name, *field.default_value);
    } else {
      obj.Set(field.name, ZeroValue(registry, field.type));
    }
  }
  return obj;
}

Json ZeroValue(const SchemaRegistry& registry, const Type& type) {
  switch (type.kind()) {
    case TypeKind::kBool:
      return Json(false);
    case TypeKind::kI16:
    case TypeKind::kI32:
    case TypeKind::kI64:
      return Json(int64_t{0});
    case TypeKind::kDouble:
      return Json(0.0);
    case TypeKind::kString:
      return Json("");
    case TypeKind::kList:
      return Json::MakeArray();
    case TypeKind::kMap:
      return Json::MakeObject();
    case TypeKind::kEnum: {
      const EnumDef* e = registry.FindEnum(type.name());
      if (e != nullptr && !e->values.empty()) {
        return Json(e->values.front().second);
      }
      return Json(int64_t{0});
    }
    case TypeKind::kStruct: {
      if (registry.FindEnum(type.name()) != nullptr) {
        return ZeroValue(registry, Type::EnumRef(type.name()));
      }
      const StructDef* s = registry.FindStruct(type.name());
      if (s != nullptr) {
        return ZeroStruct(registry, *s);
      }
      return Json::MakeObject();
    }
  }
  return Json(nullptr);
}

}  // namespace

Result<Json> ApplyDefaults(const SchemaRegistry& registry,
                           std::string_view struct_name, const Json& value) {
  const StructDef* def = registry.FindStruct(struct_name);
  if (def == nullptr) {
    return NotFoundError("unknown struct '" + std::string(struct_name) + "'");
  }
  if (!value.is_object()) {
    return InvalidConfigError("expected object for struct " + def->name);
  }
  Json out = value;
  for (const FieldDef& field : def->fields) {
    const Json* existing = out.Get(field.name);
    if (existing == nullptr || existing->is_null()) {
      if (field.default_value.has_value()) {
        out.Set(field.name, *field.default_value);
      }
      continue;
    }
    // Recurse into nested structs so their defaults materialize too.
    const Type* t = &field.type;
    if (t->kind() == TypeKind::kStruct &&
        registry.FindStruct(t->name()) != nullptr) {
      ASSIGN_OR_RETURN(Json nested, ApplyDefaults(registry, t->name(), *existing));
      out.Set(field.name, std::move(nested));
    }
  }
  return out;
}

Result<Json> DefaultInstance(const SchemaRegistry& registry,
                             std::string_view struct_name) {
  const StructDef* def = registry.FindStruct(struct_name);
  if (def == nullptr) {
    return NotFoundError("unknown struct '" + std::string(struct_name) + "'");
  }
  return ZeroStruct(registry, *def);
}

}  // namespace configerator
