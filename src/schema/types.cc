#include "src/schema/types.h"

#include <cstdint>
#include <limits>

namespace configerator {

Type Type::List(Type elem) {
  Type t(TypeKind::kList);
  t.element_ = std::make_shared<Type>(std::move(elem));
  return t;
}

Type Type::Map(Type value) {
  Type t(TypeKind::kMap);
  t.element_ = std::make_shared<Type>(std::move(value));
  return t;
}

Type Type::StructRef(std::string name) {
  Type t(TypeKind::kStruct);
  t.name_ = std::move(name);
  return t;
}

Type Type::EnumRef(std::string name) {
  Type t(TypeKind::kEnum);
  t.name_ = std::move(name);
  return t;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kI16:
      return "i16";
    case TypeKind::kI32:
      return "i32";
    case TypeKind::kI64:
      return "i64";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
    case TypeKind::kList:
      return "list<" + element_->ToString() + ">";
    case TypeKind::kMap:
      return "map<string, " + element_->ToString() + ">";
    case TypeKind::kStruct:
    case TypeKind::kEnum:
      return name_;
  }
  return "?";
}

bool Type::operator==(const Type& other) const {
  if (kind_ != other.kind_) {
    return false;
  }
  switch (kind_) {
    case TypeKind::kList:
    case TypeKind::kMap:
      return *element_ == *other.element_;
    case TypeKind::kStruct:
    case TypeKind::kEnum:
      return name_ == other.name_;
    default:
      return true;
  }
}

int64_t IntTypeMin(TypeKind kind) {
  switch (kind) {
    case TypeKind::kI16:
      return std::numeric_limits<int16_t>::min();
    case TypeKind::kI32:
      return std::numeric_limits<int32_t>::min();
    default:
      return std::numeric_limits<int64_t>::min();
  }
}

int64_t IntTypeMax(TypeKind kind) {
  switch (kind) {
    case TypeKind::kI16:
      return std::numeric_limits<int16_t>::max();
    case TypeKind::kI32:
      return std::numeric_limits<int32_t>::max();
    default:
      return std::numeric_limits<int64_t>::max();
  }
}

}  // namespace configerator
