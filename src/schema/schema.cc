#include "src/schema/schema.h"

#include <cctype>
#include <charconv>

#include "src/util/strings.h"

namespace configerator {

const FieldDef* StructDef::FindField(std::string_view field_name) const {
  for (const FieldDef& f : fields) {
    if (f.name == field_name) {
      return &f;
    }
  }
  return nullptr;
}

const FieldDef* StructDef::FindFieldById(int32_t id) const {
  for (const FieldDef& f : fields) {
    if (f.id == id) {
      return &f;
    }
  }
  return nullptr;
}

bool EnumDef::HasValue(int64_t v) const {
  for (const auto& [name, value] : values) {
    if (value == v) {
      return true;
    }
  }
  return false;
}

std::optional<int64_t> EnumDef::ValueOf(std::string_view value_name) const {
  for (const auto& [name, value] : values) {
    if (name == value_name) {
      return value;
    }
  }
  return std::nullopt;
}

std::optional<std::string> EnumDef::NameOf(int64_t v) const {
  for (const auto& [name, value] : values) {
    if (value == v) {
      return name;
    }
  }
  return std::nullopt;
}

namespace {

// Variant of RETURN_IF_ERROR usable inside Result<T>-returning members.
#define RETURN_IF_ERROR_R(expr)              \
  do {                                       \
    ::configerator::Status _s = (expr);      \
    if (!_s.ok()) {                          \
      return _s;                             \
    }                                        \
  } while (false)

// Minimal tokenizer for the IDL subset.
class IdlLexer {
 public:
  IdlLexer(std::string_view text, std::string origin)
      : text_(text), origin_(std::move(origin)) {}

  struct Token {
    enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
    std::string text;
    int line = 0;
  };

  Result<Token> Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) {
      tok.kind = Token::kEnd;
      return tok;
    }
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      tok.kind = Token::kIdent;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '-' || text_[pos_] == '+')) {
        // Only let sign characters follow an exponent marker.
        if ((text_[pos_] == '-' || text_[pos_] == '+') &&
            !(text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
          break;
        }
        ++pos_;
      }
      tok.kind = Token::kNumber;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        if (text_[pos_] == '\n') {
          return Error("newline in string literal");
        }
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          ++pos_;
        }
        value.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Error("unterminated string literal");
      }
      ++pos_;  // closing quote
      tok.kind = Token::kString;
      tok.text = std::move(value);
      return tok;
    }
    tok.kind = Token::kPunct;
    tok.text = std::string(1, c);
    ++pos_;
    return tok;
  }

  Status Error(const std::string& msg) const {
    return InvalidArgumentError(
        StrFormat("%s:%d: %s", origin_.c_str(), line_, msg.c_str()));
  }

  int line() const { return line_; }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') {
            ++line_;
          }
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::string origin_;
  size_t pos_ = 0;
  int line_ = 1;
};

// Parses IDL text into struct/enum definitions.
class IdlParser {
 public:
  IdlParser(std::string_view text, std::string origin,
            const std::function<Result<std::string>(const std::string&)>& resolver,
            SchemaRegistry* registry)
      : lexer_(text, origin), origin_(std::move(origin)), resolver_(resolver),
        registry_(registry) {}

  Status Run() {
    RETURN_IF_ERROR(Advance());
    while (tok_.kind != IdlLexer::Token::kEnd) {
      if (tok_.kind != IdlLexer::Token::kIdent) {
        return lexer_.Error("expected top-level declaration");
      }
      if (tok_.text == "include") {
        RETURN_IF_ERROR(ParseInclude());
      } else if (tok_.text == "struct") {
        RETURN_IF_ERROR(ParseStruct());
      } else if (tok_.text == "enum") {
        RETURN_IF_ERROR(ParseEnum());
      } else if (tok_.text == "namespace") {
        // Accept and ignore thrift namespace declarations.
        RETURN_IF_ERROR(Advance());  // language
        RETURN_IF_ERROR(Advance());  // identifier
        RETURN_IF_ERROR(Advance());
      } else {
        return lexer_.Error("unknown declaration '" + tok_.text + "'");
      }
    }
    return OkStatus();
  }

 private:
  Status Advance() {
    ASSIGN_OR_RETURN(tok_, lexer_.Next());
    return OkStatus();
  }

  Status Expect(IdlLexer::Token::Kind kind, std::string_view text = {}) {
    if (tok_.kind != kind || (!text.empty() && tok_.text != text)) {
      return lexer_.Error(StrFormat("expected '%s', found '%s'",
                                    std::string(text).c_str(), tok_.text.c_str()));
    }
    return Advance();
  }

  Status ParseInclude() {
    RETURN_IF_ERROR(Advance());
    if (tok_.kind != IdlLexer::Token::kString) {
      return lexer_.Error("include expects a quoted path");
    }
    std::string path = tok_.text;
    RETURN_IF_ERROR(Advance());
    if (!resolver_) {
      return lexer_.Error("include '" + path + "' but no include resolver given");
    }
    ASSIGN_OR_RETURN(std::string included, resolver_(path));
    return registry_->ParseAndRegister(included, path, resolver_);
  }

  Status ParseEnum() {
    RETURN_IF_ERROR(Advance());
    if (tok_.kind != IdlLexer::Token::kIdent) {
      return lexer_.Error("enum expects a name");
    }
    EnumDef def;
    def.name = tok_.text;
    RETURN_IF_ERROR(Advance());
    RETURN_IF_ERROR(Expect(IdlLexer::Token::kPunct, "{"));
    int64_t next_value = 0;
    while (!(tok_.kind == IdlLexer::Token::kPunct && tok_.text == "}")) {
      if (tok_.kind != IdlLexer::Token::kIdent) {
        return lexer_.Error("expected enum value name");
      }
      std::string value_name = tok_.text;
      RETURN_IF_ERROR(Advance());
      int64_t value = next_value;
      if (tok_.kind == IdlLexer::Token::kPunct && tok_.text == "=") {
        RETURN_IF_ERROR(Advance());
        if (tok_.kind != IdlLexer::Token::kNumber) {
          return lexer_.Error("expected numeric enum value");
        }
        value = std::strtoll(tok_.text.c_str(), nullptr, 10);
        RETURN_IF_ERROR(Advance());
      }
      def.values.emplace_back(std::move(value_name), value);
      next_value = value + 1;
      if (tok_.kind == IdlLexer::Token::kPunct &&
          (tok_.text == "," || tok_.text == ";")) {
        RETURN_IF_ERROR(Advance());
      }
    }
    RETURN_IF_ERROR(Advance());  // '}'
    return registry_->RegisterEnum(std::move(def));
  }

  Result<Type> ParseType() {
    if (tok_.kind != IdlLexer::Token::kIdent) {
      return lexer_.Error("expected type name");
    }
    std::string name = tok_.text;
    RETURN_IF_ERROR_R(Advance());
    if (name == "bool") {
      return Type::Bool();
    }
    if (name == "i16") {
      return Type::I16();
    }
    if (name == "i32") {
      return Type::I32();
    }
    if (name == "i64") {
      return Type::I64();
    }
    if (name == "double") {
      return Type::Double();
    }
    if (name == "string") {
      return Type::String();
    }
    if (name == "list") {
      RETURN_IF_ERROR_R(Expect(IdlLexer::Token::kPunct, "<"));
      ASSIGN_OR_RETURN(Type elem, ParseType());
      RETURN_IF_ERROR_R(Expect(IdlLexer::Token::kPunct, ">"));
      return Type::List(std::move(elem));
    }
    if (name == "map") {
      RETURN_IF_ERROR_R(Expect(IdlLexer::Token::kPunct, "<"));
      if (tok_.kind != IdlLexer::Token::kIdent || tok_.text != "string") {
        return lexer_.Error("map keys must be string (JSON object keys)");
      }
      RETURN_IF_ERROR_R(Advance());
      RETURN_IF_ERROR_R(Expect(IdlLexer::Token::kPunct, ","));
      ASSIGN_OR_RETURN(Type value, ParseType());
      RETURN_IF_ERROR_R(Expect(IdlLexer::Token::kPunct, ">"));
      return Type::Map(std::move(value));
    }
    // Named reference: decided later (struct vs enum) during resolution, but
    // if already registered we can classify now.
    if (registry_->FindEnum(name) != nullptr) {
      return Type::EnumRef(std::move(name));
    }
    return Type::StructRef(std::move(name));
  }

  // Parses a literal default value (number, string, bool, list of literals).
  Result<Json> ParseLiteral() {
    if (tok_.kind == IdlLexer::Token::kNumber) {
      std::string text = tok_.text;
      RETURN_IF_ERROR_R(Advance());
      if (text.find('.') != std::string::npos ||
          text.find('e') != std::string::npos ||
          text.find('E') != std::string::npos) {
        return Json(std::strtod(text.c_str(), nullptr));
      }
      return Json(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
    }
    if (tok_.kind == IdlLexer::Token::kString) {
      Json v(tok_.text);
      RETURN_IF_ERROR_R(Advance());
      return v;
    }
    if (tok_.kind == IdlLexer::Token::kIdent) {
      std::string word = tok_.text;
      if (word == "true" || word == "false") {
        RETURN_IF_ERROR_R(Advance());
        return Json(word == "true");
      }
      // Possibly EnumName.VALUE or bare enum value.
      auto dot = word.find('.');
      if (dot != std::string::npos) {
        std::string enum_name = word.substr(0, dot);
        std::string value_name = word.substr(dot + 1);
        const EnumDef* e = registry_->FindEnum(enum_name);
        if (e != nullptr) {
          auto v = e->ValueOf(value_name);
          if (v.has_value()) {
            RETURN_IF_ERROR_R(Advance());
            return Json(*v);
          }
        }
      }
      return lexer_.Error("unsupported default literal '" + word + "'");
    }
    if (tok_.kind == IdlLexer::Token::kPunct && tok_.text == "[") {
      RETURN_IF_ERROR_R(Advance());
      Json arr = Json::MakeArray();
      while (!(tok_.kind == IdlLexer::Token::kPunct && tok_.text == "]")) {
        ASSIGN_OR_RETURN(Json elem, ParseLiteral());
        arr.Append(std::move(elem));
        if (tok_.kind == IdlLexer::Token::kPunct && tok_.text == ",") {
          RETURN_IF_ERROR_R(Advance());
        }
      }
      RETURN_IF_ERROR_R(Advance());
      return arr;
    }
    return lexer_.Error("unsupported default literal");
  }

  Status ParseStruct() {
    RETURN_IF_ERROR(Advance());
    if (tok_.kind != IdlLexer::Token::kIdent) {
      return lexer_.Error("struct expects a name");
    }
    StructDef def;
    def.name = tok_.text;
    RETURN_IF_ERROR(Advance());
    RETURN_IF_ERROR(Expect(IdlLexer::Token::kPunct, "{"));
    while (!(tok_.kind == IdlLexer::Token::kPunct && tok_.text == "}")) {
      FieldDef field;
      if (tok_.kind != IdlLexer::Token::kNumber) {
        return lexer_.Error("expected field id");
      }
      field.id = static_cast<int32_t>(std::strtol(tok_.text.c_str(), nullptr, 10));
      RETURN_IF_ERROR(Advance());
      RETURN_IF_ERROR(Expect(IdlLexer::Token::kPunct, ":"));
      if (tok_.kind == IdlLexer::Token::kIdent &&
          (tok_.text == "required" || tok_.text == "optional")) {
        field.required = tok_.text == "required";
        RETURN_IF_ERROR(Advance());
      }
      {
        auto type_result = ParseType();
        if (!type_result.ok()) {
          return type_result.status();
        }
        field.type = std::move(type_result).value();
      }
      if (tok_.kind != IdlLexer::Token::kIdent) {
        return lexer_.Error("expected field name");
      }
      field.name = tok_.text;
      RETURN_IF_ERROR(Advance());
      if (tok_.kind == IdlLexer::Token::kPunct && tok_.text == "=") {
        RETURN_IF_ERROR(Advance());
        auto lit = ParseLiteral();
        if (!lit.ok()) {
          return lit.status();
        }
        field.default_value = std::move(lit).value();
      }
      if (tok_.kind == IdlLexer::Token::kPunct &&
          (tok_.text == "," || tok_.text == ";")) {
        RETURN_IF_ERROR(Advance());
      }
      for (const FieldDef& existing : def.fields) {
        if (existing.id == field.id) {
          return lexer_.Error(
              StrFormat("duplicate field id %d in struct %s", field.id,
                        def.name.c_str()));
        }
        if (existing.name == field.name) {
          return lexer_.Error("duplicate field name '" + field.name + "'");
        }
      }
      def.fields.push_back(std::move(field));
    }
    RETURN_IF_ERROR(Advance());  // '}'
    return registry_->RegisterStruct(std::move(def));
  }

  IdlLexer lexer_;
  std::string origin_;
  const std::function<Result<std::string>(const std::string&)>& resolver_;
  SchemaRegistry* registry_;
  IdlLexer::Token tok_;
};

#undef RETURN_IF_ERROR_R

}  // namespace

Status SchemaRegistry::ParseAndRegister(
    std::string_view text, const std::string& origin,
    const std::function<Result<std::string>(const std::string&)>& include_resolver) {
  IdlParser parser(text, origin, include_resolver, this);
  return parser.Run();
}

Status SchemaRegistry::RegisterStruct(StructDef def) {
  if (enums_.count(def.name) > 0) {
    return AlreadyExistsError("'" + def.name + "' already defined as enum");
  }
  auto [it, inserted] = structs_.insert_or_assign(def.name, std::move(def));
  (void)it;
  (void)inserted;  // Re-registering the same struct (re-parse) is allowed.
  return OkStatus();
}

Status SchemaRegistry::RegisterEnum(EnumDef def) {
  if (structs_.count(def.name) > 0) {
    return AlreadyExistsError("'" + def.name + "' already defined as struct");
  }
  enums_.insert_or_assign(def.name, std::move(def));
  return OkStatus();
}

const StructDef* SchemaRegistry::FindStruct(std::string_view name) const {
  auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : &it->second;
}

const EnumDef* SchemaRegistry::FindEnum(std::string_view name) const {
  auto it = enums_.find(name);
  return it == enums_.end() ? nullptr : &it->second;
}

namespace {

Status ResolveType(const SchemaRegistry& registry, const Type& type,
                   const std::string& context) {
  switch (type.kind()) {
    case TypeKind::kList:
    case TypeKind::kMap:
      return ResolveType(registry, type.element(), context);
    case TypeKind::kStruct:
      // A StructRef may actually name an enum that was registered later.
      if (registry.FindStruct(type.name()) == nullptr &&
          registry.FindEnum(type.name()) == nullptr) {
        return NotFoundError(StrFormat("unresolved type '%s' referenced from %s",
                                       type.name().c_str(), context.c_str()));
      }
      return OkStatus();
    case TypeKind::kEnum:
      if (registry.FindEnum(type.name()) == nullptr) {
        return NotFoundError(StrFormat("unresolved enum '%s' referenced from %s",
                                       type.name().c_str(), context.c_str()));
      }
      return OkStatus();
    default:
      return OkStatus();
  }
}

}  // namespace

Status SchemaRegistry::ResolveAll() const {
  for (const auto& [name, def] : structs_) {
    for (const FieldDef& f : def.fields) {
      RETURN_IF_ERROR(ResolveType(*this, f.type, "struct " + name));
    }
  }
  return OkStatus();
}

namespace {

void AppendCanonical(const SchemaRegistry& registry, const std::string& name,
                     std::map<std::string, bool>* visited, std::string* out) {
  auto [it, inserted] = visited->emplace(name, true);
  if (!inserted) {
    return;
  }
  const StructDef* s = registry.FindStruct(name);
  if (s != nullptr) {
    *out += "struct " + s->name + "{";
    for (const FieldDef& f : s->fields) {
      *out += StrFormat("%d:%s %s %s", f.id, f.required ? "req" : "opt",
                        f.type.ToString().c_str(), f.name.c_str());
      if (f.default_value.has_value()) {
        *out += "=" + f.default_value->Dump();
      }
      *out += ";";
    }
    *out += "}";
    // Recurse into referenced types.
    for (const FieldDef& f : s->fields) {
      const Type* t = &f.type;
      while (t->kind() == TypeKind::kList || t->kind() == TypeKind::kMap) {
        t = &t->element();
      }
      if (t->kind() == TypeKind::kStruct || t->kind() == TypeKind::kEnum) {
        AppendCanonical(registry, t->name(), visited, out);
      }
    }
    return;
  }
  const EnumDef* e = registry.FindEnum(name);
  if (e != nullptr) {
    *out += "enum " + e->name + "{";
    for (const auto& [value_name, value] : e->values) {
      *out += StrFormat("%s=%lld;", value_name.c_str(),
                        static_cast<long long>(value));
    }
    *out += "}";
  }
}

}  // namespace

Result<Sha256Digest> SchemaRegistry::SchemaHash(std::string_view struct_name) const {
  if (FindStruct(struct_name) == nullptr && FindEnum(struct_name) == nullptr) {
    return NotFoundError("no schema named '" + std::string(struct_name) + "'");
  }
  std::string canonical;
  std::map<std::string, bool> visited;
  AppendCanonical(*this, std::string(struct_name), &visited, &canonical);
  return Sha256::Hash(canonical);
}

std::vector<std::string> SchemaRegistry::StructNames() const {
  std::vector<std::string> names;
  names.reserve(structs_.size());
  for (const auto& [name, def] : structs_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> SchemaRegistry::EnumNames() const {
  std::vector<std::string> names;
  names.reserve(enums_.size());
  for (const auto& [name, def] : enums_) {
    names.push_back(name);
  }
  return names;
}

Status CheckBackwardCompatible(const StructDef& old_def, const StructDef& new_def) {
  for (const FieldDef& nf : new_def.fields) {
    const FieldDef* of = old_def.FindFieldById(nf.id);
    if (of == nullptr) {
      // New field: must not be required without a default, or old data
      // (lacking it) becomes unreadable.
      if (nf.required && !nf.default_value.has_value()) {
        return InvalidConfigError(StrFormat(
            "field %d (%s) added as required without default; readers of old "
            "data will fail",
            nf.id, nf.name.c_str()));
      }
      continue;
    }
    if (!(of->type == nf.type)) {
      return InvalidConfigError(StrFormat(
          "field %d changed type from %s to %s", nf.id,
          of->type.ToString().c_str(), nf.type.ToString().c_str()));
    }
    if (nf.required && !of->required) {
      return InvalidConfigError(StrFormat(
          "field %d (%s) changed from optional to required", nf.id,
          nf.name.c_str()));
    }
  }
  return OkStatus();
}

}  // namespace configerator
