// Schema definitions (structs, enums) parsed from Thrift-subset IDL text,
// plus the registry that resolves named types across files.
//
// Grammar (subset of Apache Thrift):
//
//   include "path/to/other.thrift"
//   enum Name { A = 0, B = 1, }
//   struct Name {
//     1: required string field;
//     2: optional i32 other = 42;   // default value
//     3: optional list<string> tags;
//     4: optional map<string, i64> limits;
//     5: optional OtherStruct nested;
//   }
//
// Comments: // and # to end of line, /* ... */.

#ifndef SRC_SCHEMA_SCHEMA_H_
#define SRC_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/schema/types.h"
#include "src/util/sha256.h"
#include "src/util/status.h"

namespace configerator {

// One field of a struct.
struct FieldDef {
  int32_t id = 0;          // Thrift field id; drives compatibility rules.
  std::string name;
  Type type = Type::String();
  bool required = false;
  std::optional<Json> default_value;  // Literal default, already JSON-typed.
};

struct StructDef {
  std::string name;
  std::vector<FieldDef> fields;

  const FieldDef* FindField(std::string_view field_name) const;
  const FieldDef* FindFieldById(int32_t id) const;
};

struct EnumDef {
  std::string name;
  // Ordered (name, value) pairs.
  std::vector<std::pair<std::string, int64_t>> values;

  bool HasValue(int64_t v) const;
  std::optional<int64_t> ValueOf(std::string_view value_name) const;
  std::optional<std::string> NameOf(int64_t v) const;
};

// Holds all structs/enums known to the config compiler. Thread-compatible.
class SchemaRegistry {
 public:
  // Parses IDL `text` and registers its definitions. `origin` names the file
  // for error messages. `include_resolver`, if given, is called for each
  // `include "path"` statement and must return the included file's text.
  Status ParseAndRegister(
      std::string_view text, const std::string& origin,
      const std::function<Result<std::string>(const std::string&)>&
          include_resolver = nullptr);

  Status RegisterStruct(StructDef def);
  Status RegisterEnum(EnumDef def);

  const StructDef* FindStruct(std::string_view name) const;
  const EnumDef* FindEnum(std::string_view name) const;

  // Verifies every struct/enum reference inside registered definitions
  // resolves. Call after all files are loaded.
  Status ResolveAll() const;

  // Canonical fingerprint of one struct including transitively referenced
  // types. MobileConfig sends this hash to detect schema version changes.
  Result<Sha256Digest> SchemaHash(std::string_view struct_name) const;

  std::vector<std::string> StructNames() const;
  std::vector<std::string> EnumNames() const;

 private:
  std::map<std::string, StructDef, std::less<>> structs_;
  std::map<std::string, EnumDef, std::less<>> enums_;
};

// Backward compatibility: can a reader with `new_def` read data written under
// `old_def`? Rules (mirroring Thrift semantics the incident in §6.4 hinged
// on): a field id may not change type; a required field may not be added; a
// field may not become required.
Status CheckBackwardCompatible(const StructDef& old_def, const StructDef& new_def);

}  // namespace configerator

#endif  // SRC_SCHEMA_SCHEMA_H_
