// Type system for the Thrift-subset IDL used to describe config schemas.
//
// The paper defines every config's data schema "in the platform-independent
// Thrift language". We implement the subset that configs actually need:
// primitives, enums, structs, list<T> and map<string, T> (JSON object keys
// are strings). Types are resolved by name against a SchemaRegistry.

#ifndef SRC_SCHEMA_TYPES_H_
#define SRC_SCHEMA_TYPES_H_

#include <memory>
#include <string>
#include <vector>

namespace configerator {

enum class TypeKind {
  kBool,
  kI16,
  kI32,
  kI64,
  kDouble,
  kString,
  kList,    // list<elem>
  kMap,     // map<string, elem>
  kStruct,  // named struct reference
  kEnum,    // named enum reference
};

// A (possibly parameterized) type reference. Value type with shared inner
// nodes; cheap to copy.
class Type {
 public:
  static Type Bool() { return Type(TypeKind::kBool); }
  static Type I16() { return Type(TypeKind::kI16); }
  static Type I32() { return Type(TypeKind::kI32); }
  static Type I64() { return Type(TypeKind::kI64); }
  static Type Double() { return Type(TypeKind::kDouble); }
  static Type String() { return Type(TypeKind::kString); }
  static Type List(Type elem);
  static Type Map(Type value);
  static Type StructRef(std::string name);
  static Type EnumRef(std::string name);

  TypeKind kind() const { return kind_; }
  bool is_integer() const {
    return kind_ == TypeKind::kI16 || kind_ == TypeKind::kI32 ||
           kind_ == TypeKind::kI64;
  }

  // Element type for list, value type for map. Precondition: parameterized.
  const Type& element() const { return *element_; }

  // Referenced struct/enum name. Precondition: kStruct or kEnum.
  const std::string& name() const { return name_; }

  // Canonical rendering: "list<map<string, i32>>", "Job", etc. Feeds the
  // schema hash, so it must be stable.
  std::string ToString() const;

  bool operator==(const Type& other) const;

 private:
  explicit Type(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  std::shared_ptr<const Type> element_;
  std::string name_;
};

// Integer bounds per integral kind, used by the type checker.
int64_t IntTypeMin(TypeKind kind);
int64_t IntTypeMax(TypeKind kind);

}  // namespace configerator

#endif  // SRC_SCHEMA_TYPES_H_
