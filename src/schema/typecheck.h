// Type checking of JSON config values against Thrift-subset schemas, and
// default-value materialization. This is the first of the paper's layered
// defenses against configuration errors: a config that does not conform to
// its declared schema never leaves the compiler.

#ifndef SRC_SCHEMA_TYPECHECK_H_
#define SRC_SCHEMA_TYPECHECK_H_

#include <string>

#include "src/json/json.h"
#include "src/schema/schema.h"
#include "src/util/status.h"

namespace configerator {

// Checks `value` against struct `struct_name`. Rejects: missing required
// fields, type mismatches, out-of-range integers, unknown fields (typo
// defense), and enum values outside the declared set. `path` prefixes error
// messages ("job.resources.cpu: ...").
Status TypeCheckStruct(const SchemaRegistry& registry, std::string_view struct_name,
                       const Json& value, const std::string& path = "");

// Checks `value` against an arbitrary type.
Status TypeCheckValue(const SchemaRegistry& registry, const Type& type,
                      const Json& value, const std::string& path);

// Returns a copy of `value` with declared defaults filled in for absent
// optional fields (recursively for nested structs). The compiler runs this
// before export so consumers always see fully-populated configs.
Result<Json> ApplyDefaults(const SchemaRegistry& registry,
                           std::string_view struct_name, const Json& value);

// Builds a zero/default instance of a struct: declared defaults where given,
// natural zero values for remaining optionals. Useful for UI-created configs.
Result<Json> DefaultInstance(const SchemaRegistry& registry,
                             std::string_view struct_name);

}  // namespace configerator

#endif  // SRC_SCHEMA_TYPECHECK_H_
