#include "src/lang/value.h"

#include <algorithm>
#include <set>

#include "src/util/strings.h"

namespace configerator {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::make_shared<std::string>(std::move(s));
  return v;
}

Value Value::MakeList() { return MakeList({}); }

Value Value::MakeList(List items) {
  Value v;
  v.kind_ = Kind::kList;
  v.list_ = std::make_shared<List>(std::move(items));
  if (ContainerCycleBreaker* breaker = ContainerCycleBreaker::Current()) {
    breaker->Track(v.list_);
  }
  return v;
}

Value Value::MakeDict() { return MakeDict({}, ""); }

Value Value::MakeDict(Dict items, std::string type_name) {
  Value v;
  v.kind_ = Kind::kDict;
  v.dict_ = std::make_shared<Dict>(std::move(items));
  v.type_name_ = std::move(type_name);
  if (ContainerCycleBreaker* breaker = ContainerCycleBreaker::Current()) {
    breaker->Track(v.dict_);
  }
  return v;
}

Value Value::MakeClosure(Closure c) {
  Value v;
  v.kind_ = Kind::kClosure;
  v.closure_ = std::make_shared<Closure>(std::move(c));
  return v;
}

Value Value::MakeNative(std::string name, NativeFn fn) {
  Value v;
  v.kind_ = Kind::kNative;
  v.native_ = std::make_shared<NativeFunction>(
      NativeFunction{std::move(name), std::move(fn)});
  return v;
}

bool Value::Truthy() const {
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return bool_;
    case Kind::kInt:
      return int_ != 0;
    case Kind::kDouble:
      return double_ != 0;
    case Kind::kString:
      return !string_->empty();
    case Kind::kList:
      return !list_->empty();
    case Kind::kDict:
      return !dict_->empty();
    case Kind::kClosure:
    case Kind::kNative:
      return true;
  }
  return false;
}

bool Value::Equals(const Value& other) const {
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) {
      return int_ == other.int_;
    }
    return as_double() == other.as_double();
  }
  if (kind_ != other.kind_) {
    return false;
  }
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kString:
      return *string_ == *other.string_;
    case Kind::kList: {
      if (list_ == other.list_) {
        return true;
      }
      if (list_->size() != other.list_->size()) {
        return false;
      }
      for (size_t i = 0; i < list_->size(); ++i) {
        if (!(*list_)[i].Equals((*other.list_)[i])) {
          return false;
        }
      }
      return true;
    }
    case Kind::kDict: {
      if (dict_ == other.dict_) {
        return true;
      }
      if (dict_->size() != other.dict_->size()) {
        return false;
      }
      auto it1 = dict_->begin();
      auto it2 = other.dict_->begin();
      for (; it1 != dict_->end(); ++it1, ++it2) {
        if (it1->first != it2->first || !it1->second.Equals(it2->second)) {
          return false;
        }
      }
      return true;
    }
    case Kind::kClosure:
      return closure_ == other.closure_;
    case Kind::kNative:
      return native_ == other.native_;
    default:
      return false;
  }
}

std::string_view Value::KindName() const {
  switch (kind_) {
    case Kind::kNull:
      return "None";
    case Kind::kBool:
      return "bool";
    case Kind::kInt:
      return "int";
    case Kind::kDouble:
      return "double";
    case Kind::kString:
      return "string";
    case Kind::kList:
      return "list";
    case Kind::kDict:
      return type_name_.empty() ? "dict" : std::string_view(type_name_);
    case Kind::kClosure:
      return "function";
    case Kind::kNative:
      return "builtin";
  }
  return "?";
}

namespace {
constexpr int kMaxValueDepth = 128;
}  // namespace

std::string Value::ToDebugStringInternal(int depth) const {
  if (depth > kMaxValueDepth) {
    return "...";
  }
  switch (kind_) {
    case Kind::kNull:
      return "None";
    case Kind::kBool:
      return bool_ ? "True" : "False";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble:
      return StrFormat("%g", double_);
    case Kind::kString: {
      std::string out;
      JsonEscape(*string_, &out);
      return out;
    }
    case Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list_->size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += (*list_)[i].ToDebugStringInternal(depth + 1);
      }
      return out + "]";
    }
    case Kind::kDict: {
      std::string out = type_name_.empty() ? "{" : type_name_ + "{";
      bool first = true;
      for (const auto& [k, v] : *dict_) {
        if (!first) {
          out += ", ";
        }
        first = false;
        out += k + ": " + v.ToDebugStringInternal(depth + 1);
      }
      return out + "}";
    }
    case Kind::kClosure:
      return "<function>";
    case Kind::kNative:
      return "<builtin " + native_->name + ">";
  }
  return "?";
}

Result<Json> Value::ToJsonInternal(int depth) const {
  if (depth > kMaxValueDepth) {
    return InvalidConfigError(
        "value nesting exceeds the export depth limit (self-referential "
        "container?)");
  }
  switch (kind_) {
    case Kind::kNull:
      return Json(nullptr);
    case Kind::kBool:
      return Json(bool_);
    case Kind::kInt:
      return Json(int_);
    case Kind::kDouble:
      return Json(double_);
    case Kind::kString:
      return Json(*string_);
    case Kind::kList: {
      Json arr = Json::MakeArray();
      for (const Value& v : *list_) {
        ASSIGN_OR_RETURN(Json j, v.ToJsonInternal(depth + 1));
        arr.Append(std::move(j));
      }
      return arr;
    }
    case Kind::kDict: {
      Json obj = Json::MakeObject();
      for (const auto& [k, v] : *dict_) {
        ASSIGN_OR_RETURN(Json j, v.ToJsonInternal(depth + 1));
        obj.Set(k, std::move(j));
      }
      return obj;
    }
    case Kind::kClosure:
    case Kind::kNative:
      return InvalidConfigError("cannot export a function value to JSON");
  }
  return InternalError("unhandled value kind");
}

Value Value::FromJson(const Json& json) {
  switch (json.kind()) {
    case Json::Kind::kNull:
      return Value::Null();
    case Json::Kind::kBool:
      return Value::Bool(json.as_bool());
    case Json::Kind::kInt:
      return Value::Int(json.as_int());
    case Json::Kind::kDouble:
      return Value::Double(json.as_double());
    case Json::Kind::kString:
      return Value::Str(json.as_string());
    case Json::Kind::kArray: {
      List items;
      items.reserve(json.as_array().size());
      for (const Json& j : json.as_array()) {
        items.push_back(FromJson(j));
      }
      return MakeList(std::move(items));
    }
    case Json::Kind::kObject: {
      Dict items;
      for (const auto& [k, j] : json.as_object()) {
        items.emplace(k, FromJson(j));
      }
      return MakeDict(std::move(items));
    }
  }
  return Value::Null();
}

ContainerCycleBreaker*& ContainerCycleBreaker::Current() {
  thread_local ContainerCycleBreaker* current = nullptr;
  return current;
}

ContainerCycleBreaker::ContainerCycleBreaker() : prev_(Current()) {
  Current() = this;
}

ContainerCycleBreaker::~ContainerCycleBreaker() {
  BreakCycles();
  // Splice this breaker out of the installation chain wherever it sits.
  // Destruction is usually LIFO, but `engine = std::make_unique<Engine>(...)`
  // constructs the replacement (installing its breaker) before destroying
  // the old engine, so the chain can lose a middle link first.
  if (Current() == this) {
    Current() = prev_;
    return;
  }
  for (ContainerCycleBreaker* b = Current(); b != nullptr; b = b->prev_) {
    if (b->prev_ == this) {
      b->prev_ = prev_;
      return;
    }
  }
}

namespace {

// True when any container reachable from `v` through list/dict edges is
// `target`. By the time this runs the engine has already cleared its
// environments, so closure→scope edges lead nowhere and container edges
// are the only way a cycle can persist.
bool ReachesCell(const Value& v, const void* target,
                 std::set<const void*>& visited) {
  if (v.is_list()) {
    const void* id = &v.as_list();
    if (id == target) {
      return true;
    }
    if (!visited.insert(id).second) {
      return false;
    }
    for (const Value& item : v.as_list()) {
      if (ReachesCell(item, target, visited)) {
        return true;
      }
    }
  } else if (v.is_dict()) {
    const void* id = &v.as_dict();
    if (id == target) {
      return true;
    }
    if (!visited.insert(id).second) {
      return false;
    }
    for (const auto& [key, item] : v.as_dict()) {
      if (ReachesCell(item, target, visited)) {
        return true;
      }
    }
  }
  return false;
}

bool ListIsCyclic(const std::shared_ptr<Value::List>& cell) {
  std::set<const void*> visited;
  for (const Value& item : *cell) {
    if (ReachesCell(item, cell.get(), visited)) {
      return true;
    }
  }
  return false;
}

bool DictIsCyclic(const std::shared_ptr<Value::Dict>& cell) {
  std::set<const void*> visited;
  for (const auto& [key, item] : *cell) {
    if (ReachesCell(item, cell.get(), visited)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void ContainerCycleBreaker::BreakCycles() {
  // Lock the survivors, decide which are cyclic, then clear — deciding
  // before clearing keeps the reachability checks consistent.
  std::vector<std::shared_ptr<Value::List>> live_lists;
  std::vector<std::shared_ptr<Value::Dict>> live_dicts;
  for (const std::weak_ptr<Value::List>& weak : lists_) {
    if (std::shared_ptr<Value::List> cell = weak.lock()) {
      live_lists.push_back(std::move(cell));
    }
  }
  for (const std::weak_ptr<Value::Dict>& weak : dicts_) {
    if (std::shared_ptr<Value::Dict> cell = weak.lock()) {
      live_dicts.push_back(std::move(cell));
    }
  }
  std::vector<std::shared_ptr<Value::List>> cyclic_lists;
  std::vector<std::shared_ptr<Value::Dict>> cyclic_dicts;
  for (const std::shared_ptr<Value::List>& cell : live_lists) {
    if (ListIsCyclic(cell)) {
      cyclic_lists.push_back(cell);
    }
  }
  for (const std::shared_ptr<Value::Dict>& cell : live_dicts) {
    if (DictIsCyclic(cell)) {
      cyclic_dicts.push_back(cell);
    }
  }
  for (const std::shared_ptr<Value::List>& cell : cyclic_lists) {
    cell->clear();
  }
  for (const std::shared_ptr<Value::Dict>& cell : cyclic_dicts) {
    cell->clear();
  }
  lists_.clear();
  dicts_.clear();
}

void ContainerCycleBreaker::MaybeCompact() {
  if (lists_.size() + dicts_.size() < compact_threshold_) {
    return;
  }
  std::erase_if(lists_, [](const std::weak_ptr<Value::List>& weak) {
    return weak.expired();
  });
  std::erase_if(dicts_, [](const std::weak_ptr<Value::Dict>& weak) {
    return weak.expired();
  });
  compact_threshold_ =
      std::max<size_t>(1024, 2 * (lists_.size() + dicts_.size()));
}

void ContainerCycleBreaker::Track(const std::shared_ptr<Value::List>& cell) {
  MaybeCompact();
  lists_.push_back(cell);
}

void ContainerCycleBreaker::Track(const std::shared_ptr<Value::Dict>& cell) {
  MaybeCompact();
  dicts_.push_back(cell);
}

}  // namespace configerator
