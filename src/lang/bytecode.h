// Bytecode representation for the config source language.
//
// CSL modules are compiled once into a CompiledUnit — a flat instruction
// stream plus constant/name pools — and executed by the stack VM in
// src/lang/vm.h. Units are immutable after compilation, so one unit can be
// shared across compile sessions and cached by the content hash of its
// source (src/lang/unit_cache.h); unchanged imports never recompile.
//
// The opcode set is deliberately small and mirrors the reference
// interpreter's evaluation order instruction by instruction: the
// differential fuzz battery (tests/vm_differential_test.cc) holds the two
// engines to bit-identical artifacts and byte-identical error messages, so
// every "clever" encoding here must preserve observable evaluation order —
// including which subexpression fails first.

#ifndef SRC_LANG_BYTECODE_H_
#define SRC_LANG_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/lang/value.h"
#include "src/util/sha256.h"

namespace configerator {

struct CompiledUnit;

// X-macro: X(name, operand_bytes). Operand encodings are little-endian;
// kCall carries a variable tail (kwarg-name indices) documented below.
#define CSL_OPCODE_LIST(X)                                                   \
  /* Stack and pools. */                                                     \
  X(Const, 2)          /* push constants[u16] */                             \
  X(Pop, 0)            /* drop top */                                        \
  X(PopN, 2)           /* drop u16 values (loop-state cleanup on break) */   \
  /* Variables. */                                                           \
  X(LoadName, 2)       /* push env lookup of names[u16] */                   \
  X(StoreName, 2)      /* pop into innermost env (Python assignment) */      \
  X(LoadLocal, 2)      /* push local slot u16 (falls back to env chain) */   \
  X(StoreLocal, 2)     /* pop into local slot u16 */                         \
  /* Binary operators (two pops, one push). */                               \
  X(Add, 0) X(Sub, 0) X(Mul, 0) X(Div, 0) X(FloorDiv, 0) X(Mod, 0)           \
  X(Eq, 0) X(Ne, 0) X(Lt, 0) X(Le, 0) X(Gt, 0) X(Ge, 0)                      \
  X(In, 0) X(NotIn, 0)                                                       \
  /* Unary operators. */                                                     \
  X(Neg, 0) X(Not, 0)                                                        \
  /* Control flow; absolute u32 targets. Peek variants keep the operand      \
     on the stack (short-circuit and/or return the deciding operand). */     \
  X(Jump, 4)                                                                 \
  X(JumpIfFalsePop, 4)                                                       \
  X(JumpIfFalsePeek, 4)                                                      \
  X(JumpIfTruePeek, 4)                                                       \
  /* Containers. */                                                          \
  X(MakeList, 2)       /* pop u16 items, push list */                        \
  X(MakeDict, 2)       /* pop u16 key/value pairs, push dict */              \
  X(CheckStrKey, 0)    /* error unless top of stack is a string */           \
  X(IndexGet, 0)       /* pop key, base; push base[key] */                   \
  X(AttrGet, 2)        /* pop base; push base.names[u16] */                  \
  X(IndexSet, 0)       /* pop key, base, value; base[key] = value */         \
  X(AttrSet, 2)        /* pop base, value; base.names[u16] = value */        \
  /* Calls and functions. kCall: u16 argc, u16 kwargc, then kwargc u16       \
     name indices (sorted); stack is callee, args..., kwvalues... */         \
  X(CheckCallable, 0)  /* error unless top of stack is callable */           \
  X(Call, 4)                                                                 \
  X(MakeClosure, 2)    /* push closure over functions[u16] + current env */  \
  X(Return, 0)         /* pop return value, leave the frame */               \
  X(ReturnNull, 0)                                                           \
  /* For loops: [items, index] live on the stack while the loop runs. */     \
  X(IterPrep, 0)       /* pop iterable; push materialized items, index 0 */  \
  X(ForLoop, 4)        /* push next item, or pop state and jump u32 */       \
  X(Unpack, 2)         /* pop list of u16 items; push them reversed */       \
  /* assert. */                                                              \
  X(AssertFail, 0)                                                           \
  X(AssertFailMsg, 0)  /* pop message value */                               \
  /* Import/export special forms (syntactic, like the interpreter). */       \
  X(Import, 2)         /* pop path; import with "*" filter (names[u16] =     \
                          callee spelling for messages) */                   \
  X(ImportBegin, 6)    /* pop path; u16 callee name; schema imports and     \
                          the module load happen here, then jump u32 past    \
                          the filter if the path was a schema */             \
  X(ImportApply, 0)    /* pop filter; bind the pending module's symbols */   \
  X(CheckExportName, 0)                                                      \
  X(Export, 1)         /* u8: 1 = export(name, value), 0 = export_if_last */ \
  /* Dead-branch diagnostics (e.g. special-form arity errors) and halt. */   \
  X(RuntimeError, 2)   /* fail with message names[u16] */                    \
  X(Halt, 0)

enum class OpCode : uint8_t {
#define X(id, operands) k##id,
  CSL_OPCODE_LIST(X)
#undef X
};

// Instruction name ("Const", "JumpIfFalsePop", ...).
std::string_view OpCodeName(OpCode op);

// Fixed operand byte count (kCall's kwarg tail comes on top of this).
int OpCodeOperands(OpCode op);

// One instruction stream plus its pools. A module body and every function
// body/default-argument expression each get their own chunk.
struct Chunk {
  std::vector<uint8_t> code;
  std::vector<Value> constants;     // Scalar literals, kind-strict dedup.
  std::vector<std::string> names;   // Identifiers, attribute names, messages.
  // Run-length source lines: (first instruction offset, line). Binary
  // searched by LineAt for error attribution.
  std::vector<std::pair<uint32_t, int>> lines;
  // Module path errors are reported against (the defining module for
  // function chunks).
  std::string origin;

  // Pool interning. Constants dedup only identical kinds — 1, 1.0 and True
  // compare Equals() but must stay distinct constants.
  uint16_t AddConstant(const Value& v);
  uint16_t AddName(const std::string& name);

  void Emit(OpCode op, int line);
  void EmitU8(uint8_t v) { code.push_back(v); }
  void EmitU16(uint16_t v);
  void EmitU32(uint32_t v);
  void PatchU32(size_t at, uint32_t v);

  uint16_t ReadU16(size_t at) const;
  uint32_t ReadU32(size_t at) const;
  int LineAt(size_t ip) const;
};

// A compiled function body. `defaults` parallels `params` (null = required
// argument), each default being a small chunk evaluated in the callee's
// scope. Functions whose locals are statically known run with vector slots
// (`slot_mode`); functions that define nested functions or run imports need
// a real Environment so closures can capture it.
struct CompiledFunction {
  std::string name;
  std::string origin;
  int line = 0;
  std::vector<std::string> params;
  std::vector<std::unique_ptr<Chunk>> defaults;
  bool slot_mode = false;
  std::vector<std::string> local_names;  // Slot index -> name (slot mode).
  Chunk chunk;
  // Owning unit, for kMakeClosure function lookup when the VM re-enters a
  // closure from outside (validator calls). Stable: units are heap-allocated
  // and immutable.
  const CompiledUnit* unit = nullptr;
};

// A statically known import edge: where it points and whether the target is
// a Thrift schema (which has includes and a validator companion instead of a
// CSL import closure of its own).
struct StaticImport {
  std::string path;
  bool is_schema = false;

  bool operator==(const StaticImport&) const = default;
};

// A fully compiled module: the top-level chunk plus every function defined
// anywhere in it. Immutable after codegen; shared_ptr-shared between the
// unit cache and every session that executed it (values may outlive the
// session's cache reference).
struct CompiledUnit {
  std::string path;
  Sha256Digest source_hash;
  Chunk top;
  std::vector<std::unique_ptr<CompiledFunction>> functions;
  // Literal import paths (modules and schemas) discovered statically, in
  // first-occurrence order — the edges ClosureDigest hashes over.
  std::vector<StaticImport> static_imports;
  // True when any import path/filter is a computed expression; such units
  // have no statically known closure.
  bool has_dynamic_import = false;
};

// Human-readable listings; stable output covered by tests/vm_test.cc.
std::string DisassembleChunk(const Chunk& chunk, const std::string& label);
std::string Disassemble(const CompiledUnit& unit);

}  // namespace configerator

#endif  // SRC_LANG_BYTECODE_H_
