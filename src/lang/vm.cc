#include "src/lang/vm.h"

#include <algorithm>

#include "src/lang/builtins.h"
#include "src/lang/import_resolver.h"
#include "src/lang/ops.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

constexpr int kMaxCallDepth = 200;

BinOp BinOpFor(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
      return BinOp::kAdd;
    case OpCode::kSub:
      return BinOp::kSub;
    case OpCode::kMul:
      return BinOp::kMul;
    case OpCode::kDiv:
      return BinOp::kDiv;
    case OpCode::kFloorDiv:
      return BinOp::kFloorDiv;
    case OpCode::kMod:
      return BinOp::kMod;
    case OpCode::kEq:
      return BinOp::kEq;
    case OpCode::kNe:
      return BinOp::kNe;
    case OpCode::kLt:
      return BinOp::kLt;
    case OpCode::kLe:
      return BinOp::kLe;
    case OpCode::kGt:
      return BinOp::kGt;
    case OpCode::kGe:
      return BinOp::kGe;
    case OpCode::kIn:
      return BinOp::kIn;
    default:
      return BinOp::kNotIn;
  }
}

}  // namespace

Vm::Vm(const SchemaRegistry* registry, Hooks hooks)
    : registry_(registry), hooks_(std::move(hooks)) {}

Vm::~Vm() {
  for (const std::weak_ptr<Environment>& weak : session_envs_) {
    if (std::shared_ptr<Environment> env = weak.lock()) {
      env->Clear();
    }
  }
  if (base_env_ != nullptr) {
    base_env_->Clear();
  }
}

std::shared_ptr<Environment> Vm::NewEnvironment(
    std::shared_ptr<Environment> parent) {
  if (session_envs_.size() >= env_compact_threshold_) {
    std::erase_if(session_envs_, [](const std::weak_ptr<Environment>& weak) {
      return weak.expired();
    });
    env_compact_threshold_ = std::max<size_t>(1024, session_envs_.size() * 2);
  }
  auto env = std::make_shared<Environment>(std::move(parent));
  session_envs_.push_back(env);
  return env;
}

std::shared_ptr<Environment> Vm::MakeBaseEnvironment() {
  if (base_env_ == nullptr) {
    // Builtins live in a shared immutable parent scope; only the session's
    // schema constructors / enum namespaces go in this (mutable) layer.
    base_env_ = std::make_shared<Environment>(SharedBuiltinsEnvironment());
    if (registry_ != nullptr) {
      RegisterSchemaConstructors(*registry_, base_env_.get());
    }
  }
  return base_env_;
}

Status Vm::VmError(const Frame& frame, size_t op_ip,
                   const std::string& msg) const {
  return InvalidConfigError(StrFormat("%s:%d: %s",
                                      frame.chunk->origin.c_str(),
                                      frame.chunk->LineAt(op_ip), msg.c_str()));
}

Status Vm::EvalUnit(const CompiledUnit& unit,
                    const std::shared_ptr<Environment>& globals,
                    bool exports_enabled) {
  bool saved_exports = exports_enabled_;
  exports_enabled_ = exports_enabled;
  steps_ = 0;
  size_t saved_stack = stack_.size();
  size_t saved_pending = pending_imports_.size();

  Frame frame;
  frame.chunk = &unit.top;
  frame.unit = &unit;
  frame.env = globals;
  auto result = RunChunk(frame);

  stack_.resize(saved_stack);
  pending_imports_.resize(saved_pending);
  exports_enabled_ = saved_exports;
  if (!result.ok()) {
    return result.status();
  }
  return OkStatus();
}

Result<Value> Vm::CallValue(const Value& fn, std::vector<Value> args,
                            std::map<std::string, Value> kwargs) {
  if (fn.kind() == Value::Kind::kNative) {
    return fn.as_native().fn(args, kwargs);
  }
  if (fn.kind() != Value::Kind::kClosure) {
    return InvalidArgumentError("value is not callable");
  }
  const Closure& closure = fn.as_closure();
  if (closure.compiled == nullptr) {
    return InternalError("closure was compiled for the tree-walking interpreter");
  }
  size_t saved_stack = stack_.size();
  size_t saved_pending = pending_imports_.size();
  auto result = CallFunction(closure, std::move(args), std::move(kwargs));
  stack_.resize(saved_stack);
  pending_imports_.resize(saved_pending);
  return result;
}

Result<Value> Vm::CallFunction(const Closure& closure, std::vector<Value> args,
                               std::map<std::string, Value> kwargs) {
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    return InvalidConfigError("recursion limit exceeded");
  }
  const CompiledFunction& fn = *closure.compiled;

  Frame frame;
  frame.unit = fn.unit;
  std::vector<Value> locals;
  std::vector<bool> locals_set;
  if (fn.slot_mode) {
    locals.resize(fn.local_names.size());
    locals_set.assign(fn.local_names.size(), false);
    frame.fn = &fn;
    frame.locals = &locals;
    frame.locals_set = &locals_set;
    frame.fallback = closure.env;
  } else {
    frame.env = NewEnvironment(closure.env);
  }

  std::vector<bool> has_default(fn.params.size(), false);
  for (size_t i = 0; i < fn.params.size(); ++i) {
    has_default[i] = fn.defaults[i] != nullptr;
  }
  Status bind = BindCallArgs(
      fn.name, fn.params, has_default, std::move(args), std::move(kwargs),
      [&](size_t i, Value v) {
        if (fn.slot_mode) {
          locals[i] = std::move(v);
          locals_set[i] = true;
        } else {
          frame.env->Define(fn.params[i], std::move(v));
        }
      },
      [&](size_t i) -> Result<Value> {
        Frame dframe = frame;
        dframe.chunk = fn.defaults[i].get();
        return RunChunk(dframe);
      });
  if (!bind.ok()) {
    --call_depth_;
    return bind;
  }

  frame.chunk = &fn.chunk;
  auto result = RunChunk(frame);
  --call_depth_;
  return result;
}

Status Vm::DoImport(const std::string& callee, const std::string& path,
                    const std::string& filter, Frame& frame, int line) {
  auto error = [&](const std::string& msg) {
    return InvalidConfigError(StrFormat(
        "%s:%d: %s", frame.chunk->origin.c_str(), line, msg.c_str()));
  };
  if (IsSchemaImportPath(callee, path)) {
    if (!hooks_.import_schema) {
      return error("schema imports not available here");
    }
    RETURN_IF_ERROR(hooks_.import_schema(path));
    // Newly registered schemas need constructors in the base env.
    if (registry_ != nullptr && base_env_ != nullptr) {
      RegisterSchemaConstructors(*registry_, base_env_.get());
    }
    return OkStatus();
  }
  if (!hooks_.import_module) {
    return error("module imports not available here");
  }
  auto imported = hooks_.import_module(path);
  if (!imported.ok()) {
    return imported.status();
  }
  std::shared_ptr<Environment> target =
      frame.env != nullptr ? frame.env : frame.fallback;
  for (const auto& [symbol, value] : (*imported)->vars()) {
    if (filter == "*" || filter == symbol) {
      target->Define(symbol, value);
    }
  }
  return OkStatus();
}

Result<Value> Vm::RunChunk(Frame& frame) {
  const Chunk& chunk = *frame.chunk;
  const std::vector<uint8_t>& code = chunk.code;
  const size_t stack_base = stack_.size();
  size_t ip = 0;

  // Error helper: attribute to the current instruction's source line.
  size_t op_ip = 0;
  auto fail = [&](const std::string& msg) -> Status {
    return VmError(frame, op_ip, msg);
  };
  auto pop = [&]() {
    Value v = std::move(stack_.back());
    stack_.pop_back();
    return v;
  };

  while (ip < code.size()) {
    if (++steps_ > step_limit_) {
      op_ip = ip;
      return fail("evaluation step limit exceeded (runaway config code?)");
    }
    op_ip = ip;
    OpCode op = static_cast<OpCode>(code[ip]);
    ++ip;
    switch (op) {
      case OpCode::kConst: {
        stack_.push_back(chunk.constants[chunk.ReadU16(ip)]);
        ip += 2;
        break;
      }
      case OpCode::kPop:
        stack_.pop_back();
        break;
      case OpCode::kPopN: {
        uint16_t n = chunk.ReadU16(ip);
        ip += 2;
        stack_.resize(stack_.size() - n);
        break;
      }
      case OpCode::kLoadName: {
        const std::string& name = chunk.names[chunk.ReadU16(ip)];
        ip += 2;
        Environment* scope =
            frame.env != nullptr ? frame.env.get() : frame.fallback.get();
        Value* found = scope != nullptr ? scope->Find(name) : nullptr;
        if (found == nullptr) {
          return fail("undefined name '" + name + "'");
        }
        stack_.push_back(*found);
        break;
      }
      case OpCode::kStoreName: {
        const std::string& name = chunk.names[chunk.ReadU16(ip)];
        ip += 2;
        frame.env->Define(name, pop());
        break;
      }
      case OpCode::kLoadLocal: {
        uint16_t slot = chunk.ReadU16(ip);
        ip += 2;
        if ((*frame.locals_set)[slot]) {
          stack_.push_back((*frame.locals)[slot]);
          break;
        }
        // Not assigned yet in this call: the name resolves through the
        // captured environment chain, like the interpreter's
        // define-on-assignment scoping.
        const std::string& name = frame.fn->local_names[slot];
        Value* found =
            frame.fallback != nullptr ? frame.fallback->Find(name) : nullptr;
        if (found == nullptr) {
          return fail("undefined name '" + name + "'");
        }
        stack_.push_back(*found);
        break;
      }
      case OpCode::kStoreLocal: {
        uint16_t slot = chunk.ReadU16(ip);
        ip += 2;
        (*frame.locals)[slot] = pop();
        (*frame.locals_set)[slot] = true;
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kFloorDiv:
      case OpCode::kMod:
      case OpCode::kEq:
      case OpCode::kNe:
      case OpCode::kLt:
      case OpCode::kLe:
      case OpCode::kGt:
      case OpCode::kGe:
      case OpCode::kIn:
      case OpCode::kNotIn: {
        Value rhs = pop();
        Value lhs = pop();
        auto result = EvalBinaryValues(BinOpFor(op), lhs, rhs);
        if (!result.ok()) {
          return fail(std::string(result.status().message()));
        }
        stack_.push_back(std::move(result).value());
        break;
      }
      case OpCode::kNeg:
      case OpCode::kNot: {
        Value operand = pop();
        auto result =
            EvalUnaryValues(op == OpCode::kNeg ? "-" : "not", operand);
        if (!result.ok()) {
          return fail(std::string(result.status().message()));
        }
        stack_.push_back(std::move(result).value());
        break;
      }
      case OpCode::kJump:
        ip = chunk.ReadU32(ip);
        break;
      case OpCode::kJumpIfFalsePop: {
        uint32_t target = chunk.ReadU32(ip);
        ip += 4;
        if (!pop().Truthy()) {
          ip = target;
        }
        break;
      }
      case OpCode::kJumpIfFalsePeek: {
        uint32_t target = chunk.ReadU32(ip);
        ip += 4;
        if (!stack_.back().Truthy()) {
          ip = target;
        }
        break;
      }
      case OpCode::kJumpIfTruePeek: {
        uint32_t target = chunk.ReadU32(ip);
        ip += 4;
        if (stack_.back().Truthy()) {
          ip = target;
        }
        break;
      }
      case OpCode::kMakeList: {
        uint16_t n = chunk.ReadU16(ip);
        ip += 2;
        Value::List items;
        items.reserve(n);
        for (size_t i = stack_.size() - n; i < stack_.size(); ++i) {
          items.push_back(std::move(stack_[i]));
        }
        stack_.resize(stack_.size() - n);
        stack_.push_back(Value::MakeList(std::move(items)));
        break;
      }
      case OpCode::kMakeDict: {
        uint16_t n = chunk.ReadU16(ip);
        ip += 2;
        Value::Dict items;
        size_t base = stack_.size() - 2 * static_cast<size_t>(n);
        for (size_t i = 0; i < n; ++i) {
          Value& key = stack_[base + 2 * i];
          Value& value = stack_[base + 2 * i + 1];
          items[key.as_string()] = std::move(value);
        }
        stack_.resize(base);
        stack_.push_back(Value::MakeDict(std::move(items)));
        break;
      }
      case OpCode::kCheckStrKey:
        if (!stack_.back().is_string()) {
          return fail("dict keys must be strings");
        }
        break;
      case OpCode::kIndexGet: {
        Value key = pop();
        Value base = pop();
        auto result = EvalIndexGet(base, key);
        if (!result.ok()) {
          return fail(std::string(result.status().message()));
        }
        stack_.push_back(std::move(result).value());
        break;
      }
      case OpCode::kAttrGet: {
        const std::string& name = chunk.names[chunk.ReadU16(ip)];
        ip += 2;
        Value base = pop();
        auto result = EvalAttrGet(base, name);
        if (!result.ok()) {
          return fail(std::string(result.status().message()));
        }
        stack_.push_back(std::move(result).value());
        break;
      }
      case OpCode::kIndexSet: {
        Value key = pop();
        Value base = pop();
        Value value = pop();
        Status set = EvalIndexSet(base, key, std::move(value));
        if (!set.ok()) {
          return fail(std::string(set.message()));
        }
        break;
      }
      case OpCode::kAttrSet: {
        const std::string& name = chunk.names[chunk.ReadU16(ip)];
        ip += 2;
        Value base = pop();
        Value value = pop();
        Status set = EvalAttrSet(base, name, std::move(value));
        if (!set.ok()) {
          return fail(std::string(set.message()));
        }
        break;
      }
      case OpCode::kCheckCallable:
        if (!stack_.back().is_callable()) {
          return fail("value of type " +
                      std::string(stack_.back().KindName()) +
                      " is not callable");
        }
        break;
      case OpCode::kCall: {
        uint16_t argc = chunk.ReadU16(ip);
        uint16_t kwargc = chunk.ReadU16(ip + 2);
        ip += 4;
        std::vector<uint16_t> kw_names(kwargc);
        for (uint16_t i = 0; i < kwargc; ++i) {
          kw_names[i] = chunk.ReadU16(ip);
          ip += 2;
        }
        std::map<std::string, Value> kwargs;
        size_t kw_base = stack_.size() - kwargc;
        for (uint16_t i = 0; i < kwargc; ++i) {
          kwargs[chunk.names[kw_names[i]]] = std::move(stack_[kw_base + i]);
        }
        stack_.resize(kw_base);
        std::vector<Value> args;
        args.reserve(argc);
        size_t arg_base = stack_.size() - argc;
        for (uint16_t i = 0; i < argc; ++i) {
          args.push_back(std::move(stack_[arg_base + i]));
        }
        stack_.resize(arg_base);
        Value callee = pop();

        Result<Value> result = Value::Null();
        if (callee.kind() == Value::Kind::kNative) {
          result = callee.as_native().fn(args, kwargs);
        } else if (callee.kind() == Value::Kind::kClosure) {
          result =
              CallFunction(callee.as_closure(), std::move(args),
                           std::move(kwargs));
        } else {
          return fail("value of type " + std::string(callee.KindName()) +
                      " is not callable");
        }
        if (!result.ok()) {
          // Prefix the call site for a usable "stack trace".
          return InvalidConfigError(
              StrFormat("%s:%d: in call: %s", chunk.origin.c_str(),
                        chunk.LineAt(op_ip),
                        std::string(result.status().message()).c_str()));
        }
        stack_.push_back(std::move(result).value());
        break;
      }
      case OpCode::kMakeClosure: {
        uint16_t fn_index = chunk.ReadU16(ip);
        ip += 2;
        Closure closure;
        closure.compiled = frame.unit->functions[fn_index].get();
        closure.env = frame.env != nullptr ? frame.env : frame.fallback;
        stack_.push_back(Value::MakeClosure(std::move(closure)));
        break;
      }
      case OpCode::kReturn: {
        Value value = pop();
        stack_.resize(stack_base);
        return value;
      }
      case OpCode::kReturnNull:
        stack_.resize(stack_base);
        return Value::Null();
      case OpCode::kIterPrep: {
        Value iterable = pop();
        auto items = IterableItems(iterable);
        if (!items.ok()) {
          return fail(std::string(items.status().message()));
        }
        stack_.push_back(Value::MakeList(std::move(items).value()));
        stack_.push_back(Value::Int(0));
        break;
      }
      case OpCode::kForLoop: {
        uint32_t end = chunk.ReadU32(ip);
        ip += 4;
        int64_t index = stack_.back().as_int();
        const Value::List& items = stack_[stack_.size() - 2].as_list();
        if (index < static_cast<int64_t>(items.size())) {
          stack_.back() = Value::Int(index + 1);
          stack_.push_back(items[static_cast<size_t>(index)]);
        } else {
          stack_.resize(stack_.size() - 2);
          ip = end;
        }
        break;
      }
      case OpCode::kUnpack: {
        uint16_t n = chunk.ReadU16(ip);
        ip += 2;
        Value item = pop();
        if (!item.is_list() || item.as_list().size() != n) {
          return fail("cannot unpack loop value");
        }
        for (size_t i = n; i > 0; --i) {
          stack_.push_back(item.as_list()[i - 1]);
        }
        break;
      }
      case OpCode::kAssertFail:
        return fail("assertion failed");
      case OpCode::kAssertFailMsg: {
        Value msg = pop();
        return fail(msg.is_string() ? msg.as_string() : msg.ToDebugString());
      }
      case OpCode::kImport: {
        const std::string& callee = chunk.names[chunk.ReadU16(ip)];
        ip += 2;
        Value path = pop();
        if (!path.is_string()) {
          return fail(callee + "() path must be a string");
        }
        RETURN_IF_ERROR(
            DoImport(callee, path.as_string(), "*", frame,
                     chunk.LineAt(op_ip)));
        stack_.push_back(Value::Null());
        break;
      }
      case OpCode::kImportBegin: {
        const std::string& callee = chunk.names[chunk.ReadU16(ip)];
        uint32_t done = chunk.ReadU32(ip + 2);
        ip += 6;
        Value path = pop();
        if (!path.is_string()) {
          return fail(callee + "() path must be a string");
        }
        int line = chunk.LineAt(op_ip);
        if (IsSchemaImportPath(callee, path.as_string())) {
          // Schema imports never evaluate the filter expression.
          RETURN_IF_ERROR(
              DoImport(callee, path.as_string(), "*", frame, line));
          stack_.push_back(Value::Null());
          ip = done;
          break;
        }
        if (!hooks_.import_module) {
          return fail("module imports not available here");
        }
        auto imported = hooks_.import_module(path.as_string());
        if (!imported.ok()) {
          return imported.status();
        }
        pending_imports_.push_back(*imported);
        break;
      }
      case OpCode::kImportApply: {
        Value filter = pop();
        if (!filter.is_string()) {
          return fail("import filter must be a string");
        }
        std::shared_ptr<Environment> imported = pending_imports_.back();
        pending_imports_.pop_back();
        std::shared_ptr<Environment> target =
            frame.env != nullptr ? frame.env : frame.fallback;
        for (const auto& [symbol, value] : imported->vars()) {
          if (filter.as_string() == "*" || filter.as_string() == symbol) {
            target->Define(symbol, value);
          }
        }
        stack_.push_back(Value::Null());
        break;
      }
      case OpCode::kCheckExportName:
        if (!stack_.back().is_string()) {
          return fail("export name must be a string");
        }
        break;
      case OpCode::kExport: {
        bool named = code[ip] != 0;
        ip += 1;
        Value value = pop();
        std::string name;
        if (named) {
          name = pop().as_string();
        }
        if (exports_enabled_ && hooks_.export_config) {
          RETURN_IF_ERROR(hooks_.export_config(name, value));
        }
        stack_.push_back(Value::Null());
        break;
      }
      case OpCode::kRuntimeError:
        return fail(chunk.names[chunk.ReadU16(ip)]);
      case OpCode::kHalt:
        stack_.resize(stack_base);
        return Value::Null();
    }
  }
  stack_.resize(stack_base);
  return Value::Null();
}

}  // namespace configerator
