#include "src/lang/ast_cache.h"

namespace configerator {

Result<std::shared_ptr<Module>> AstCache::GetOrParse(
    const std::string& path, const std::string& content,
    std::vector<LintDiagnostic>* lint_diags) {
  auto it = entries_.find(path);
  if (it != entries_.end() && it->second.content == content) {
    ++hits_;
    const Entry& entry = it->second;
    if (lint_diags != nullptr) {
      lint_diags->insert(lint_diags->end(), entry.parse_diags.begin(),
                         entry.parse_diags.end());
    }
    if (entry.module == nullptr) {
      return entry.error;
    }
    return entry.module;
  }

  ++misses_;
  Entry entry;
  entry.content = content;
  auto parsed = ParseCsl(content, path, &entry.parse_diags);
  if (parsed.ok()) {
    entry.module = *parsed;
  } else {
    entry.error = parsed.status();
  }
  if (lint_diags != nullptr) {
    lint_diags->insert(lint_diags->end(), entry.parse_diags.begin(),
                       entry.parse_diags.end());
  }
  entries_[path] = std::move(entry);
  if (entries_[path].module == nullptr) {
    return entries_[path].error;
  }
  return entries_[path].module;
}

}  // namespace configerator
