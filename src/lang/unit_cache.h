// Content-hash cache for compiled CSL bytecode units and whole-entry
// compile outputs.
//
// Compilation (src/lang/codegen.h) is purely syntactic, so a CompiledUnit is
// a function of its source bytes alone: units are keyed by path and
// invalidated when the content changes (detected by byte comparison against
// the previously seen source; the stored SHA-256 — the same digest the VCS
// substrate uses as the blob object id — is recomputed only then). One cache
// can back many compile sessions (e.g. every entry a Sandcastle run
// recompiles); shared .cinc modules compile once per content version instead
// of once per session. Failed parses/compiles are cached too, like AstCache.
//
// ClosureDigest() extends the per-file key to the whole import closure: a
// digest over the unit's source hash plus, recursively, every statically
// known import edge (CSL modules, Thrift schemas with their `include`s and
// "-cvalidator" companions). Two entry files with equal closure digests
// compile to byte-identical artifacts — CSL is hermetic (no filesystem,
// clock, or randomness; every read goes through the session's reader and
// appears in the closure) — which is what lets incremental pipelines skip
// recompiles when nothing in the closure changed.
//
// FindOutput/StoreOutput realize that skip: the compiler memoizes each
// entry's full validated CompileOutput (or its deterministic failure) under
// its closure digest, so steady-state recompiles of an unchanged entry cost
// one digest walk instead of an evaluation. Entries whose closure is not
// statically digestible (computed import paths) are never memoized. The
// walk itself memoizes per-node subtree digests (DigestNode): when every
// source in a subtree byte-matches the previous walk, the stored digest is
// returned without recomputing any SHA-256 — steady state reads and
// compares bytes, nothing more.
//
// Not thread-safe; scope one cache per run, like AstCache.

#ifndef SRC_LANG_UNIT_CACHE_H_
#define SRC_LANG_UNIT_CACHE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/bytecode.h"
#include "src/lang/compiler.h"
#include "src/util/sha256.h"
#include "src/util/status.h"

namespace configerator {

class CompiledUnitCache {
 public:
  // A memoized whole-entry result: either a successful output or the
  // deterministic error the entry's evaluation produced.
  struct MemoizedOutput {
    Status status = OkStatus();
    CompileOutput output;  // Meaningful only when status.ok().
  };

  // Parses and compiles (path, content), reusing the previous unit when the
  // content is byte-identical. The returned unit has `source_hash` filled
  // in. Units are immutable and shared: callers that execute one must keep
  // the shared_ptr alive as long as any value produced from it (closures
  // point into the unit's chunks).
  Result<std::shared_ptr<const CompiledUnit>> GetOrCompile(
      const std::string& path, const std::string& content);

  // SHA-256 of (path, content), re-hashed only when `content` differs from
  // the last call for this path. Non-CSL closure members (Thrift schemas)
  // are keyed through here so repeated digest walks don't re-hash them.
  const Sha256Digest& HashSource(const std::string& path,
                                 const std::string& content);

  // The whole-entry memo, keyed by ClosureDigest(). FindOutput counts an
  // output hit or miss; the returned pointer is owned by the cache and
  // invalidated by the next StoreOutput. StoreOutput overwrites.
  const MemoizedOutput* FindOutput(const Sha256Digest& closure_digest);
  void StoreOutput(const Sha256Digest& closure_digest, MemoizedOutput result);

  // One memoized node of the closure-digest tree, internal to
  // ClosureDigest(). Holds the exact source bytes and child digests that
  // produced `digest`, so a steady-state walk re-reads and byte-compares
  // every file in the closure but hashes nothing.
  struct DigestNode {
    struct Child {
      std::string path;
      bool is_schema = false;
      Sha256Digest digest;
    };
    std::string source;          // Byte-compared on every walk.
    bool has_validator = false;  // Schema nodes: companion file existed.
    std::vector<Child> children;
    Sha256Digest digest;
  };

  // Per-node digest memo, keyed by kind-prefixed path ("m:" module,
  // "s:" schema). Internal to ClosureDigest().
  std::map<std::string, DigestNode>& digest_nodes() { return digest_nodes_; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t output_hits() const { return output_hits_; }
  size_t output_misses() const { return output_misses_; }

 private:
  struct Entry {
    std::string source;  // Byte-compared on lookup before any hashing.
    Sha256Digest source_hash;
    std::shared_ptr<const CompiledUnit> unit;  // Null when compile failed.
    Status error = OkStatus();
  };
  struct HashedSource {
    std::string source;
    Sha256Digest hash;
  };

  std::map<std::string, Entry> entries_;
  std::map<std::string, HashedSource> source_hashes_;
  std::map<Sha256Digest, MemoizedOutput> outputs_;
  std::map<std::string, DigestNode> digest_nodes_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t output_hits_ = 0;
  size_t output_misses_ = 0;
};

// Reads source files by path (same contract as the compiler's FileReader).
using SourceReader = std::function<Result<std::string>(const std::string&)>;

// Digest of `path`'s whole static import closure: its own source hash plus,
// recursively, the digest of every module it imports, every schema it loads
// (including the schema's `include "..."` files and its "-cvalidator"
// companion module, when present). Cycles contribute a marker instead of
// recursing. Fails if any module in the closure has a computed import path
// or filter — such a closure is only knowable by evaluating.
Result<Sha256Digest> ClosureDigest(const std::string& path,
                                   const SourceReader& reader,
                                   CompiledUnitCache* cache);

}  // namespace configerator

#endif  // SRC_LANG_UNIT_CACHE_H_
