#include "src/lang/compiler.h"

#include <chrono>
#include <cstring>
#include <set>

#include "src/lang/builtins.h"
#include "src/lang/unit_cache.h"
#include "src/lang/vm.h"
#include "src/obs/metrics.h"
#include "src/schema/typecheck.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

#define RETURN_IF_ERROR_R(expr)              \
  do {                                       \
    ::configerator::Status _s = (expr);      \
    if (!_s.ok()) {                          \
      return _s;                             \
    }                                        \
  } while (false)

}  // namespace

// One hermetic compilation of one entry file.
class ConfigCompiler::Session {
 public:
  Session(FileReader reader, std::string entry_path, CompilerOptions options,
          CompiledUnitCache* unit_cache)
      : reader_(std::move(reader)),
        entry_path_(std::move(entry_path)),
        options_(options),
        unit_cache_(unit_cache) {
    Interp::Hooks hooks;
    hooks.import_module = [this](const std::string& path) {
      return ImportModule(path);
    };
    hooks.import_schema = [this](const std::string& path) {
      return ImportSchema(path);
    };
    hooks.export_config = [this](const std::string& name, const Value& value) {
      return ExportConfig(name, value);
    };
    if (options_.engine == CompilerOptions::Engine::kInterpreter) {
      interp_ = std::make_unique<Interp>(&registry_, std::move(hooks));
    } else {
      vm_ = std::make_unique<Vm>(&registry_, std::move(hooks));
    }
  }

  Result<CompileOutput> Run() {
    ASSIGN_OR_RETURN(std::string source, ReadDep(entry_path_));
    auto globals = NewGlobals();
    RETURN_IF_ERROR_R(
        EvalSource(entry_path_, source, globals, /*exports_enabled=*/true));

    // Post-process exports: type check, defaults, validators.
    CompileOutput output;
    for (auto& [path, value] : exports_) {
      CompiledConfig config;
      config.path = path;
      config.type_name = value.type_name();
      ASSIGN_OR_RETURN(Json json, value.ToJson());
      if (!config.type_name.empty() &&
          !config.type_name.starts_with("enum ")) {
        RETURN_IF_ERROR_R(
            TypeCheckStruct(registry_, config.type_name, json, config.path));
        ASSIGN_OR_RETURN(json, ApplyDefaults(registry_, config.type_name, json));
        // Re-check with defaults applied so validators see complete configs.
        RETURN_IF_ERROR_R(
            TypeCheckStruct(registry_, config.type_name, json, config.path));
        RETURN_IF_ERROR_R(RunValidators(config.type_name, json));
      }
      config.content = std::move(json);
      output.configs.push_back(std::move(config));
    }
    if (output.configs.empty()) {
      return InvalidConfigError(entry_path_ + ": compiled without exporting any config");
    }
    output.dependencies.assign(dependencies_.begin(), dependencies_.end());
    return output;
  }

 private:
  Result<std::string> ReadDep(const std::string& path) {
    dependencies_.insert(path);
    return reader_(path);
  }

  std::shared_ptr<Environment> NewGlobals() {
    if (interp_ != nullptr) {
      return interp_->NewEnvironment(interp_->MakeBaseEnvironment());
    }
    return vm_->NewEnvironment(vm_->MakeBaseEnvironment());
  }

  // Evaluates one module source with the session's engine. For the VM this
  // is where the content-hash cache and the compile/execute split are
  // observable; the tree-walking interpreter parses and walks in one go.
  Status EvalSource(const std::string& path, const std::string& source,
                    const std::shared_ptr<Environment>& globals,
                    bool exports_enabled) {
    if (interp_ != nullptr) {
      auto module = ParseCsl(source, path);
      if (!module.ok()) {
        return module.status();
      }
      modules_alive_.push_back(*module);
      return interp_->EvalModule(**module, globals, exports_enabled);
    }

    MetricsRegistry* metrics = options_.metrics;
    size_t hits_before = unit_cache_->hits();
    size_t misses_before = unit_cache_->misses();
    auto compile_start = std::chrono::steady_clock::now();
    auto unit = unit_cache_->GetOrCompile(path, source);
    auto compile_end = std::chrono::steady_clock::now();
    if (metrics != nullptr) {
      metrics->GetCounter("csl.unit_cache.hits")
          ->Inc(unit_cache_->hits() - hits_before);
      metrics->GetCounter("csl.unit_cache.misses")
          ->Inc(unit_cache_->misses() - misses_before);
      metrics->GetHistogram("csl.compile_micros")
          ->Record(std::chrono::duration<double, std::micro>(compile_end -
                                                             compile_start)
                       .count());
    }
    if (!unit.ok()) {
      return unit.status();
    }
    // Closures point into the unit's chunks; keep it alive past the cache.
    units_alive_.push_back(*unit);
    Status status = vm_->EvalUnit(**unit, globals, exports_enabled);
    if (metrics != nullptr) {
      metrics->GetHistogram("csl.execute_micros")
          ->Record(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - compile_end)
                       .count());
    }
    return status;
  }

  Result<Value> CallFn(const Value& fn, std::vector<Value> args,
                       std::map<std::string, Value> kwargs) {
    if (interp_ != nullptr) {
      return interp_->CallValue(fn, std::move(args), std::move(kwargs));
    }
    return vm_->CallValue(fn, std::move(args), std::move(kwargs));
  }

  Result<std::shared_ptr<Environment>> ImportModule(const std::string& path) {
    auto cached = module_envs_.find(path);
    if (cached != module_envs_.end()) {
      if (cached->second == nullptr) {
        return InvalidConfigError("import cycle through '" + path + "'");
      }
      return cached->second;
    }
    module_envs_[path] = nullptr;  // Cycle marker.
    ASSIGN_OR_RETURN(std::string source, ReadDep(path));
    auto globals = NewGlobals();
    RETURN_IF_ERROR_R(
        EvalSource(path, source, globals, /*exports_enabled=*/false));
    module_envs_[path] = globals;
    return globals;
  }

  Status ImportSchema(const std::string& path) {
    if (loaded_schemas_.count(path) > 0) {
      return OkStatus();
    }
    loaded_schemas_.insert(path);
    auto source = ReadDep(path);
    if (!source.ok()) {
      return source.status();
    }
    auto include_resolver = [this](const std::string& inc) -> Result<std::string> {
      return ReadDep(inc);
    };
    RETURN_IF_ERROR(
        registry_.ParseAndRegister(*source, path, include_resolver));
    RETURN_IF_ERROR(registry_.ResolveAll());
    // Load the companion validator module if one exists. Missing validators
    // are fine; anything else (e.g. a validator that fails to parse) is not.
    std::string validator_path = path + "-cvalidator";
    auto validator_source = reader_(validator_path);
    if (validator_source.ok()) {
      dependencies_.insert(validator_path);
      auto globals = NewGlobals();
      RETURN_IF_ERROR(EvalSource(validator_path, *validator_source, globals,
                                 /*exports_enabled=*/false));
      for (const auto& [name, value] : globals->vars()) {
        if (name.starts_with("validate_") && value.is_callable()) {
          validators_[name.substr(strlen("validate_"))].push_back(value);
        }
      }
    } else if (validator_source.status().code() != StatusCode::kNotFound) {
      return validator_source.status();
    }
    return OkStatus();
  }

  Status ExportConfig(const std::string& name, const Value& value) {
    std::string path =
        name.empty() ? ConfigCompiler::OutputPathFor(entry_path_) : name;
    if (exports_.count(path) > 0) {
      return InvalidConfigError("config '" + path + "' exported twice");
    }
    exports_.emplace(path, value);
    export_order_.push_back(path);
    return OkStatus();
  }

  Status RunValidators(const std::string& type_name, const Json& json) {
    auto it = validators_.find(type_name);
    if (it == validators_.end()) {
      return OkStatus();
    }
    Value cfg = Value::FromJson(json);
    cfg.set_type_name(type_name);
    for (const Value& validator : it->second) {
      auto result = CallFn(validator, {cfg}, {});
      if (!result.ok()) {
        return InvalidConfigError(
            StrFormat("validator for %s rejected config: %s", type_name.c_str(),
                      result.status().message().c_str()));
      }
      // A validator may also return False to reject.
      if (result->is_bool() && !result->as_bool()) {
        return InvalidConfigError("validator for " + type_name +
                                  " returned False");
      }
    }
    return OkStatus();
  }

  FileReader reader_;
  std::string entry_path_;
  CompilerOptions options_;
  CompiledUnitCache* unit_cache_;
  SchemaRegistry registry_;
  // Exactly one engine is live per session, chosen by options_.engine.
  std::unique_ptr<Interp> interp_;
  std::unique_ptr<Vm> vm_;
  std::vector<std::shared_ptr<const CompiledUnit>> units_alive_;
  std::map<std::string, std::shared_ptr<Environment>> module_envs_;
  std::set<std::string> loaded_schemas_;
  std::set<std::string> dependencies_;
  std::map<std::string, Value> exports_;
  std::vector<std::string> export_order_;
  std::map<std::string, std::vector<Value>> validators_;
  std::vector<std::shared_ptr<Module>> modules_alive_;
};

ConfigCompiler::ConfigCompiler(FileReader reader)
    : ConfigCompiler(std::move(reader), CompilerOptions{}) {}

ConfigCompiler::ConfigCompiler(FileReader reader, CompilerOptions options)
    : reader_(std::move(reader)), options_(options) {
  if (options_.engine == CompilerOptions::Engine::kBytecodeVm &&
      options_.unit_cache == nullptr) {
    owned_unit_cache_ = std::make_unique<CompiledUnitCache>();
    options_.unit_cache = owned_unit_cache_.get();
  }
}

ConfigCompiler::~ConfigCompiler() = default;

Result<CompileOutput> ConfigCompiler::Compile(const std::string& entry_path) {
  CompiledUnitCache* cache = options_.unit_cache;
  if (options_.engine == CompilerOptions::Engine::kBytecodeVm &&
      options_.memoize_outputs && cache != nullptr) {
    // Digest-first: walk the entry's static import closure (re-reading every
    // source, so edits always take effect) and replay the memoized output if
    // this exact closure has compiled before. CSL is hermetic, so the output
    // is a pure function of the closure's bytes.
    MetricsRegistry* metrics = options_.metrics;
    size_t hits_before = cache->hits();
    size_t misses_before = cache->misses();
    auto digest = ClosureDigest(entry_path, reader_, cache);
    if (metrics != nullptr) {
      metrics->GetCounter("csl.unit_cache.hits")
          ->Inc(cache->hits() - hits_before);
      metrics->GetCounter("csl.unit_cache.misses")
          ->Inc(cache->misses() - misses_before);
    }
    if (digest.ok()) {
      if (const CompiledUnitCache::MemoizedOutput* memo =
              cache->FindOutput(*digest)) {
        if (metrics != nullptr) {
          metrics->GetCounter("csl.output_cache.hits")->Inc();
        }
        if (!memo->status.ok()) {
          return memo->status;
        }
        return memo->output;
      }
      if (metrics != nullptr) {
        metrics->GetCounter("csl.output_cache.misses")->Inc();
      }
      Session session(reader_, entry_path, options_, cache);
      auto output = session.Run();
      CompiledUnitCache::MemoizedOutput memo;
      if (output.ok()) {
        memo.output = *output;
      } else {
        memo.status = output.status();
      }
      cache->StoreOutput(*digest, std::move(memo));
      return output;
    }
    // The closure is not statically digestible (a computed import path) or a
    // file in it is unreadable: fall through to a full evaluation, which
    // produces the right output or error. Such entries are never memoized.
  }
  Session session(reader_, entry_path, options_, options_.unit_cache);
  return session.Run();
}

std::string ConfigCompiler::OutputPathFor(const std::string& source_path) {
  auto dot = source_path.rfind('.');
  auto slash = source_path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return source_path + ".json";
  }
  return source_path.substr(0, dot) + ".json";
}

#undef RETURN_IF_ERROR_R

}  // namespace configerator
