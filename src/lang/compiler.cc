#include "src/lang/compiler.h"

#include <cstring>
#include <set>

#include "src/lang/builtins.h"
#include "src/schema/typecheck.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

#define RETURN_IF_ERROR_R(expr)              \
  do {                                       \
    ::configerator::Status _s = (expr);      \
    if (!_s.ok()) {                          \
      return _s;                             \
    }                                        \
  } while (false)

}  // namespace

// One hermetic compilation of one entry file.
class ConfigCompiler::Session {
 public:
  Session(FileReader reader, std::string entry_path)
      : reader_(std::move(reader)), entry_path_(std::move(entry_path)) {
    Interp::Hooks hooks;
    hooks.import_module = [this](const std::string& path) {
      return ImportModule(path);
    };
    hooks.import_schema = [this](const std::string& path) {
      return ImportSchema(path);
    };
    hooks.export_config = [this](const std::string& name, const Value& value) {
      return ExportConfig(name, value);
    };
    interp_ = std::make_unique<Interp>(&registry_, std::move(hooks));
  }

  Result<CompileOutput> Run() {
    ASSIGN_OR_RETURN(std::string source, ReadDep(entry_path_));
    ASSIGN_OR_RETURN(std::shared_ptr<Module> module, ParseCsl(source, entry_path_));
    modules_alive_.push_back(module);
    auto globals = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
    RETURN_IF_ERROR_R(
        interp_->EvalModule(*module, globals, /*exports_enabled=*/true));

    // Post-process exports: type check, defaults, validators.
    CompileOutput output;
    for (auto& [path, value] : exports_) {
      CompiledConfig config;
      config.path = path;
      config.type_name = value.type_name();
      ASSIGN_OR_RETURN(Json json, value.ToJson());
      if (!config.type_name.empty() &&
          !config.type_name.starts_with("enum ")) {
        RETURN_IF_ERROR_R(
            TypeCheckStruct(registry_, config.type_name, json, config.path));
        ASSIGN_OR_RETURN(json, ApplyDefaults(registry_, config.type_name, json));
        // Re-check with defaults applied so validators see complete configs.
        RETURN_IF_ERROR_R(
            TypeCheckStruct(registry_, config.type_name, json, config.path));
        RETURN_IF_ERROR_R(RunValidators(config.type_name, json));
      }
      config.content = std::move(json);
      output.configs.push_back(std::move(config));
    }
    if (output.configs.empty()) {
      return InvalidConfigError(entry_path_ + ": compiled without exporting any config");
    }
    output.dependencies.assign(dependencies_.begin(), dependencies_.end());
    return output;
  }

 private:
  Result<std::string> ReadDep(const std::string& path) {
    dependencies_.insert(path);
    return reader_(path);
  }

  Result<std::shared_ptr<Environment>> ImportModule(const std::string& path) {
    auto cached = module_envs_.find(path);
    if (cached != module_envs_.end()) {
      if (cached->second == nullptr) {
        return InvalidConfigError("import cycle through '" + path + "'");
      }
      return cached->second;
    }
    module_envs_[path] = nullptr;  // Cycle marker.
    ASSIGN_OR_RETURN(std::string source, ReadDep(path));
    ASSIGN_OR_RETURN(std::shared_ptr<Module> module, ParseCsl(source, path));
    modules_alive_.push_back(module);
    auto globals = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
    RETURN_IF_ERROR_R(
        interp_->EvalModule(*module, globals, /*exports_enabled=*/false));
    module_envs_[path] = globals;
    return globals;
  }

  Status ImportSchema(const std::string& path) {
    if (loaded_schemas_.count(path) > 0) {
      return OkStatus();
    }
    loaded_schemas_.insert(path);
    auto source = ReadDep(path);
    if (!source.ok()) {
      return source.status();
    }
    auto include_resolver = [this](const std::string& inc) -> Result<std::string> {
      return ReadDep(inc);
    };
    RETURN_IF_ERROR(
        registry_.ParseAndRegister(*source, path, include_resolver));
    RETURN_IF_ERROR(registry_.ResolveAll());
    // Load the companion validator module if one exists. Missing validators
    // are fine; anything else (e.g. a validator that fails to parse) is not.
    std::string validator_path = path + "-cvalidator";
    auto validator_source = reader_(validator_path);
    if (validator_source.ok()) {
      dependencies_.insert(validator_path);
      ASSIGN_OR_RETURN(std::shared_ptr<Module> module,
                       ParseCsl(*validator_source, validator_path));
      modules_alive_.push_back(module);
      auto globals = interp_->NewEnvironment(interp_->MakeBaseEnvironment());
      RETURN_IF_ERROR(
          interp_->EvalModule(*module, globals, /*exports_enabled=*/false));
      for (const auto& [name, value] : globals->vars()) {
        if (name.starts_with("validate_") && value.is_callable()) {
          validators_[name.substr(strlen("validate_"))].push_back(value);
        }
      }
    } else if (validator_source.status().code() != StatusCode::kNotFound) {
      return validator_source.status();
    }
    return OkStatus();
  }

  Status ExportConfig(const std::string& name, const Value& value) {
    std::string path =
        name.empty() ? ConfigCompiler::OutputPathFor(entry_path_) : name;
    if (exports_.count(path) > 0) {
      return InvalidConfigError("config '" + path + "' exported twice");
    }
    exports_.emplace(path, value);
    export_order_.push_back(path);
    return OkStatus();
  }

  Status RunValidators(const std::string& type_name, const Json& json) {
    auto it = validators_.find(type_name);
    if (it == validators_.end()) {
      return OkStatus();
    }
    Value cfg = Value::FromJson(json);
    cfg.set_type_name(type_name);
    for (const Value& validator : it->second) {
      auto result = interp_->CallValue(validator, {cfg}, {});
      if (!result.ok()) {
        return InvalidConfigError(
            StrFormat("validator for %s rejected config: %s", type_name.c_str(),
                      result.status().message().c_str()));
      }
      // A validator may also return False to reject.
      if (result->is_bool() && !result->as_bool()) {
        return InvalidConfigError("validator for " + type_name +
                                  " returned False");
      }
    }
    return OkStatus();
  }

  FileReader reader_;
  std::string entry_path_;
  SchemaRegistry registry_;
  std::unique_ptr<Interp> interp_;
  std::map<std::string, std::shared_ptr<Environment>> module_envs_;
  std::set<std::string> loaded_schemas_;
  std::set<std::string> dependencies_;
  std::map<std::string, Value> exports_;
  std::vector<std::string> export_order_;
  std::map<std::string, std::vector<Value>> validators_;
  std::vector<std::shared_ptr<Module>> modules_alive_;
};

ConfigCompiler::ConfigCompiler(FileReader reader) : reader_(std::move(reader)) {}

Result<CompileOutput> ConfigCompiler::Compile(const std::string& entry_path) {
  Session session(reader_, entry_path);
  return session.Run();
}

std::string ConfigCompiler::OutputPathFor(const std::string& source_path) {
  auto dot = source_path.rfind('.');
  auto slash = source_path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return source_path + ".json";
  }
  return source_path.substr(0, dot) + ".json";
}

#undef RETURN_IF_ERROR_R

}  // namespace configerator
