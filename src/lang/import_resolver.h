// Shared classification of CSL import calls. The interpreter (build), the
// linter (L001/L004) and the abstract interpreter (T-rules, symbol slices)
// must all agree on what an `import_python()` / `import_thrift()` call
// targets — a divergence means lint diagnostics that contradict build
// behavior. This helper is the single source of truth for:
//   * which calls are imports at all,
//   * module-vs-schema dispatch (`import_thrift`, or a ".thrift" path given
//     to `import_python`, loads schemas; everything else loads a module),
//   * the filter argument ("*" = star import, otherwise one symbol),
//   * when a target is statically unresolvable (non-literal path/filter).

#ifndef SRC_LANG_IMPORT_RESOLVER_H_
#define SRC_LANG_IMPORT_RESOLVER_H_

#include <string>

#include "src/lang/ast.h"

namespace configerator {

struct ImportTarget {
  enum class Kind {
    kModule,   // import_python of a CSL module: path + filter are literal.
    kSchema,   // import_thrift (or a ".thrift" path): loads schema structs.
    kDynamic,  // Path or filter is a computed expression; only the
               // interpreter, which evaluates it, can resolve this.
  };

  Kind kind = Kind::kDynamic;
  std::string path;          // Literal path (kModule / kSchema).
  std::string filter = "*";  // "*" or one symbol name (kModule only).
  int line = 0;
};

// True if `expr` is a call to import_python or import_thrift.
bool IsImportCall(const Expr& expr);

// Does a path given to an import resolve to a schema file? Shared by the
// interpreter (which sees evaluated paths) and the static analyzers.
bool IsSchemaImportPath(const std::string& callee_name, const std::string& path);

// Statically classifies an import call. Precondition: IsImportCall(call).
ImportTarget ClassifyImport(const Expr& call);

}  // namespace configerator

#endif  // SRC_LANG_IMPORT_RESOLVER_H_
