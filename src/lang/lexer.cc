#include "src/lang/lexer.h"

#include <cctype>

#include "src/util/strings.h"

namespace configerator {

namespace {

// Multi-char operators first so maximal munch works.
constexpr std::string_view kOperators[] = {
    "==", "!=", "<=", ">=", "//", "**", "+=", "-=", "*=", "/=",
    "(",  ")",  "[",  "]",  "{",  "}",  ",",  ":",  ".",  "=",
    "+",  "-",  "*",  "/",  "%",  "<",  ">",
};

class Tokenizer {
 public:
  Tokenizer(std::string_view source, std::string origin)
      : src_(source), origin_(std::move(origin)) {
    indent_stack_.push_back(0);
  }

  Result<std::vector<CslToken>> Run() {
    while (pos_ < src_.size()) {
      if (at_line_start_ && paren_depth_ == 0) {
        RETURN_IF_ERROR(HandleIndentation());
        if (pos_ >= src_.size()) {
          break;
        }
      }
      char c = src_[pos_];
      if (c == '\n') {
        ++pos_;
        ++line_;
        if (paren_depth_ == 0 && !tokens_.empty() &&
            tokens_.back().kind != CslToken::Kind::kNewline &&
            tokens_.back().kind != CslToken::Kind::kIndent &&
            tokens_.back().kind != CslToken::Kind::kDedent) {
          Emit(CslToken::Kind::kNewline, "\n");
        }
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        // Explicit line continuation.
        pos_ += 2;
        ++line_;
        continue;
      }
      at_line_start_ = false;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexName();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        RETURN_IF_ERROR(LexNumber());
        continue;
      }
      if (c == '"' || c == '\'') {
        RETURN_IF_ERROR(LexString());
        continue;
      }
      if (!LexOperator()) {
        return Error(StrFormat("unexpected character '%c'", c));
      }
    }
    // Close the final logical line and any open indents.
    if (!tokens_.empty() && tokens_.back().kind != CslToken::Kind::kNewline &&
        tokens_.back().kind != CslToken::Kind::kDedent) {
      Emit(CslToken::Kind::kNewline, "\n");
    }
    while (indent_stack_.back() > 0) {
      indent_stack_.pop_back();
      Emit(CslToken::Kind::kDedent, "");
    }
    Emit(CslToken::Kind::kEof, "");
    return std::move(tokens_);
  }

 private:
  Status Error(const std::string& msg) const {
    return InvalidArgumentError(
        StrFormat("%s:%d: %s", origin_.c_str(), line_, msg.c_str()));
  }

  void Emit(CslToken::Kind kind, std::string text) {
    tokens_.push_back(CslToken{kind, std::move(text), line_});
  }

  Status HandleIndentation() {
    // Measure leading whitespace of the next non-blank, non-comment line.
    while (pos_ < src_.size()) {
      size_t line_start = pos_;
      int width = 0;
      while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) {
        width += src_[pos_] == '\t' ? 8 - (width % 8) : 1;
        ++pos_;
      }
      if (pos_ < src_.size() && (src_[pos_] == '\n' || src_[pos_] == '#' ||
                                 src_[pos_] == '\r')) {
        // Blank or comment-only line: consume and keep scanning.
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          ++pos_;
        }
        if (pos_ < src_.size()) {
          ++pos_;
          ++line_;
        }
        continue;
      }
      if (pos_ >= src_.size()) {
        return OkStatus();
      }
      (void)line_start;
      if (width > indent_stack_.back()) {
        indent_stack_.push_back(width);
        Emit(CslToken::Kind::kIndent, "");
      } else {
        while (width < indent_stack_.back()) {
          indent_stack_.pop_back();
          Emit(CslToken::Kind::kDedent, "");
        }
        if (width != indent_stack_.back()) {
          return Error("inconsistent indentation");
        }
      }
      at_line_start_ = false;
      return OkStatus();
    }
    return OkStatus();
  }

  void LexName() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      ++pos_;
    }
    Emit(CslToken::Kind::kName, std::string(src_.substr(start, pos_ - start)));
  }

  Status LexNumber() {
    size_t start = pos_;
    bool is_float = false;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else if (c == '.' && pos_ + 1 < src_.size() &&
                 std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
        is_float = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ + 1 < src_.size() &&
                 (std::isdigit(static_cast<unsigned char>(src_[pos_ + 1])) ||
                  src_[pos_ + 1] == '-' || src_[pos_ + 1] == '+')) {
        is_float = true;
        pos_ += 2;
      } else {
        break;
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    std::erase(text, '_');
    Emit(is_float ? CslToken::Kind::kFloat : CslToken::Kind::kInt, std::move(text));
    return OkStatus();
  }

  Status LexString() {
    char quote = src_[pos_++];
    // Triple-quoted strings.
    bool triple = false;
    if (pos_ + 1 < src_.size() && src_[pos_] == quote && src_[pos_ + 1] == quote) {
      triple = true;
      pos_ += 2;
    }
    std::string value;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (!triple && c == '\n') {
        return Error("newline in string literal");
      }
      if (c == quote) {
        if (!triple) {
          ++pos_;
          Emit(CslToken::Kind::kString, std::move(value));
          return OkStatus();
        }
        if (pos_ + 2 < src_.size() && src_[pos_ + 1] == quote &&
            src_[pos_ + 2] == quote) {
          pos_ += 3;
          Emit(CslToken::Kind::kString, std::move(value));
          return OkStatus();
        }
        value.push_back(c);
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size()) {
        char esc = src_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case 'n':
            value.push_back('\n');
            break;
          case 't':
            value.push_back('\t');
            break;
          case 'r':
            value.push_back('\r');
            break;
          case '\\':
            value.push_back('\\');
            break;
          case '\'':
            value.push_back('\'');
            break;
          case '"':
            value.push_back('"');
            break;
          case '\n':
            ++line_;
            break;  // Escaped newline: joined.
          default:
            value.push_back('\\');
            value.push_back(esc);
        }
        continue;
      }
      if (c == '\n') {
        ++line_;
      }
      value.push_back(c);
      ++pos_;
    }
    return Error("unterminated string literal");
  }

  bool LexOperator() {
    for (std::string_view op : kOperators) {
      if (src_.substr(pos_, op.size()) == op) {
        if (op == "(" || op == "[" || op == "{") {
          ++paren_depth_;
        } else if (op == ")" || op == "]" || op == "}") {
          if (paren_depth_ > 0) {
            --paren_depth_;
          }
        }
        Emit(CslToken::Kind::kOp, std::string(op));
        pos_ += op.size();
        return true;
      }
    }
    return false;
  }

  std::string_view src_;
  std::string origin_;
  size_t pos_ = 0;
  int line_ = 1;
  int paren_depth_ = 0;
  bool at_line_start_ = true;
  std::vector<int> indent_stack_;
  std::vector<CslToken> tokens_;
};

}  // namespace

Result<std::vector<CslToken>> TokenizeCsl(std::string_view source,
                                          const std::string& origin) {
  return Tokenizer(source, origin).Run();
}

}  // namespace configerator
