// AST for the config source language.

#ifndef SRC_LANG_AST_H_
#define SRC_LANG_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/lang/value.h"

namespace configerator {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Expr {
  enum class Kind {
    kLiteral,  // literal (int/float/string/bool/None)
    kName,     // identifier
    kList,     // [a, b, c]
    kDict,     // {"k": v}
    kBinary,   // a OP b (op in `name`)
    kUnary,    // OP a   (op in `name`: "-", "not")
    kTernary,  // a if cond else b   (lhs=a, cond in rhs, third=b)
    kCall,     // callee(args..., kw=...)  (lhs=callee)
    kAttr,     // base.attr  (lhs=base, name=attr)
    kIndex,    // base[key]  (lhs=base, rhs=key)
  };

  Kind kind;
  int line = 0;

  Value literal;                 // kLiteral
  std::string name;              // kName / kAttr / op spelling
  std::vector<ExprPtr> items;    // list elements / call positional args
  std::vector<std::pair<ExprPtr, ExprPtr>> pairs;  // dict entries
  std::vector<std::pair<std::string, ExprPtr>> kwargs;  // call keyword args
  ExprPtr lhs;
  ExprPtr rhs;
  ExprPtr third;
};

// A function definition. Closures hold stable pointers to these, so modules
// owning them must outlive all values produced by evaluation (the compiler
// session guarantees this by caching modules for its lifetime).
struct FunctionDefStmt {
  std::string name;
  std::vector<std::string> params;
  std::vector<ExprPtr> defaults;  // Parallel to params; null = no default.
  std::vector<StmtPtr> body;
  int line = 0;
  // Path of the module that defines the function. Runtime errors inside the
  // body are reported against this origin, not the caller's module — a
  // cross-module call must point at the failing line where it actually
  // lives.
  std::string origin;
};

struct Stmt {
  enum class Kind {
    kExpr,      // bare expression (e.g. a call)
    kAssign,    // target = value
    kAugAssign, // target op= value (op in `op`)
    kIf,        // cond/body/orelse (elif chains nest in orelse)
    kFor,       // for loop_vars in value: body
    kWhile,     // while cond: body
    kDef,       // function definition
    kReturn,
    kAssert,    // assert cond[, message]
    kPass,
    kBreak,
    kContinue,
  };

  Kind kind;
  int line = 0;

  ExprPtr target;  // kAssign/kAugAssign target; kExpr/kReturn/kAssert condition
  ExprPtr value;   // assigned value / for iterable / assert message
  std::string op;  // kAugAssign operator ("+", "-", ...)
  std::vector<std::string> loop_vars;  // kFor targets (1 = plain, 2+ = unpack)
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> orelse;
  std::unique_ptr<FunctionDefStmt> def;  // kDef
};

// A parsed source file.
struct Module {
  std::string path;
  std::vector<StmtPtr> body;
};

// Parses tokenized source into a module. `origin` labels error messages.
// If `lint_diags` is given, non-fatal findings detectable during parsing
// (duplicate constant keys in dict literals — evaluation is last-write-wins)
// are appended to it instead of failing the parse; ConfigLint surfaces them.
Result<std::shared_ptr<Module>> ParseCsl(std::string_view source,
                                         const std::string& origin,
                                         std::vector<LintDiagnostic>* lint_diags = nullptr);

}  // namespace configerator

#endif  // SRC_LANG_AST_H_
