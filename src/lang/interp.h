// Tree-walking evaluator for the config source language.
//
// The interpreter is sandboxed on purpose: no filesystem, no network, no
// clock — config programs are pure functions from source (plus imported
// modules) to exported JSON, which is what makes compiled configs
// reproducible and reviewable. Imports and exports are delegated to hooks
// supplied by the compiler, and a step limit bounds runaway config code.

#ifndef SRC_LANG_INTERP_H_
#define SRC_LANG_INTERP_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/value.h"
#include "src/schema/schema.h"
#include "src/util/status.h"

namespace configerator {

// Lexical scope. Lookup walks the parent chain; assignment writes the
// innermost scope (Python-like).
//
// Lifetime: closures capture their defining environment by shared_ptr, and
// the environment holds the closure value — a reference cycle. The Interp
// therefore registers every environment it hands out and clears them all on
// destruction, breaking the cycles (a session-scoped arena, matching how
// compile sessions and sitevar stores own their interpreter).
class Environment {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  // Finds a binding anywhere in the chain; nullptr if absent.
  Value* Find(const std::string& name);

  // Defines or overwrites in this scope.
  void Define(const std::string& name, Value value) {
    vars_[name] = std::move(value);
  }

  const std::map<std::string, Value>& vars() const { return vars_; }

  // Drops all bindings and the parent link (cycle breaking at session end).
  void Clear() {
    vars_.clear();
    parent_.reset();
  }

 private:
  std::map<std::string, Value> vars_;
  std::shared_ptr<Environment> parent_;
};

class Interp {
 public:
  struct Hooks {
    // Resolves `import_python(path, ...)`: evaluates (or returns cached)
    // module globals.
    std::function<Result<std::shared_ptr<Environment>>(const std::string& path)>
        import_module;
    // Resolves `import_thrift(path)`: loads schemas into the registry.
    std::function<Status(const std::string& path)> import_schema;
    // Receives `export_if_last(value)` / `export(name, value)` calls.
    // `name` is empty for export_if_last (compiler names it after the file).
    std::function<Status(const std::string& name, const Value& value)>
        export_config;
  };

  Interp(const SchemaRegistry* registry, Hooks hooks);
  ~Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // Creates an environment owned by this interpreter session. All module
  // globals and call frames must come from here so closure/environment
  // reference cycles are reclaimed when the session ends.
  std::shared_ptr<Environment> NewEnvironment(
      std::shared_ptr<Environment> parent = nullptr);

  // Evaluates a module body in `globals`. `exports_enabled` is true only for
  // the entry file — imported library modules calling export_if_last() are
  // no-ops, matching the paper's semantics ("export if last").
  Status EvalModule(const Module& module, const std::shared_ptr<Environment>& globals,
                    bool exports_enabled);

  // Calls a function value with evaluated arguments. Used by the compiler to
  // invoke validators.
  Result<Value> CallValue(const Value& fn, std::vector<Value> args,
                          std::map<std::string, Value> kwargs);

  // Environment pre-populated with builtins, schema constructors and enum
  // namespaces. New globals should chain from this.
  std::shared_ptr<Environment> MakeBaseEnvironment();

  // Total evaluation steps allowed per EvalModule (default 20M).
  void set_step_limit(uint64_t limit) { step_limit_ = limit; }

  const SchemaRegistry* registry() const { return registry_; }

 private:
  struct Flow {
    enum class Kind { kNormal, kBreak, kContinue, kReturn };
    Kind kind = Kind::kNormal;
    Value value;
  };

  Status Tick(int line);
  Status EvalError(int line, const std::string& msg) const;

  Result<Flow> ExecBlock(const std::vector<StmtPtr>& body,
                         const std::shared_ptr<Environment>& env);
  Result<Flow> ExecStmt(const Stmt& stmt, const std::shared_ptr<Environment>& env);
  Result<Value> Eval(const Expr& expr, const std::shared_ptr<Environment>& env);
  Result<Value> EvalBinary(const Expr& expr, const std::shared_ptr<Environment>& env);
  Result<Value> EvalCall(const Expr& expr, const std::shared_ptr<Environment>& env);
  Status Assign(const Expr& target, Value value,
                const std::shared_ptr<Environment>& env);

  const SchemaRegistry* registry_;
  Hooks hooks_;
  std::shared_ptr<Environment> base_env_;
  std::vector<std::weak_ptr<Environment>> session_envs_;
  size_t env_compact_threshold_ = 1024;
  // Installed for the interpreter's lifetime; its destructor (after
  // ~Interp clears the environments) empties surviving list/dict cells,
  // breaking self-referential container cycles the environment sweep
  // can't reach.
  ContainerCycleBreaker cycle_breaker_;
  std::string current_origin_;
  bool exports_enabled_ = false;
  uint64_t step_limit_ = 20'000'000;
  uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace configerator

#endif  // SRC_LANG_INTERP_H_
