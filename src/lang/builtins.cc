#include "src/lang/builtins.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <cmath>
#include <cstdlib>

#include "src/util/strings.h"

namespace configerator {

namespace {

Status ArityError(const std::string& fn, const std::string& expected) {
  return InvalidArgumentError(fn + "() expects " + expected);
}

std::string Stringify(const Value& v) {
  if (v.is_string()) {
    return v.as_string();
  }
  if (v.is_bool()) {
    return v.as_bool() ? "True" : "False";
  }
  if (v.is_int()) {
    return std::to_string(v.as_int());
  }
  if (v.is_double()) {
    return StrFormat("%g", v.as_double());
  }
  if (v.is_null()) {
    return "None";
  }
  return v.ToDebugString();
}

void Def(Environment* env, const std::string& name, NativeFn fn) {
  env->Define(name, Value::MakeNative(name, std::move(fn)));
}

}  // namespace

const std::shared_ptr<Environment>& SharedBuiltinsEnvironment() {
  // Construction may run lazily inside a session whose ContainerCycleBreaker
  // is installed, so this environment must bind only natives and scalars:
  // a list/dict cell created here would be emptied at that session's
  // teardown, corrupting the shared scope for every later session. (Mutable
  // bindings like enum namespaces belong in RegisterSchemaConstructors,
  // which populates each session's own base layer.)
  static const std::shared_ptr<Environment> env = [] {
    auto e = std::make_shared<Environment>();
    RegisterCslBuiltins(e.get());
    return e;
  }();
  return env;
}

void RegisterCslBuiltins(Environment* env) {
  Def(env, "len", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1) {
      return ArityError("len", "one argument");
    }
    const Value& v = args[0];
    if (v.is_string()) {
      return Value::Int(static_cast<int64_t>(v.as_string().size()));
    }
    if (v.is_list()) {
      return Value::Int(static_cast<int64_t>(v.as_list().size()));
    }
    if (v.is_dict()) {
      return Value::Int(static_cast<int64_t>(v.as_dict().size()));
    }
    return InvalidArgumentError("len() needs a string, list or dict");
  });

  Def(env, "str", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1) {
      return ArityError("str", "one argument");
    }
    return Value::Str(Stringify(args[0]));
  });

  Def(env, "int", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1) {
      return ArityError("int", "one argument");
    }
    const Value& v = args[0];
    if (v.is_int()) {
      return v;
    }
    if (v.is_double()) {
      return Value::Int(static_cast<int64_t>(v.as_double()));
    }
    if (v.is_bool()) {
      return Value::Int(v.as_bool() ? 1 : 0);
    }
    if (v.is_string()) {
      char* end = nullptr;
      long long parsed = std::strtoll(v.as_string().c_str(), &end, 10);
      if (end == v.as_string().c_str() || *end != '\0') {
        return InvalidArgumentError("int(): cannot parse '" + v.as_string() + "'");
      }
      return Value::Int(parsed);
    }
    return InvalidArgumentError("int() needs a number or numeric string");
  });

  Def(env, "float", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1) {
      return ArityError("float", "one argument");
    }
    const Value& v = args[0];
    if (v.is_number()) {
      return Value::Double(v.as_double());
    }
    if (v.is_string()) {
      char* end = nullptr;
      double parsed = std::strtod(v.as_string().c_str(), &end);
      if (end == v.as_string().c_str() || *end != '\0') {
        return InvalidArgumentError("float(): cannot parse '" + v.as_string() + "'");
      }
      return Value::Double(parsed);
    }
    return InvalidArgumentError("float() needs a number or numeric string");
  });

  Def(env, "abs", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1 || !args[0].is_number()) {
      return ArityError("abs", "one number");
    }
    if (args[0].is_int()) {
      return Value::Int(std::llabs(args[0].as_int()));
    }
    return Value::Double(std::fabs(args[0].as_double()));
  });

  Def(env, "range", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    int64_t start = 0;
    int64_t stop = 0;
    int64_t step = 1;
    if (args.size() == 1 && args[0].is_int()) {
      stop = args[0].as_int();
    } else if (args.size() >= 2 && args[0].is_int() && args[1].is_int()) {
      start = args[0].as_int();
      stop = args[1].as_int();
      if (args.size() == 3) {
        if (!args[2].is_int() || args[2].as_int() == 0) {
          return InvalidArgumentError("range() step must be a nonzero integer");
        }
        step = args[2].as_int();
      }
    } else {
      return ArityError("range", "1-3 integer arguments");
    }
    Value::List items;
    if (step > 0) {
      for (int64_t i = start; i < stop; i += step) {
        items.push_back(Value::Int(i));
      }
    } else {
      for (int64_t i = start; i > stop; i += step) {
        items.push_back(Value::Int(i));
      }
    }
    return Value::MakeList(std::move(items));
  });

  Def(env, "sorted", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1 || !args[0].is_list()) {
      return ArityError("sorted", "one list");
    }
    Value::List items = args[0].as_list();
    bool numeric = std::all_of(items.begin(), items.end(),
                               [](const Value& v) { return v.is_number(); });
    bool stringy = std::all_of(items.begin(), items.end(),
                               [](const Value& v) { return v.is_string(); });
    if (!numeric && !stringy) {
      return InvalidArgumentError("sorted() needs all-numbers or all-strings");
    }
    std::stable_sort(items.begin(), items.end(),
                     [numeric](const Value& a, const Value& b) {
                       if (numeric) {
                         return a.as_double() < b.as_double();
                       }
                       return a.as_string() < b.as_string();
                     });
    return Value::MakeList(std::move(items));
  });

  auto min_max = [](bool is_min) {
    return [is_min](std::vector<Value>& args, std::map<std::string, Value>&)
               -> Result<Value> {
      Value::List items;
      if (args.size() == 1 && args[0].is_list()) {
        items = args[0].as_list();
      } else {
        items = args;
      }
      if (items.empty()) {
        return InvalidArgumentError("min()/max() of empty sequence");
      }
      Value best = items[0];
      for (const Value& v : items) {
        if (!v.is_number() || !best.is_number()) {
          if (!v.is_string() || !best.is_string()) {
            return InvalidArgumentError("min()/max() needs numbers or strings");
          }
          bool less = v.as_string() < best.as_string();
          if (less == is_min && !v.Equals(best)) {
            best = v;
          }
          continue;
        }
        bool less = v.as_double() < best.as_double();
        if (less == is_min && v.as_double() != best.as_double()) {
          best = v;
        }
      }
      return best;
    };
  };
  Def(env, "min", min_max(true));
  Def(env, "max", min_max(false));

  Def(env, "items", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1 || !args[0].is_dict()) {
      return ArityError("items", "one dict");
    }
    Value::List pairs;
    for (const auto& [k, v] : args[0].as_dict()) {
      pairs.push_back(Value::MakeList({Value::Str(k), v}));
    }
    return Value::MakeList(std::move(pairs));
  });

  Def(env, "keys", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1 || !args[0].is_dict()) {
      return ArityError("keys", "one dict");
    }
    Value::List out;
    for (const auto& [k, v] : args[0].as_dict()) {
      (void)v;
      out.push_back(Value::Str(k));
    }
    return Value::MakeList(std::move(out));
  });

  Def(env, "values", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 1 || !args[0].is_dict()) {
      return ArityError("values", "one dict");
    }
    Value::List out;
    for (const auto& [k, v] : args[0].as_dict()) {
      (void)k;
      out.push_back(v);
    }
    return Value::MakeList(std::move(out));
  });

  Def(env, "append", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 2 || !args[0].is_list()) {
      return ArityError("append", "a list and a value");
    }
    args[0].as_list().push_back(args[1]);
    return Value::Null();
  });

  Def(env, "extend", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 2 || !args[0].is_list() || !args[1].is_list()) {
      return ArityError("extend", "two lists");
    }
    for (const Value& v : args[1].as_list()) {
      args[0].as_list().push_back(v);
    }
    return Value::Null();
  });

  Def(env, "has_key", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 2 || !args[0].is_dict() || !args[1].is_string()) {
      return ArityError("has_key", "a dict and a string key");
    }
    return Value::Bool(args[0].as_dict().count(args[1].as_string()) > 0);
  });

  Def(env, "get", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() < 2 || !args[0].is_dict() || !args[1].is_string()) {
      return ArityError("get", "a dict, a string key, and an optional default");
    }
    auto it = args[0].as_dict().find(args[1].as_string());
    if (it != args[0].as_dict().end()) {
      return it->second;
    }
    if (args.size() >= 3) {
      return args[2];
    }
    return Value::Null();
  });

  Def(env, "join", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 2 || !args[0].is_string() || !args[1].is_list()) {
      return ArityError("join", "a separator string and a list");
    }
    std::string out;
    bool first = true;
    for (const Value& v : args[1].as_list()) {
      if (!first) {
        out += args[0].as_string();
      }
      first = false;
      out += Stringify(v);
    }
    return Value::Str(std::move(out));
  });

  Def(env, "split", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 2 || !args[0].is_string() || !args[1].is_string() ||
        args[1].as_string().empty()) {
      return ArityError("split", "a string and a nonempty separator");
    }
    const std::string& s = args[0].as_string();
    const std::string& sep = args[1].as_string();
    Value::List out;
    size_t start = 0;
    while (true) {
      size_t next = s.find(sep, start);
      if (next == std::string::npos) {
        out.push_back(Value::Str(s.substr(start)));
        break;
      }
      out.push_back(Value::Str(s.substr(start, next - start)));
      start = next + sep.size();
    }
    return Value::MakeList(std::move(out));
  });

  // format("{} has {} cores", name, n) — sequential "{}" substitution.
  Def(env, "format", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.empty() || !args[0].is_string()) {
      return ArityError("format", "a format string first");
    }
    const std::string& fmt = args[0].as_string();
    std::string out;
    size_t next_arg = 1;
    for (size_t i = 0; i < fmt.size(); ++i) {
      if (fmt[i] == '{' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
        if (next_arg >= args.size()) {
          return InvalidArgumentError("format(): not enough arguments");
        }
        out += Stringify(args[next_arg++]);
        ++i;
      } else {
        out.push_back(fmt[i]);
      }
    }
    return Value::Str(std::move(out));
  });

  // String predicates and transforms (function-style, like the collection
  // helpers — the language has no methods).
  auto string_pair = [](const char* fn_name,
                        std::function<Value(const std::string&, const std::string&)>
                            op) {
    return [fn_name, op = std::move(op)](std::vector<Value>& args,
                                         std::map<std::string, Value>&)
               -> Result<Value> {
      if (args.size() != 2 || !args[0].is_string() || !args[1].is_string()) {
        return ArityError(fn_name, "two strings");
      }
      return op(args[0].as_string(), args[1].as_string());
    };
  };
  Def(env, "startswith",
      string_pair("startswith", [](const std::string& s, const std::string& p) {
        return Value::Bool(s.starts_with(p));
      }));
  Def(env, "endswith",
      string_pair("endswith", [](const std::string& s, const std::string& p) {
        return Value::Bool(s.ends_with(p));
      }));

  auto string_unary = [](const char* fn_name,
                         std::function<std::string(const std::string&)> op) {
    return [fn_name, op = std::move(op)](std::vector<Value>& args,
                                         std::map<std::string, Value>&)
               -> Result<Value> {
      if (args.size() != 1 || !args[0].is_string()) {
        return ArityError(fn_name, "one string");
      }
      return Value::Str(op(args[0].as_string()));
    };
  };
  Def(env, "upper", string_unary("upper", [](const std::string& s) {
        std::string out = s;
        std::transform(out.begin(), out.end(), out.begin(),
                       [](unsigned char c) { return std::toupper(c); });
        return out;
      }));
  Def(env, "lower", string_unary("lower", [](const std::string& s) {
        std::string out = s;
        std::transform(out.begin(), out.end(), out.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        return out;
      }));
  Def(env, "strip", string_unary("strip", [](const std::string& s) {
        return std::string(StrTrim(s));
      }));

  Def(env, "replace", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 3 || !args[0].is_string() || !args[1].is_string() ||
        !args[2].is_string() || args[1].as_string().empty()) {
      return ArityError("replace", "a string, a nonempty needle, a replacement");
    }
    const std::string& s = args[0].as_string();
    const std::string& needle = args[1].as_string();
    const std::string& replacement = args[2].as_string();
    std::string out;
    size_t start = 0;
    while (true) {
      size_t pos = s.find(needle, start);
      if (pos == std::string::npos) {
        out += s.substr(start);
        break;
      }
      out += s.substr(start, pos - start);
      out += replacement;
      start = pos + needle.size();
    }
    return Value::Str(std::move(out));
  });

  Def(env, "fail", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    std::string msg = "fail() called";
    if (!args.empty()) {
      msg = Stringify(args[0]);
    }
    return InvalidConfigError(msg);
  });

  // merge(base, override): deep merge for config inheritance (the paper's §8
  // "introducing config inheritance" future work). Returns a NEW value:
  // nested dicts merge recursively, anything else is replaced by the
  // override. The base's schema type tag is preserved, so a merged typed
  // config still type-checks at export.
  Def(env, "merge", [](std::vector<Value>& args, std::map<std::string, Value>&)
          -> Result<Value> {
    if (args.size() != 2 || !args[0].is_dict() || !args[1].is_dict()) {
      return ArityError("merge", "two dicts (base, override)");
    }
    std::function<Value(const Value&, const Value&)> deep_merge =
        [&deep_merge](const Value& base, const Value& override_v) -> Value {
      Value::Dict merged = base.as_dict();
      for (const auto& [key, value] : override_v.as_dict()) {
        auto it = merged.find(key);
        if (it != merged.end() && it->second.is_dict() && value.is_dict()) {
          merged[key] = deep_merge(it->second, value);
        } else {
          merged[key] = value;
        }
      }
      return Value::MakeDict(std::move(merged), base.type_name());
    };
    return deep_merge(args[0], args[1]);
  });
}

void RegisterSchemaConstructors(const SchemaRegistry& registry, Environment* env) {
  for (const std::string& struct_name : registry.StructNames()) {
    const StructDef* def = registry.FindStruct(struct_name);
    // Copy the field names; the registry outlives the interpreter session.
    std::vector<std::string> field_names;
    field_names.reserve(def->fields.size());
    for (const FieldDef& f : def->fields) {
      field_names.push_back(f.name);
    }
    std::string name = struct_name;
    env->Define(
        name,
        Value::MakeNative(
            name, [name, field_names](std::vector<Value>& args,
                                      std::map<std::string, Value>& kwargs)
                      -> Result<Value> {
              if (!args.empty()) {
                return InvalidArgumentError(
                    name + "(...) takes keyword arguments only");
              }
              Value::Dict fields;
              for (auto& [kw, value] : kwargs) {
                if (std::find(field_names.begin(), field_names.end(), kw) ==
                    field_names.end()) {
                  return InvalidConfigError(StrFormat(
                      "%s has no field named '%s'", name.c_str(), kw.c_str()));
                }
                fields[kw] = std::move(value);
              }
              return Value::MakeDict(std::move(fields), name);
            }));
  }

  // Enum namespaces: JobPriority.HIGH evaluates to its integer value.
  for (const std::string& enum_name : registry.EnumNames()) {
    const EnumDef* e = registry.FindEnum(enum_name);
    Value::Dict ns;
    for (const auto& [value_name, value] : e->values) {
      ns[value_name] = Value::Int(value);
    }
    env->Define(e->name, Value::MakeDict(std::move(ns), "enum " + e->name));
  }
}

}  // namespace configerator
