// AST -> bytecode compiler for the config source language.
//
// Compilation is purely syntactic — no imports are resolved and no schema
// registry is consulted — so a CompiledUnit depends only on the module
// source text. That is what makes content-hash caching sound: same bytes,
// same unit (src/lang/unit_cache.h).

#ifndef SRC_LANG_CODEGEN_H_
#define SRC_LANG_CODEGEN_H_

#include <memory>

#include "src/lang/ast.h"
#include "src/lang/bytecode.h"
#include "src/util/status.h"

namespace configerator {

// Compiles a parsed module. Fails only on resource exhaustion (constant or
// name pool overflow); semantically invalid programs compile to bytecode
// that reproduces the interpreter's runtime error.
Result<std::shared_ptr<CompiledUnit>> CompileToBytecode(const Module& module);

}  // namespace configerator

#endif  // SRC_LANG_CODEGEN_H_
