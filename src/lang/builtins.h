// Native builtin functions for the config source language, and registration
// of schema-struct constructors / enum namespaces from a SchemaRegistry.

#ifndef SRC_LANG_BUILTINS_H_
#define SRC_LANG_BUILTINS_H_

#include "src/lang/interp.h"
#include "src/schema/schema.h"

namespace configerator {

// Installs the builtin function set: len, str, int, float, range, sorted,
// min, max, abs, items, keys, values, append, extend, has_key, join, split,
// format, fail.
void RegisterCslBuiltins(Environment* env);

// Process-wide environment holding exactly the RegisterCslBuiltins bindings,
// built once and shared read-only by every engine session as the root of its
// scope chain. Safe to share because every binding is an immutable native
// function and name assignment always defines in the innermost scope — user
// code can shadow a builtin in its own session but never write through to
// this environment.
const std::shared_ptr<Environment>& SharedBuiltinsEnvironment();

// For every struct in `registry`, installs a constructor `StructName(...)`
// that accepts keyword arguments (rejecting unknown field names — the typo
// defense starts at construction), and for every enum a namespace value
// `EnumName.VALUE`.
void RegisterSchemaConstructors(const SchemaRegistry& registry, Environment* env);

}  // namespace configerator

#endif  // SRC_LANG_BUILTINS_H_
