// Native builtin functions for the config source language, and registration
// of schema-struct constructors / enum namespaces from a SchemaRegistry.

#ifndef SRC_LANG_BUILTINS_H_
#define SRC_LANG_BUILTINS_H_

#include "src/lang/interp.h"
#include "src/schema/schema.h"

namespace configerator {

// Installs the builtin function set: len, str, int, float, range, sorted,
// min, max, abs, items, keys, values, append, extend, has_key, join, split,
// format, fail.
void RegisterCslBuiltins(Environment* env);

// For every struct in `registry`, installs a constructor `StructName(...)`
// that accepts keyword arguments (rejecting unknown field names — the typo
// defense starts at construction), and for every enum a namespace value
// `EnumName.VALUE`.
void RegisterSchemaConstructors(const SchemaRegistry& registry, Environment* env);

}  // namespace configerator

#endif  // SRC_LANG_BUILTINS_H_
