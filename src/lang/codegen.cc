#include "src/lang/codegen.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/lang/import_resolver.h"
#include "src/lang/ops.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

bool IsImportName(const std::string& name) {
  return name == "import_python" || name == "import_thrift";
}

bool IsImportSpecialForm(const Expr& e) {
  return e.kind == Expr::Kind::kCall && e.lhs != nullptr &&
         e.lhs->kind == Expr::Kind::kName && IsImportName(e.lhs->name);
}

// --- Slot-mode analysis -----------------------------------------------------
//
// A function runs on vector slots (no Environment allocation per call) when
// its set of locals is statically known and nothing inside needs a real
// scope object: nested `def`s capture their environment, and import special
// forms define arbitrary names into the current scope.

bool ExprNeedsEnv(const Expr& e);

bool AnyExprNeedsEnv(const std::vector<ExprPtr>& items) {
  for (const ExprPtr& item : items) {
    if (item != nullptr && ExprNeedsEnv(*item)) {
      return true;
    }
  }
  return false;
}

bool ExprNeedsEnv(const Expr& e) {
  if (IsImportSpecialForm(e)) {
    return true;
  }
  if (AnyExprNeedsEnv(e.items)) {
    return true;
  }
  for (const auto& [k, v] : e.pairs) {
    if ((k != nullptr && ExprNeedsEnv(*k)) ||
        (v != nullptr && ExprNeedsEnv(*v))) {
      return true;
    }
  }
  for (const auto& [kw, arg] : e.kwargs) {
    if (arg != nullptr && ExprNeedsEnv(*arg)) {
      return true;
    }
  }
  return (e.lhs != nullptr && ExprNeedsEnv(*e.lhs)) ||
         (e.rhs != nullptr && ExprNeedsEnv(*e.rhs)) ||
         (e.third != nullptr && ExprNeedsEnv(*e.third));
}

bool BlockNeedsEnv(const std::vector<StmtPtr>& body) {
  for (const StmtPtr& stmt : body) {
    if (stmt->kind == Stmt::Kind::kDef) {
      return true;
    }
    if ((stmt->target != nullptr && ExprNeedsEnv(*stmt->target)) ||
        (stmt->value != nullptr && ExprNeedsEnv(*stmt->value))) {
      return true;
    }
    if (BlockNeedsEnv(stmt->body) || BlockNeedsEnv(stmt->orelse)) {
      return true;
    }
  }
  return false;
}

// First-assignment-order locals of a slot-mode function body (no nested
// defs by construction).
void CollectLocals(const std::vector<StmtPtr>& body,
                   std::vector<std::string>* names,
                   std::set<std::string>* seen) {
  auto add = [&](const std::string& name) {
    if (seen->insert(name).second) {
      names->push_back(name);
    }
  };
  for (const StmtPtr& stmt : body) {
    switch (stmt->kind) {
      case Stmt::Kind::kAssign:
      case Stmt::Kind::kAugAssign:
        if (stmt->target != nullptr && stmt->target->kind == Expr::Kind::kName) {
          add(stmt->target->name);
        }
        break;
      case Stmt::Kind::kFor:
        for (const std::string& var : stmt->loop_vars) {
          add(var);
        }
        break;
      default:
        break;
    }
    CollectLocals(stmt->body, names, seen);
    CollectLocals(stmt->orelse, names, seen);
  }
}

OpCode BinOpCode(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return OpCode::kAdd;
    case BinOp::kSub:
      return OpCode::kSub;
    case BinOp::kMul:
      return OpCode::kMul;
    case BinOp::kDiv:
      return OpCode::kDiv;
    case BinOp::kFloorDiv:
      return OpCode::kFloorDiv;
    case BinOp::kMod:
      return OpCode::kMod;
    case BinOp::kEq:
      return OpCode::kEq;
    case BinOp::kNe:
      return OpCode::kNe;
    case BinOp::kLt:
      return OpCode::kLt;
    case BinOp::kLe:
      return OpCode::kLe;
    case BinOp::kGt:
      return OpCode::kGt;
    case BinOp::kGe:
      return OpCode::kGe;
    case BinOp::kIn:
      return OpCode::kIn;
    case BinOp::kNotIn:
      return OpCode::kNotIn;
  }
  return OpCode::kHalt;
}

// --- Codegen ----------------------------------------------------------------

class Codegen {
 public:
  explicit Codegen(const Module& module) : module_(module) {}

  Result<std::shared_ptr<CompiledUnit>> Run() {
    unit_ = std::make_shared<CompiledUnit>();
    unit_->path = module_.path;
    unit_->top.origin = module_.path;

    FnCtx top;
    top.chunk = &unit_->top;
    RETURN_IF_ERROR(CompileBlock(module_.body, top));
    top.chunk->Emit(OpCode::kHalt, LastLine(module_.body));
    RETURN_IF_ERROR(CheckPools(*top.chunk));
    return unit_;
  }

 private:
  struct LoopCtx {
    uint32_t head = 0;
    // PatchU32 sites that must point at the loop's end.
    std::vector<size_t> break_patches;
    // Stack values owned by the loop (for-loops keep [items, index]).
    uint16_t cleanup = 0;
  };

  struct FnCtx {
    Chunk* chunk = nullptr;
    const CompiledFunction* fn = nullptr;  // Null at module top level.
    bool slot_mode = false;
    std::map<std::string, uint16_t> slots;
    std::vector<LoopCtx> loops;
  };

  static int LastLine(const std::vector<StmtPtr>& body) {
    return body.empty() ? 1 : body.back()->line;
  }

  static Status CheckPools(const Chunk& chunk) {
    if (chunk.constants.size() > 65535 || chunk.names.size() > 65535) {
      return InternalError("bytecode pool overflow (module too large)");
    }
    return OkStatus();
  }

  static Status CheckCount(size_t n) {
    if (n > 65535) {
      return InternalError("bytecode pool overflow (module too large)");
    }
    return OkStatus();
  }

  static size_t EmitJump(Chunk& c, OpCode op, int line) {
    c.Emit(op, line);
    size_t at = c.code.size();
    c.EmitU32(0);
    return at;
  }

  static void PatchHere(Chunk& c, size_t at) {
    c.PatchU32(at, static_cast<uint32_t>(c.code.size()));
  }

  void EmitRuntimeError(FnCtx& ctx, const std::string& msg, int line) {
    ctx.chunk->Emit(OpCode::kRuntimeError, line);
    ctx.chunk->EmitU16(ctx.chunk->AddName(msg));
  }

  Status CompileBlock(const std::vector<StmtPtr>& body, FnCtx& ctx) {
    for (const StmtPtr& stmt : body) {
      RETURN_IF_ERROR(CompileStmt(*stmt, ctx));
    }
    return OkStatus();
  }

  Status CompileStmt(const Stmt& stmt, FnCtx& ctx) {
    Chunk& c = *ctx.chunk;
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        RETURN_IF_ERROR(CompileExpr(*stmt.target, ctx));
        c.Emit(OpCode::kPop, stmt.line);
        return OkStatus();
      case Stmt::Kind::kAssign:
        RETURN_IF_ERROR(CompileExpr(*stmt.value, ctx));
        return CompileStore(*stmt.target, ctx);
      case Stmt::Kind::kAugAssign: {
        RETURN_IF_ERROR(CompileExpr(*stmt.target, ctx));
        RETURN_IF_ERROR(CompileExpr(*stmt.value, ctx));
        std::optional<BinOp> op = ParseBinOp(stmt.op);
        if (!op.has_value()) {
          EmitRuntimeError(ctx, "unknown binary operator '" + stmt.op + "'",
                           stmt.line);
          return OkStatus();
        }
        c.Emit(BinOpCode(*op), stmt.line);
        return CompileStore(*stmt.target, ctx);
      }
      case Stmt::Kind::kIf: {
        RETURN_IF_ERROR(CompileExpr(*stmt.target, ctx));
        size_t jf = EmitJump(c, OpCode::kJumpIfFalsePop, stmt.line);
        RETURN_IF_ERROR(CompileBlock(stmt.body, ctx));
        if (stmt.orelse.empty()) {
          PatchHere(c, jf);
        } else {
          size_t end = EmitJump(c, OpCode::kJump, stmt.line);
          PatchHere(c, jf);
          RETURN_IF_ERROR(CompileBlock(stmt.orelse, ctx));
          PatchHere(c, end);
        }
        return OkStatus();
      }
      case Stmt::Kind::kFor: {
        RETURN_IF_ERROR(CompileExpr(*stmt.value, ctx));
        c.Emit(OpCode::kIterPrep, stmt.line);
        uint32_t head = static_cast<uint32_t>(c.code.size());
        c.Emit(OpCode::kForLoop, stmt.line);
        size_t end_patch = c.code.size();
        c.EmitU32(0);
        ctx.loops.push_back(LoopCtx{head, {}, /*cleanup=*/2});
        if (stmt.loop_vars.size() == 1) {
          RETURN_IF_ERROR(StoreNameOrSlot(stmt.loop_vars[0], stmt.line, ctx));
        } else {
          RETURN_IF_ERROR(CheckCount(stmt.loop_vars.size()));
          c.Emit(OpCode::kUnpack, stmt.line);
          c.EmitU16(static_cast<uint16_t>(stmt.loop_vars.size()));
          for (const std::string& var : stmt.loop_vars) {
            RETURN_IF_ERROR(StoreNameOrSlot(var, stmt.line, ctx));
          }
        }
        RETURN_IF_ERROR(CompileBlock(stmt.body, ctx));
        c.Emit(OpCode::kJump, stmt.line);
        c.EmitU32(head);
        c.PatchU32(end_patch, static_cast<uint32_t>(c.code.size()));
        for (size_t patch : ctx.loops.back().break_patches) {
          PatchHere(c, patch);
        }
        ctx.loops.pop_back();
        return OkStatus();
      }
      case Stmt::Kind::kWhile: {
        uint32_t head = static_cast<uint32_t>(c.code.size());
        RETURN_IF_ERROR(CompileExpr(*stmt.target, ctx));
        size_t jf = EmitJump(c, OpCode::kJumpIfFalsePop, stmt.line);
        ctx.loops.push_back(LoopCtx{head, {}, /*cleanup=*/0});
        RETURN_IF_ERROR(CompileBlock(stmt.body, ctx));
        c.Emit(OpCode::kJump, stmt.line);
        c.EmitU32(head);
        PatchHere(c, jf);
        for (size_t patch : ctx.loops.back().break_patches) {
          PatchHere(c, patch);
        }
        ctx.loops.pop_back();
        return OkStatus();
      }
      case Stmt::Kind::kDef: {
        ASSIGN_OR_RETURN(uint16_t fn_index, CompileFunction(*stmt.def));
        c.Emit(OpCode::kMakeClosure, stmt.line);
        c.EmitU16(fn_index);
        return StoreNameOrSlot(stmt.def->name, stmt.line, ctx);
      }
      case Stmt::Kind::kReturn:
        if (stmt.target != nullptr) {
          RETURN_IF_ERROR(CompileExpr(*stmt.target, ctx));
          c.Emit(OpCode::kReturn, stmt.line);
        } else {
          c.Emit(OpCode::kReturnNull, stmt.line);
        }
        return OkStatus();
      case Stmt::Kind::kAssert: {
        RETURN_IF_ERROR(CompileExpr(*stmt.target, ctx));
        size_t fail = EmitJump(c, OpCode::kJumpIfFalsePop, stmt.line);
        size_t end = EmitJump(c, OpCode::kJump, stmt.line);
        PatchHere(c, fail);
        if (stmt.value != nullptr) {
          RETURN_IF_ERROR(CompileExpr(*stmt.value, ctx));
          c.Emit(OpCode::kAssertFailMsg, stmt.line);
        } else {
          c.Emit(OpCode::kAssertFail, stmt.line);
        }
        PatchHere(c, end);
        return OkStatus();
      }
      case Stmt::Kind::kPass:
        return OkStatus();
      case Stmt::Kind::kBreak: {
        if (ctx.loops.empty()) {
          // Flow escapes every loop: in a function that means "return
          // None", at module top level the module simply ends — exactly the
          // reference interpreter's Flow propagation.
          c.Emit(ctx.fn != nullptr ? OpCode::kReturnNull : OpCode::kHalt,
                 stmt.line);
          return OkStatus();
        }
        LoopCtx& loop = ctx.loops.back();
        if (loop.cleanup > 0) {
          c.Emit(OpCode::kPopN, stmt.line);
          c.EmitU16(loop.cleanup);
        }
        loop.break_patches.push_back(EmitJump(c, OpCode::kJump, stmt.line));
        return OkStatus();
      }
      case Stmt::Kind::kContinue: {
        if (ctx.loops.empty()) {
          c.Emit(ctx.fn != nullptr ? OpCode::kReturnNull : OpCode::kHalt,
                 stmt.line);
          return OkStatus();
        }
        c.Emit(OpCode::kJump, stmt.line);
        c.EmitU32(ctx.loops.back().head);
        return OkStatus();
      }
    }
    return InternalError("unhandled statement kind");
  }

  Status StoreNameOrSlot(const std::string& name, int line, FnCtx& ctx) {
    Chunk& c = *ctx.chunk;
    if (ctx.slot_mode) {
      auto it = ctx.slots.find(name);
      if (it != ctx.slots.end()) {
        c.Emit(OpCode::kStoreLocal, line);
        c.EmitU16(it->second);
        return OkStatus();
      }
    }
    c.Emit(OpCode::kStoreName, line);
    c.EmitU16(c.AddName(name));
    return OkStatus();
  }

  Status CompileStore(const Expr& target, FnCtx& ctx) {
    Chunk& c = *ctx.chunk;
    switch (target.kind) {
      case Expr::Kind::kName:
        return StoreNameOrSlot(target.name, target.line, ctx);
      case Expr::Kind::kAttr:
        RETURN_IF_ERROR(CompileExpr(*target.lhs, ctx));
        c.Emit(OpCode::kAttrSet, target.line);
        c.EmitU16(c.AddName(target.name));
        return OkStatus();
      case Expr::Kind::kIndex:
        RETURN_IF_ERROR(CompileExpr(*target.lhs, ctx));
        RETURN_IF_ERROR(CompileExpr(*target.rhs, ctx));
        c.Emit(OpCode::kIndexSet, target.line);
        return OkStatus();
      default:
        EmitRuntimeError(ctx, "invalid assignment target", target.line);
        return OkStatus();
    }
  }

  Status CompileExpr(const Expr& e, FnCtx& ctx) {
    Chunk& c = *ctx.chunk;
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        c.Emit(OpCode::kConst, e.line);
        c.EmitU16(c.AddConstant(e.literal));
        return OkStatus();
      case Expr::Kind::kName: {
        if (ctx.slot_mode) {
          auto it = ctx.slots.find(e.name);
          if (it != ctx.slots.end()) {
            c.Emit(OpCode::kLoadLocal, e.line);
            c.EmitU16(it->second);
            return OkStatus();
          }
        }
        c.Emit(OpCode::kLoadName, e.line);
        c.EmitU16(c.AddName(e.name));
        return OkStatus();
      }
      case Expr::Kind::kList:
        RETURN_IF_ERROR(CheckCount(e.items.size()));
        for (const ExprPtr& item : e.items) {
          RETURN_IF_ERROR(CompileExpr(*item, ctx));
        }
        c.Emit(OpCode::kMakeList, e.line);
        c.EmitU16(static_cast<uint16_t>(e.items.size()));
        return OkStatus();
      case Expr::Kind::kDict:
        RETURN_IF_ERROR(CheckCount(e.pairs.size()));
        for (const auto& [key_expr, value_expr] : e.pairs) {
          RETURN_IF_ERROR(CompileExpr(*key_expr, ctx));
          c.Emit(OpCode::kCheckStrKey, e.line);
          RETURN_IF_ERROR(CompileExpr(*value_expr, ctx));
        }
        c.Emit(OpCode::kMakeDict, e.line);
        c.EmitU16(static_cast<uint16_t>(e.pairs.size()));
        return OkStatus();
      case Expr::Kind::kUnary:
        RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
        if (e.name == "not") {
          c.Emit(OpCode::kNot, e.line);
        } else if (e.name == "-") {
          c.Emit(OpCode::kNeg, e.line);
        } else {
          EmitRuntimeError(ctx, "unknown unary operator", e.line);
        }
        return OkStatus();
      case Expr::Kind::kTernary: {
        RETURN_IF_ERROR(CompileExpr(*e.rhs, ctx));  // Condition.
        size_t jf = EmitJump(c, OpCode::kJumpIfFalsePop, e.line);
        RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
        size_t end = EmitJump(c, OpCode::kJump, e.line);
        PatchHere(c, jf);
        RETURN_IF_ERROR(CompileExpr(*e.third, ctx));
        PatchHere(c, end);
        return OkStatus();
      }
      case Expr::Kind::kBinary: {
        if (e.name == "and" || e.name == "or") {
          RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
          size_t out = EmitJump(c,
                                e.name == "and" ? OpCode::kJumpIfFalsePeek
                                                : OpCode::kJumpIfTruePeek,
                                e.line);
          c.Emit(OpCode::kPop, e.line);
          RETURN_IF_ERROR(CompileExpr(*e.rhs, ctx));
          PatchHere(c, out);
          return OkStatus();
        }
        std::optional<BinOp> op = ParseBinOp(e.name);
        if (!op.has_value()) {
          EmitRuntimeError(ctx, "unknown binary operator '" + e.name + "'",
                           e.line);
          return OkStatus();
        }
        RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
        RETURN_IF_ERROR(CompileExpr(*e.rhs, ctx));
        c.Emit(BinOpCode(*op), e.line);
        return OkStatus();
      }
      case Expr::Kind::kAttr:
        RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
        c.Emit(OpCode::kAttrGet, e.line);
        c.EmitU16(c.AddName(e.name));
        return OkStatus();
      case Expr::Kind::kIndex:
        RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
        RETURN_IF_ERROR(CompileExpr(*e.rhs, ctx));
        c.Emit(OpCode::kIndexGet, e.line);
        return OkStatus();
      case Expr::Kind::kCall:
        return CompileCall(e, ctx);
    }
    return InternalError("unhandled expression kind");
  }

  Status CompileCall(const Expr& e, FnCtx& ctx) {
    Chunk& c = *ctx.chunk;
    if (e.lhs->kind == Expr::Kind::kName) {
      const std::string& name = e.lhs->name;
      if (IsImportName(name)) {
        ImportTarget target = ClassifyImport(e);
        if (target.kind == ImportTarget::Kind::kDynamic) {
          unit_->has_dynamic_import = true;
        } else {
          StaticImport edge{target.path,
                            target.kind == ImportTarget::Kind::kSchema};
          if (std::find(unit_->static_imports.begin(),
                        unit_->static_imports.end(),
                        edge) == unit_->static_imports.end()) {
            unit_->static_imports.push_back(std::move(edge));
          }
        }
        if (e.items.empty()) {
          EmitRuntimeError(ctx, name + "() needs a path argument", e.line);
          return OkStatus();
        }
        RETURN_IF_ERROR(CompileExpr(*e.items[0], ctx));
        if (e.items.size() == 1) {
          c.Emit(OpCode::kImport, e.line);
          c.EmitU16(c.AddName(name));
          return OkStatus();
        }
        // Two-plus arguments: the schema-path decision happens at runtime,
        // and schema imports never evaluate the filter (the interpreter
        // returns before looking at it) — hence the jump past it. Extra
        // positional arguments and kwargs are never evaluated at all,
        // matching the interpreter's special form.
        c.Emit(OpCode::kImportBegin, e.line);
        c.EmitU16(c.AddName(name));
        size_t done = c.code.size();
        c.EmitU32(0);
        RETURN_IF_ERROR(CompileExpr(*e.items[1], ctx));
        c.Emit(OpCode::kImportApply, e.line);
        PatchHere(c, done);
        return OkStatus();
      }
      if (name == "export" || name == "export_if_last") {
        if (name == "export") {
          if (e.items.size() != 2) {
            EmitRuntimeError(ctx, "export(name, value) needs two arguments",
                             e.line);
            return OkStatus();
          }
          RETURN_IF_ERROR(CompileExpr(*e.items[0], ctx));
          c.Emit(OpCode::kCheckExportName, e.line);
          RETURN_IF_ERROR(CompileExpr(*e.items[1], ctx));
          c.Emit(OpCode::kExport, e.line);
          c.EmitU8(1);
          return OkStatus();
        }
        if (e.items.size() != 1) {
          EmitRuntimeError(ctx, "export_if_last(value) needs one argument",
                           e.line);
          return OkStatus();
        }
        RETURN_IF_ERROR(CompileExpr(*e.items[0], ctx));
        c.Emit(OpCode::kExport, e.line);
        c.EmitU8(0);
        return OkStatus();
      }
    }

    RETURN_IF_ERROR(CompileExpr(*e.lhs, ctx));
    // The interpreter rejects a non-callable callee before evaluating any
    // argument; the check must happen at the same point here.
    c.Emit(OpCode::kCheckCallable, e.line);
    for (const ExprPtr& arg : e.items) {
      RETURN_IF_ERROR(CompileExpr(*arg, ctx));
    }
    for (const auto& [kw, arg_expr] : e.kwargs) {
      RETURN_IF_ERROR(CompileExpr(*arg_expr, ctx));
    }
    RETURN_IF_ERROR(CheckCount(e.items.size()));
    RETURN_IF_ERROR(CheckCount(e.kwargs.size()));
    c.Emit(OpCode::kCall, e.line);
    c.EmitU16(static_cast<uint16_t>(e.items.size()));
    c.EmitU16(static_cast<uint16_t>(e.kwargs.size()));
    for (const auto& [kw, arg_expr] : e.kwargs) {
      c.EmitU16(c.AddName(kw));
    }
    return OkStatus();
  }

  Result<uint16_t> CompileFunction(const FunctionDefStmt& def) {
    if (unit_->functions.size() >= 65535) {
      return InternalError("bytecode pool overflow (module too large)");
    }
    auto fn = std::make_unique<CompiledFunction>();
    fn->name = def.name;
    fn->origin = def.origin.empty() ? module_.path : def.origin;
    fn->line = def.line;
    fn->params = def.params;
    fn->unit = unit_.get();

    bool needs_env = BlockNeedsEnv(def.body);
    for (const ExprPtr& dflt : def.defaults) {
      if (dflt != nullptr && ExprNeedsEnv(*dflt)) {
        needs_env = true;
      }
    }
    fn->slot_mode = !needs_env;

    FnCtx ctx;
    ctx.fn = fn.get();
    ctx.slot_mode = fn->slot_mode;
    if (fn->slot_mode) {
      std::set<std::string> seen;
      fn->local_names = def.params;
      seen.insert(def.params.begin(), def.params.end());
      CollectLocals(def.body, &fn->local_names, &seen);
      if (fn->local_names.size() > 65535) {
        return InternalError("bytecode pool overflow (module too large)");
      }
      for (size_t i = 0; i < fn->local_names.size(); ++i) {
        ctx.slots[fn->local_names[i]] = static_cast<uint16_t>(i);
      }
    }

    // Default-argument chunks run in the callee's scope, so earlier
    // parameters are visible (same environment as the body).
    for (const ExprPtr& dflt : def.defaults) {
      if (dflt == nullptr) {
        fn->defaults.push_back(nullptr);
        continue;
      }
      auto chunk = std::make_unique<Chunk>();
      chunk->origin = fn->origin;
      FnCtx dctx = ctx;
      dctx.chunk = chunk.get();
      RETURN_IF_ERROR(CompileExpr(*dflt, dctx));
      chunk->Emit(OpCode::kReturn, dflt->line);
      RETURN_IF_ERROR(CheckPools(*chunk));
      fn->defaults.push_back(std::move(chunk));
    }

    fn->chunk.origin = fn->origin;
    ctx.chunk = &fn->chunk;
    RETURN_IF_ERROR(CompileBlock(def.body, ctx));
    fn->chunk.Emit(OpCode::kReturnNull, LastLine(def.body));
    RETURN_IF_ERROR(CheckPools(fn->chunk));

    unit_->functions.push_back(std::move(fn));
    return static_cast<uint16_t>(unit_->functions.size() - 1);
  }

  const Module& module_;
  std::shared_ptr<CompiledUnit> unit_;
};

}  // namespace

Result<std::shared_ptr<CompiledUnit>> CompileToBytecode(const Module& module) {
  Codegen codegen(module);
  return codegen.Run();
}

}  // namespace configerator
