// Tokenizer for the config source language. Python-like: indentation-
// sensitive (emits INDENT/DEDENT), `#` comments, implicit line joining
// inside brackets.

#ifndef SRC_LANG_LEXER_H_
#define SRC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace configerator {

struct CslToken {
  enum class Kind {
    kName,     // identifier or keyword
    kInt,      // integer literal
    kFloat,    // floating-point literal
    kString,   // string literal (text holds the decoded value)
    kOp,       // operator / punctuation, text holds the spelling
    kNewline,  // logical line end
    kIndent,
    kDedent,
    kEof,
  };

  Kind kind = Kind::kEof;
  std::string text;
  int line = 0;

  bool IsOp(std::string_view op) const { return kind == Kind::kOp && text == op; }
  bool IsName(std::string_view name) const {
    return kind == Kind::kName && text == name;
  }
};

// Tokenizes a whole source file. `origin` labels error messages.
Result<std::vector<CslToken>> TokenizeCsl(std::string_view source,
                                          const std::string& origin);

}  // namespace configerator

#endif  // SRC_LANG_LEXER_H_
