#include "src/lang/unit_cache.h"

#include <set>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/codegen.h"

namespace configerator {

Result<std::shared_ptr<const CompiledUnit>> CompiledUnitCache::GetOrCompile(
    const std::string& path, const std::string& content) {
  // Byte comparison against the last seen source is strictly more precise
  // than comparing hashes, and skips the SHA-256 on the (overwhelmingly
  // common in steady state) unchanged path.
  auto it = entries_.find(path);
  if (it != entries_.end() && it->second.source == content) {
    ++hits_;
    if (it->second.unit == nullptr) {
      return it->second.error;
    }
    return it->second.unit;
  }
  ++misses_;

  Entry entry;
  entry.source = content;
  entry.source_hash = Sha256::Hash(content);
  auto parsed = ParseCsl(content, path);
  if (!parsed.ok()) {
    entry.error = parsed.status();
    entries_[path] = std::move(entry);
    return entries_[path].error;
  }
  auto compiled = CompileToBytecode(**parsed);
  if (!compiled.ok()) {
    entry.error = compiled.status();
    entries_[path] = std::move(entry);
    return entries_[path].error;
  }
  (*compiled)->source_hash = entry.source_hash;
  entry.unit = *compiled;
  entries_[path] = std::move(entry);
  return entries_[path].unit;
}

const Sha256Digest& CompiledUnitCache::HashSource(const std::string& path,
                                                 const std::string& content) {
  auto it = source_hashes_.find(path);
  if (it != source_hashes_.end() && it->second.source == content) {
    return it->second.hash;
  }
  HashedSource& slot = source_hashes_[path];
  slot.source = content;
  slot.hash = Sha256::Hash(content);
  return slot.hash;
}

const CompiledUnitCache::MemoizedOutput* CompiledUnitCache::FindOutput(
    const Sha256Digest& closure_digest) {
  auto it = outputs_.find(closure_digest);
  if (it == outputs_.end()) {
    ++output_misses_;
    return nullptr;
  }
  ++output_hits_;
  return &it->second;
}

void CompiledUnitCache::StoreOutput(const Sha256Digest& closure_digest,
                                    MemoizedOutput result) {
  outputs_[closure_digest] = std::move(result);
}

namespace {

// Extracts `include "path"` targets from Thrift schema text. A deliberately
// shallow scan — the IDL parser accepts exactly this shape (schema.cc), so
// matching line-leading `include` with a quoted path sees every edge the
// parser would follow.
std::vector<std::string> ScanSchemaIncludes(const std::string& source) {
  std::vector<std::string> includes;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) {
      eol = source.size();
    }
    std::string_view line(source.data() + pos, eol - pos);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.starts_with("include")) {
      size_t open = line.find('"');
      if (open != std::string_view::npos) {
        size_t close = line.find('"', open + 1);
        if (close != std::string_view::npos) {
          includes.emplace_back(line.substr(open + 1, close - open - 1));
        }
      }
    }
    pos = eol + 1;
  }
  return includes;
}

class ClosureHasher {
 public:
  ClosureHasher(const SourceReader& reader, CompiledUnitCache* cache)
      : reader_(reader), cache_(cache) {}

  Result<Sha256Digest> ModuleDigest(const std::string& path) {
    if (!visiting_.insert(path).second) {
      // Cycle: the compiler rejects it at evaluation time; here it just must
      // not recurse forever. A marker keeps the digest well-defined.
      return Sha256::Hash("cycle\n" + path);
    }
    auto result = ModuleDigestInner(path);
    visiting_.erase(path);
    return result;
  }

 private:
  using DigestNode = CompiledUnitCache::DigestNode;

  Result<Sha256Digest> ChildDigest(const DigestNode::Child& child) {
    if (child.is_schema) {
      return SchemaDigest(child.path);
    }
    return ModuleDigest(child.path);
  }

  // True when a memoized node's recorded children all still digest to the
  // values that fed `node.digest` — the steady-state path, which recursively
  // byte-compares every file in the subtree but computes no hashes.
  Result<bool> ChildrenUnchanged(const DigestNode& node) {
    for (const DigestNode::Child& child : node.children) {
      ASSIGN_OR_RETURN(Sha256Digest digest, ChildDigest(child));
      if (digest != child.digest) {
        return false;
      }
    }
    return true;
  }

  Result<Sha256Digest> ModuleDigestInner(const std::string& path) {
    ASSIGN_OR_RETURN(std::string source, reader_(path));
    auto& memos = cache_->digest_nodes();
    auto memo = memos.find("m:" + path);
    if (memo != memos.end() && memo->second.source == source) {
      ASSIGN_OR_RETURN(bool unchanged, ChildrenUnchanged(memo->second));
      if (unchanged) {
        return memo->second.digest;
      }
    }
    // Something changed (or first walk): compile to discover import edges,
    // recompute the subtree digest, and re-memoize.
    ASSIGN_OR_RETURN(std::shared_ptr<const CompiledUnit> unit,
                     cache_->GetOrCompile(path, source));
    if (unit->has_dynamic_import) {
      return InvalidConfigError(
          path + ": computed import path defeats static closure hashing");
    }
    DigestNode node;
    node.source = source;
    Sha256 hasher;
    hasher.Update("csl-module\n");
    hasher.Update(path);
    hasher.Update("\n");
    hasher.Update(unit->source_hash.ToHex());
    hasher.Update("\n");
    for (const StaticImport& edge : unit->static_imports) {
      DigestNode::Child child;
      child.path = edge.path;
      child.is_schema = edge.is_schema;
      ASSIGN_OR_RETURN(child.digest, ChildDigest(child));
      hasher.Update(edge.is_schema ? "schema " : "module ");
      hasher.Update(edge.path);
      hasher.Update("\n");
      hasher.Update(child.digest.ToHex());
      hasher.Update("\n");
      node.children.push_back(std::move(child));
    }
    node.digest = hasher.Finish();
    DigestNode& slot = memos["m:" + path];
    slot = std::move(node);
    return slot.digest;
  }

  Result<Sha256Digest> SchemaDigest(const std::string& path) {
    if (!visiting_.insert(path).second) {
      return Sha256::Hash("cycle\n" + path);
    }
    auto result = SchemaDigestInner(path);
    visiting_.erase(path);
    return result;
  }

  Result<Sha256Digest> SchemaDigestInner(const std::string& path) {
    ASSIGN_OR_RETURN(std::string source, reader_(path));
    // The validator companion is part of the schema's behavior, and it can
    // appear or vanish without the schema's own source changing — probe its
    // existence on every walk, memo or not.
    std::string validator_path = path + "-cvalidator";
    auto validator_source = reader_(validator_path);
    bool has_validator = validator_source.ok();
    if (!has_validator &&
        validator_source.status().code() != StatusCode::kNotFound) {
      return validator_source.status();
    }
    auto& memos = cache_->digest_nodes();
    auto memo = memos.find("s:" + path);
    if (memo != memos.end() && memo->second.source == source &&
        memo->second.has_validator == has_validator) {
      ASSIGN_OR_RETURN(bool unchanged, ChildrenUnchanged(memo->second));
      if (unchanged) {
        return memo->second.digest;
      }
    }
    DigestNode node;
    node.source = source;
    node.has_validator = has_validator;
    Sha256 hasher;
    hasher.Update("thrift-schema\n");
    hasher.Update(path);
    hasher.Update("\n");
    hasher.Update(cache_->HashSource(path, source).ToHex());
    hasher.Update("\n");
    for (const std::string& inc : ScanSchemaIncludes(source)) {
      DigestNode::Child child;
      child.path = inc;
      child.is_schema = true;
      ASSIGN_OR_RETURN(child.digest, SchemaDigest(inc));
      hasher.Update("include ");
      hasher.Update(inc);
      hasher.Update("\n");
      hasher.Update(child.digest.ToHex());
      hasher.Update("\n");
      node.children.push_back(std::move(child));
    }
    if (has_validator) {
      // The validator is a CSL module of its own, with its own closure.
      DigestNode::Child child;
      child.path = validator_path;
      ASSIGN_OR_RETURN(child.digest, ModuleDigest(validator_path));
      hasher.Update("validator\n");
      hasher.Update(child.digest.ToHex());
      hasher.Update("\n");
      node.children.push_back(std::move(child));
    } else {
      hasher.Update("no-validator\n");
    }
    node.digest = hasher.Finish();
    DigestNode& slot = memos["s:" + path];
    slot = std::move(node);
    return slot.digest;
  }

  const SourceReader& reader_;
  CompiledUnitCache* cache_;
  std::set<std::string> visiting_;
};

}  // namespace

Result<Sha256Digest> ClosureDigest(const std::string& path,
                                   const SourceReader& reader,
                                   CompiledUnitCache* cache) {
  ClosureHasher hasher(reader, cache);
  return hasher.ModuleDigest(path);
}

}  // namespace configerator
