#include "src/lang/bytecode.h"

#include <algorithm>
#include <bit>

#include "src/util/strings.h"

namespace configerator {

std::string_view OpCodeName(OpCode op) {
  switch (op) {
#define X(id, operands)  \
  case OpCode::k##id:    \
    return #id;
    CSL_OPCODE_LIST(X)
#undef X
  }
  return "?";
}

int OpCodeOperands(OpCode op) {
  switch (op) {
#define X(id, operands)  \
  case OpCode::k##id:    \
    return operands;
    CSL_OPCODE_LIST(X)
#undef X
  }
  return 0;
}

namespace {

// Constant-pool dedup is kind-strict: Value::Equals treats 1, 1.0 and True
// as equal numbers, but the pool must keep them distinct so the VM pushes
// the exact literal the source spelled.
bool SameConstant(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    return false;
  }
  switch (a.kind()) {
    case Value::Kind::kNull:
      return true;
    case Value::Kind::kBool:
      return a.as_bool() == b.as_bool();
    case Value::Kind::kInt:
      return a.as_int() == b.as_int();
    case Value::Kind::kDouble:
      // Bit comparison keeps -0.0 and 0.0 apart and makes NaN self-equal.
      return std::bit_cast<uint64_t>(a.as_double()) ==
             std::bit_cast<uint64_t>(b.as_double());
    case Value::Kind::kString:
      return a.as_string() == b.as_string();
    default:
      return false;
  }
}

}  // namespace

uint16_t Chunk::AddConstant(const Value& v) {
  for (size_t i = 0; i < constants.size(); ++i) {
    if (SameConstant(constants[i], v)) {
      return static_cast<uint16_t>(i);
    }
  }
  constants.push_back(v);
  return static_cast<uint16_t>(constants.size() - 1);
}

uint16_t Chunk::AddName(const std::string& name) {
  auto it = std::find(names.begin(), names.end(), name);
  if (it != names.end()) {
    return static_cast<uint16_t>(it - names.begin());
  }
  names.push_back(name);
  return static_cast<uint16_t>(names.size() - 1);
}

void Chunk::Emit(OpCode op, int line) {
  if (lines.empty() || lines.back().second != line) {
    lines.emplace_back(static_cast<uint32_t>(code.size()), line);
  }
  code.push_back(static_cast<uint8_t>(op));
}

void Chunk::EmitU16(uint16_t v) {
  code.push_back(static_cast<uint8_t>(v & 0xff));
  code.push_back(static_cast<uint8_t>(v >> 8));
}

void Chunk::EmitU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    code.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void Chunk::PatchU32(size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    code[at + static_cast<size_t>(i)] =
        static_cast<uint8_t>((v >> (8 * i)) & 0xff);
  }
}

uint16_t Chunk::ReadU16(size_t at) const {
  return static_cast<uint16_t>(code[at] | (code[at + 1] << 8));
}

uint32_t Chunk::ReadU32(size_t at) const {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(code[at + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

int Chunk::LineAt(size_t ip) const {
  int line = 0;
  for (const auto& [start, l] : lines) {
    if (start > ip) {
      break;
    }
    line = l;
  }
  return line;
}

namespace {

void DisassembleInstruction(const Chunk& chunk, size_t* ip, int* last_line,
                            std::string* out) {
  size_t at = *ip;
  OpCode op = static_cast<OpCode>(chunk.code[at]);
  int line = chunk.LineAt(at);
  std::string line_col = line != *last_line ? StrFormat("%4d", line) : "    ";
  *last_line = line;
  *out += StrFormat("  %04zu %s  %-16s", at, line_col.c_str(),
                    std::string(OpCodeName(op)).c_str());
  ++at;

  auto name_at = [&](uint16_t idx) -> std::string {
    return idx < chunk.names.size() ? chunk.names[idx] : "?";
  };

  switch (op) {
    case OpCode::kConst: {
      uint16_t idx = chunk.ReadU16(at);
      at += 2;
      std::string rendered = idx < chunk.constants.size()
                                 ? chunk.constants[idx].ToDebugString()
                                 : "?";
      *out += StrFormat("%u  ; %s", idx, rendered.c_str());
      break;
    }
    case OpCode::kLoadName:
    case OpCode::kStoreName:
    case OpCode::kAttrGet:
    case OpCode::kAttrSet:
    case OpCode::kImport:
    case OpCode::kRuntimeError: {
      uint16_t idx = chunk.ReadU16(at);
      at += 2;
      *out += StrFormat("%u  ; %s", idx, name_at(idx).c_str());
      break;
    }
    case OpCode::kLoadLocal:
    case OpCode::kStoreLocal:
    case OpCode::kPopN:
    case OpCode::kMakeList:
    case OpCode::kMakeDict:
    case OpCode::kUnpack:
    case OpCode::kMakeClosure: {
      *out += StrFormat("%u", chunk.ReadU16(at));
      at += 2;
      break;
    }
    case OpCode::kJump:
    case OpCode::kJumpIfFalsePop:
    case OpCode::kJumpIfFalsePeek:
    case OpCode::kJumpIfTruePeek:
    case OpCode::kForLoop: {
      *out += StrFormat("-> %04u", chunk.ReadU32(at));
      at += 4;
      break;
    }
    case OpCode::kImportBegin: {
      uint16_t callee = chunk.ReadU16(at);
      uint32_t done = chunk.ReadU32(at + 2);
      at += 6;
      *out += StrFormat("%s -> %04u", name_at(callee).c_str(), done);
      break;
    }
    case OpCode::kCall: {
      uint16_t argc = chunk.ReadU16(at);
      uint16_t kwargc = chunk.ReadU16(at + 2);
      at += 4;
      *out += StrFormat("argc=%u", argc);
      if (kwargc > 0) {
        *out += " kw=";
        for (uint16_t i = 0; i < kwargc; ++i) {
          if (i > 0) {
            *out += ",";
          }
          *out += name_at(chunk.ReadU16(at));
          at += 2;
        }
      }
      break;
    }
    case OpCode::kExport: {
      *out += chunk.code[at] != 0 ? "named" : "if_last";
      at += 1;
      break;
    }
    default:
      break;
  }
  *out += "\n";
  *ip = at;
}

}  // namespace

std::string DisassembleChunk(const Chunk& chunk, const std::string& label) {
  std::string out = "== " + label + " ==\n";
  int last_line = -1;
  size_t ip = 0;
  while (ip < chunk.code.size()) {
    DisassembleInstruction(chunk, &ip, &last_line, &out);
  }
  return out;
}

std::string Disassemble(const CompiledUnit& unit) {
  std::string out = DisassembleChunk(unit.top, "module " + unit.path);
  for (size_t i = 0; i < unit.functions.size(); ++i) {
    const CompiledFunction& fn = *unit.functions[i];
    out += DisassembleChunk(
        fn.chunk, StrFormat("fn %zu %s/%zu%s", i, fn.name.c_str(),
                            fn.params.size(), fn.slot_mode ? " [slots]" : ""));
    for (size_t p = 0; p < fn.defaults.size(); ++p) {
      if (fn.defaults[p] != nullptr) {
        out += DisassembleChunk(
            *fn.defaults[p],
            StrFormat("fn %zu default %s", i, fn.params[p].c_str()));
      }
    }
  }
  return out;
}

}  // namespace configerator
