// Stack-based bytecode VM for the config source language — the fast path
// behind the Compiler facade.
//
// The VM mirrors the tree-walking interpreter's public surface (hooks,
// environments, step limit, call-depth limit) and its observable semantics
// exactly: the differential fuzz battery in tests/vm_differential_test.cc
// requires bit-identical exported artifacts and byte-identical error
// messages (class, origin, line) against src/lang/interp.h on every seeded
// program. When in doubt, the interpreter is the specification.
//
// Functions with statically known locals run on vector slots (no
// Environment allocation per call); functions containing nested defs or
// import special forms get a real Environment so closures can capture it.
// A name read that misses its slot falls back to the captured environment
// chain, matching the interpreter's define-on-assignment scoping.

#ifndef SRC_LANG_VM_H_
#define SRC_LANG_VM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/bytecode.h"
#include "src/lang/interp.h"
#include "src/lang/value.h"
#include "src/schema/schema.h"
#include "src/util/status.h"

namespace configerator {

class Vm {
 public:
  // Same contract as the interpreter's hooks; a compile session can drive
  // either engine with the same wiring.
  using Hooks = Interp::Hooks;

  Vm(const SchemaRegistry* registry, Hooks hooks);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Environments are session-scoped exactly as in the interpreter: the VM
  // registers every environment it hands out and clears them on destruction
  // to break closure <-> environment cycles.
  std::shared_ptr<Environment> NewEnvironment(
      std::shared_ptr<Environment> parent = nullptr);

  // Environment pre-populated with builtins, schema constructors and enum
  // namespaces. New globals should chain from this.
  std::shared_ptr<Environment> MakeBaseEnvironment();

  // Executes a compiled module body in `globals`. The unit must outlive
  // every value produced by the session (closures point into it); compile
  // sessions keep a shared_ptr alive for their duration.
  Status EvalUnit(const CompiledUnit& unit,
                  const std::shared_ptr<Environment>& globals,
                  bool exports_enabled);

  // Calls a function value with evaluated arguments (validator entry point).
  Result<Value> CallValue(const Value& fn, std::vector<Value> args,
                          std::map<std::string, Value> kwargs);

  // Total instruction budget per EvalUnit (default 20M, like the
  // interpreter's step limit; the unit of "step" differs between engines).
  void set_step_limit(uint64_t limit) { step_limit_ = limit; }

  const SchemaRegistry* registry() const { return registry_; }

 private:
  struct Frame {
    const Chunk* chunk = nullptr;
    const CompiledUnit* unit = nullptr;
    // Scope: env-mode frames (module tops, functions with nested defs or
    // imports) bind through `env`; slot-mode frames use the vectors and
    // fall back to `fallback` (the closure's captured chain) for reads.
    std::shared_ptr<Environment> env;
    const CompiledFunction* fn = nullptr;
    std::vector<Value>* locals = nullptr;
    std::vector<bool>* locals_set = nullptr;
    std::shared_ptr<Environment> fallback;
  };

  Result<Value> RunChunk(Frame& frame);
  Result<Value> CallFunction(const Closure& closure, std::vector<Value> args,
                             std::map<std::string, Value> kwargs);
  Status DoImport(const std::string& callee, const std::string& path,
                  const std::string& filter, Frame& frame, int line);
  Status VmError(const Frame& frame, size_t op_ip, const std::string& msg) const;

  const SchemaRegistry* registry_;
  Hooks hooks_;
  std::shared_ptr<Environment> base_env_;
  std::vector<std::weak_ptr<Environment>> session_envs_;
  size_t env_compact_threshold_ = 1024;
  // Installed for the VM's lifetime; its destructor (after ~Vm clears the
  // environments) empties surviving list/dict cells, breaking
  // self-referential container cycles the environment sweep can't reach.
  ContainerCycleBreaker cycle_breaker_;
  std::vector<Value> stack_;
  // Module environments loaded by kImportBegin, waiting for their filter.
  std::vector<std::shared_ptr<Environment>> pending_imports_;
  bool exports_enabled_ = false;
  uint64_t step_limit_ = 20'000'000;
  uint64_t steps_ = 0;
  int call_depth_ = 0;
};

}  // namespace configerator

#endif  // SRC_LANG_VM_H_
