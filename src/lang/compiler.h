// The Configerator compiler: turns config source code into validated JSON
// configs (paper §3.1).
//
// Given an entry file (a ".cconf"), the compiler:
//   1. evaluates it (and transitively everything it import_python()s),
//   2. loads every import_thrift()ed schema into a SchemaRegistry,
//   3. collects export_if_last()/export() values,
//   4. type-checks each schema-typed export, materializes defaults,
//   5. runs the schema's validators (functions `validate_<Struct>` defined in
//      "<schema>.thrift-cvalidator" files),
// and returns the generated JSON configs plus the full dependency list the
// Dependency Service uses for recompile-on-change.

#ifndef SRC_LANG_COMPILER_H_
#define SRC_LANG_COMPILER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/lang/interp.h"
#include "src/schema/schema.h"
#include "src/util/status.h"

namespace configerator {

class CompiledUnitCache;
class MetricsRegistry;

// Reads source files by path. Backed by an in-memory map in tests and by the
// VCS working tree in the pipeline.
using FileReader = std::function<Result<std::string>(const std::string&)>;

// Engine/caching knobs for the compiler. Both engines implement identical
// observable semantics — the differential battery in
// tests/vm_differential_test.cc holds them to bit-identical artifacts and
// byte-identical error messages — so callers pick purely on mechanics.
struct CompilerOptions {
  enum class Engine {
    // Compile each module to bytecode (content-hash cached) and run it on
    // the stack VM. The fast path, and the default.
    kBytecodeVm,
    // Tree-walking reference interpreter. The executable specification; kept
    // selectable for differential testing and for bisecting VM bugs.
    kInterpreter,
  };

  Engine engine = Engine::kBytecodeVm;
  // Bytecode cache shared across Compile() calls (e.g. one per Sandcastle
  // run). Null = the compiler keeps a private cache, which still dedups
  // recompiles of shared .cinc modules across entries. Hermeticity is
  // preserved either way: sources are re-read every call and units re-keyed
  // by content hash, so edits always take effect.
  CompiledUnitCache* unit_cache = nullptr;
  // Memoize each entry's whole validated output under its import-closure
  // digest (CSL is hermetic, so equal closures compile to byte-identical
  // artifacts). Steady-state recompiles of an unchanged entry then cost one
  // digest walk instead of an evaluation. Off = always evaluate — the
  // benchmark ablation, and an escape hatch for debugging.
  bool memoize_outputs = true;
  // Optional observability sink. The VM engine records
  // csl.unit_cache.{hits,misses} and csl.output_cache.{hits,misses}
  // counters and csl.{compile,execute}_micros histograms.
  MetricsRegistry* metrics = nullptr;
};

// One generated config.
struct CompiledConfig {
  std::string path;       // Output path, e.g. "feed/cache_job.json".
  std::string type_name;  // Schema struct name; empty for untyped exports.
  Json content;
};

// Result of compiling one entry file.
struct CompileOutput {
  std::vector<CompiledConfig> configs;
  // Every source file the entry transitively depends on (imported modules,
  // schema files, validator files) — the edges of the dependency graph.
  std::vector<std::string> dependencies;
};

class ConfigCompiler {
 public:
  explicit ConfigCompiler(FileReader reader);
  ConfigCompiler(FileReader reader, CompilerOptions options);
  ~ConfigCompiler();

  // Compiles one ".cconf" entry file. Each call is hermetic: schemas and
  // modules are re-read so source changes always take effect.
  Result<CompileOutput> Compile(const std::string& entry_path);

  // Derives the default output path for a source path:
  // "feed/cache_job.cconf" -> "feed/cache_job.json".
  static std::string OutputPathFor(const std::string& source_path);

 private:
  class Session;

  FileReader reader_;
  CompilerOptions options_;
  // Backing cache when the caller didn't provide one (VM engine only).
  std::unique_ptr<CompiledUnitCache> owned_unit_cache_;
};

// Convenience FileReader over an in-memory map.
class InMemorySources {
 public:
  void Put(std::string path, std::string content) {
    files_[std::move(path)] = std::move(content);
  }
  bool Contains(const std::string& path) const { return files_.count(path) > 0; }

  FileReader AsReader() const {
    return [this](const std::string& path) -> Result<std::string> {
      auto it = files_.find(path);
      if (it == files_.end()) {
        return NotFoundError("no such source file: " + path);
      }
      return it->second;
    };
  }

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace configerator

#endif  // SRC_LANG_COMPILER_H_
