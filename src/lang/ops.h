// Shared runtime semantics for the config source language.
//
// Both CSL engines — the tree-walking interpreter (the executable reference
// semantics) and the bytecode VM (the fast path) — must agree bit-for-bit on
// every operator result and byte-for-byte on every error message, because
// the differential fuzz battery compares them verbatim. These helpers are
// the single implementation both engines call; errors carry the bare message
// (no "origin:line:" prefix) and each engine prefixes its own position.

#ifndef SRC_LANG_OPS_H_
#define SRC_LANG_OPS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/lang/value.h"
#include "src/util/status.h"

namespace configerator {

// Non-short-circuit binary operators ("and"/"or" stay engine-specific
// because their operand evaluation is conditional).
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kFloorDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,
  kNotIn,
};

// Maps the parser's operator spelling to a BinOp; nullopt for "and"/"or"
// and anything unknown.
std::optional<BinOp> ParseBinOp(std::string_view op);

// The source spelling, for "operator '%s' needs numbers"-style messages.
std::string_view BinOpName(BinOp op);

// `lhs OP rhs` with Python-flavored semantics (floor division, `/` on ints
// yielding double, string repetition, list concatenation, ...).
Result<Value> EvalBinaryValues(BinOp op, const Value& lhs, const Value& rhs);

// Unary "-" / "not".
Result<Value> EvalUnaryValues(std::string_view op, const Value& operand);

// `base[key]` read.
Result<Value> EvalIndexGet(const Value& base, const Value& key);

// `base[key] = value`. Mutates through the value's reference semantics.
Status EvalIndexSet(Value& base, const Value& key, Value value);

// `base.name` read.
Result<Value> EvalAttrGet(const Value& base, const std::string& name);

// `base.name = value`.
Status EvalAttrSet(Value& base, const std::string& name, Value value);

// Materializes a for-loop's item sequence: a copy of a list's items, a
// dict's keys in sorted order, a string's characters. The copy is part of
// the language semantics — mutating the iterable inside the loop must not
// change the iteration.
Result<Value::List> IterableItems(const Value& iterable);

// Binds call arguments to parameters with the interpreter's exact rules and
// messages: positionals first, then keywords in sorted order, then defaults
// in parameter order. `has_default[i]` says whether parameter i has one;
// `define(i, v)` installs a binding; `eval_default(i)` evaluates default i
// in the callee's scope (so earlier parameters are visible).
Status BindCallArgs(
    const std::string& fn_name, const std::vector<std::string>& params,
    const std::vector<bool>& has_default, std::vector<Value> args,
    std::map<std::string, Value> kwargs,
    const std::function<void(size_t, Value)>& define,
    const std::function<Result<Value>(size_t)>& eval_default);

}  // namespace configerator

#endif  // SRC_LANG_OPS_H_
