// A memoizing front-end for ParseCsl. Sandcastle runs two analysis passes
// (ConfigLint and the abstract interpreter) over every file in a diff's
// reverse closure, and each pass used to re-parse both the file itself and
// every module it imports — the same shared .cinc could be parsed dozens of
// times per proposal. Parsed modules are immutable after ParseCsl (the
// interpreter, linter and abstract interpreter all hold const views), so one
// cache can hand the same shared_ptr<Module> to every pass.
//
// Scope one cache per analysis run (e.g. per Sandcastle::RunTests call):
// entries are keyed by path and invalidated when the content changes, and
// the cache is NOT thread-safe.

#ifndef SRC_LANG_AST_CACHE_H_
#define SRC_LANG_AST_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"

namespace configerator {

class AstCache {
 public:
  // Parses (path, content), reusing the previous parse when the content is
  // byte-identical. Non-fatal parse findings (duplicate dict keys) are
  // replayed into `lint_diags` on hits, so cached and fresh parses are
  // indistinguishable to callers. Failed parses are cached too.
  Result<std::shared_ptr<Module>> GetOrParse(
      const std::string& path, const std::string& content,
      std::vector<LintDiagnostic>* lint_diags = nullptr);

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string content;
    std::shared_ptr<Module> module;  // Null when the parse failed.
    Status error = OkStatus();
    std::vector<LintDiagnostic> parse_diags;
  };

  std::map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace configerator

#endif  // SRC_LANG_AST_CACHE_H_
