#include "src/lang/ops.h"

#include <algorithm>
#include <cmath>

#include "src/util/strings.h"

namespace configerator {

std::optional<BinOp> ParseBinOp(std::string_view op) {
  if (op == "+") return BinOp::kAdd;
  if (op == "-") return BinOp::kSub;
  if (op == "*") return BinOp::kMul;
  if (op == "/") return BinOp::kDiv;
  if (op == "//") return BinOp::kFloorDiv;
  if (op == "%") return BinOp::kMod;
  if (op == "==") return BinOp::kEq;
  if (op == "!=") return BinOp::kNe;
  if (op == "<") return BinOp::kLt;
  if (op == "<=") return BinOp::kLe;
  if (op == ">") return BinOp::kGt;
  if (op == ">=") return BinOp::kGe;
  if (op == "in") return BinOp::kIn;
  if (op == "not in") return BinOp::kNotIn;
  return std::nullopt;
}

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kFloorDiv:
      return "//";
    case BinOp::kMod:
      return "%";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kIn:
      return "in";
    case BinOp::kNotIn:
      return "not in";
  }
  return "?";
}

Result<Value> EvalBinaryValues(BinOp op, const Value& lhs, const Value& rhs) {
  if (op == BinOp::kEq) {
    return Value::Bool(lhs.Equals(rhs));
  }
  if (op == BinOp::kNe) {
    return Value::Bool(!lhs.Equals(rhs));
  }
  if (op == BinOp::kIn || op == BinOp::kNotIn) {
    bool contains = false;
    if (rhs.is_list()) {
      for (const Value& item : rhs.as_list()) {
        if (item.Equals(lhs)) {
          contains = true;
          break;
        }
      }
    } else if (rhs.is_dict()) {
      if (!lhs.is_string()) {
        return InvalidConfigError("'in <dict>' needs a string key");
      }
      contains = rhs.as_dict().count(lhs.as_string()) > 0;
    } else if (rhs.is_string()) {
      if (!lhs.is_string()) {
        return InvalidConfigError("'in <string>' needs a string");
      }
      contains = rhs.as_string().find(lhs.as_string()) != std::string::npos;
    } else {
      return InvalidConfigError(
          "'in' right operand must be list, dict or string");
    }
    return Value::Bool(op == BinOp::kIn ? contains : !contains);
  }

  // Ordering comparisons.
  if (op == BinOp::kLt || op == BinOp::kLe || op == BinOp::kGt ||
      op == BinOp::kGe) {
    int cmp = 0;
    if (lhs.is_number() && rhs.is_number()) {
      double a = lhs.as_double();
      double b = rhs.as_double();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else if (lhs.is_string() && rhs.is_string()) {
      cmp = lhs.as_string().compare(rhs.as_string());
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    } else {
      return InvalidConfigError(
          StrFormat("cannot compare %s and %s",
                    std::string(lhs.KindName()).c_str(),
                    std::string(rhs.KindName()).c_str()));
    }
    if (op == BinOp::kLt) {
      return Value::Bool(cmp < 0);
    }
    if (op == BinOp::kLe) {
      return Value::Bool(cmp <= 0);
    }
    if (op == BinOp::kGt) {
      return Value::Bool(cmp > 0);
    }
    return Value::Bool(cmp >= 0);
  }

  // Arithmetic and concatenation.
  if (op == BinOp::kAdd) {
    if (lhs.is_int() && rhs.is_int()) {
      return Value::Int(lhs.as_int() + rhs.as_int());
    }
    if (lhs.is_number() && rhs.is_number()) {
      return Value::Double(lhs.as_double() + rhs.as_double());
    }
    if (lhs.is_string() && rhs.is_string()) {
      return Value::Str(lhs.as_string() + rhs.as_string());
    }
    if (lhs.is_list() && rhs.is_list()) {
      Value::List combined = lhs.as_list();
      for (const Value& v : rhs.as_list()) {
        combined.push_back(v);
      }
      return Value::MakeList(std::move(combined));
    }
    return InvalidConfigError(StrFormat(
        "cannot add %s and %s", std::string(lhs.KindName()).c_str(),
        std::string(rhs.KindName()).c_str()));
  }

  if (op == BinOp::kMul && lhs.is_string() && rhs.is_int()) {
    std::string out;
    for (int64_t i = 0; i < rhs.as_int(); ++i) {
      out += lhs.as_string();
    }
    return Value::Str(std::move(out));
  }
  if (!lhs.is_number() || !rhs.is_number()) {
    return InvalidConfigError(StrFormat("operator '%s' needs numbers",
                                        std::string(BinOpName(op)).c_str()));
  }
  if (lhs.is_int() && rhs.is_int()) {
    int64_t a = lhs.as_int();
    int64_t b = rhs.as_int();
    if (op == BinOp::kSub) {
      return Value::Int(a - b);
    }
    if (op == BinOp::kMul) {
      return Value::Int(a * b);
    }
    if (b == 0) {
      return InvalidConfigError("division by zero");
    }
    if (op == BinOp::kFloorDiv) {
      // Floor division, Python semantics.
      int64_t q = a / b;
      if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --q;
      }
      return Value::Int(q);
    }
    if (op == BinOp::kMod) {
      int64_t r = a % b;
      if (r != 0 && ((r < 0) != (b < 0))) {
        r += b;
      }
      return Value::Int(r);
    }
    // "/" on ints yields double, Python 3 semantics.
    return Value::Double(static_cast<double>(a) / static_cast<double>(b));
  }
  double a = lhs.as_double();
  double b = rhs.as_double();
  if (op == BinOp::kSub) {
    return Value::Double(a - b);
  }
  if (op == BinOp::kMul) {
    return Value::Double(a * b);
  }
  if (b == 0) {
    return InvalidConfigError("division by zero");
  }
  if (op == BinOp::kFloorDiv) {
    return Value::Double(std::floor(a / b));
  }
  if (op == BinOp::kMod) {
    return Value::Double(std::fmod(a, b));
  }
  return Value::Double(a / b);
}

Result<Value> EvalUnaryValues(std::string_view op, const Value& operand) {
  if (op == "not") {
    return Value::Bool(!operand.Truthy());
  }
  if (op == "-") {
    if (operand.is_int()) {
      return Value::Int(-operand.as_int());
    }
    if (operand.is_double()) {
      return Value::Double(-operand.as_double());
    }
    return InvalidConfigError("unary '-' needs a number");
  }
  return InvalidConfigError("unknown unary operator");
}

Result<Value> EvalIndexGet(const Value& base, const Value& key) {
  if (base.is_dict()) {
    if (!key.is_string()) {
      return InvalidConfigError("dict keys must be strings");
    }
    auto it = base.as_dict().find(key.as_string());
    if (it == base.as_dict().end()) {
      return InvalidConfigError("key '" + key.as_string() + "' not found");
    }
    return it->second;
  }
  if (base.is_list()) {
    if (!key.is_int()) {
      return InvalidConfigError("list index must be an integer");
    }
    int64_t idx = key.as_int();
    const auto& list = base.as_list();
    if (idx < 0) {
      idx += static_cast<int64_t>(list.size());
    }
    if (idx < 0 || idx >= static_cast<int64_t>(list.size())) {
      return InvalidConfigError("list index out of range");
    }
    return list[static_cast<size_t>(idx)];
  }
  if (base.is_string()) {
    if (!key.is_int()) {
      return InvalidConfigError("string index must be an integer");
    }
    int64_t idx = key.as_int();
    const std::string& s = base.as_string();
    if (idx < 0) {
      idx += static_cast<int64_t>(s.size());
    }
    if (idx < 0 || idx >= static_cast<int64_t>(s.size())) {
      return InvalidConfigError("string index out of range");
    }
    return Value::Str(std::string(1, s[static_cast<size_t>(idx)]));
  }
  return InvalidConfigError("cannot index " + std::string(base.KindName()));
}

Status EvalIndexSet(Value& base, const Value& key, Value value) {
  if (base.is_dict()) {
    if (!key.is_string()) {
      return InvalidConfigError("dict keys must be strings");
    }
    base.as_dict()[key.as_string()] = std::move(value);
    return OkStatus();
  }
  if (base.is_list()) {
    if (!key.is_int()) {
      return InvalidConfigError("list index must be an integer");
    }
    int64_t idx = key.as_int();
    auto& list = base.as_list();
    if (idx < 0) {
      idx += static_cast<int64_t>(list.size());
    }
    if (idx < 0 || idx >= static_cast<int64_t>(list.size())) {
      return InvalidConfigError("list index out of range");
    }
    list[static_cast<size_t>(idx)] = std::move(value);
    return OkStatus();
  }
  return InvalidConfigError("cannot index " + std::string(base.KindName()));
}

Result<Value> EvalAttrGet(const Value& base, const std::string& name) {
  if (base.is_dict()) {
    auto it = base.as_dict().find(name);
    if (it == base.as_dict().end()) {
      return InvalidConfigError(
          StrFormat("%s has no attribute '%s'",
                    std::string(base.KindName()).c_str(), name.c_str()));
    }
    return it->second;
  }
  return InvalidConfigError(
      StrFormat("cannot access attribute '%s' on %s", name.c_str(),
                std::string(base.KindName()).c_str()));
}

Status EvalAttrSet(Value& base, const std::string& name, Value value) {
  if (!base.is_dict()) {
    return InvalidConfigError("cannot set attribute on " +
                              std::string(base.KindName()));
  }
  base.as_dict()[name] = std::move(value);
  return OkStatus();
}

Result<Value::List> IterableItems(const Value& iterable) {
  std::vector<Value> items;
  if (iterable.is_list()) {
    items = iterable.as_list();
  } else if (iterable.is_dict()) {
    // Iterating a dict yields its keys, like Python.
    for (const auto& [k, v] : iterable.as_dict()) {
      items.push_back(Value::Str(k));
    }
  } else if (iterable.is_string()) {
    for (char c : iterable.as_string()) {
      items.push_back(Value::Str(std::string(1, c)));
    }
  } else {
    return InvalidConfigError("for-loop target is not iterable");
  }
  return items;
}

Status BindCallArgs(
    const std::string& fn_name, const std::vector<std::string>& params,
    const std::vector<bool>& has_default, std::vector<Value> args,
    std::map<std::string, Value> kwargs,
    const std::function<void(size_t, Value)>& define,
    const std::function<Result<Value>(size_t)>& eval_default) {
  size_t n_params = params.size();
  if (args.size() > n_params) {
    return InvalidArgumentError(
        StrFormat("%s() takes at most %zu arguments (%zu given)",
                  fn_name.c_str(), n_params, args.size()));
  }
  std::vector<bool> bound(n_params, false);
  for (size_t i = 0; i < args.size(); ++i) {
    define(i, std::move(args[i]));
    bound[i] = true;
  }
  for (auto& [kw, value] : kwargs) {
    auto it = std::find(params.begin(), params.end(), kw);
    if (it == params.end()) {
      return InvalidArgumentError(
          StrFormat("%s() got unexpected keyword argument '%s'",
                    fn_name.c_str(), kw.c_str()));
    }
    size_t idx = static_cast<size_t>(it - params.begin());
    if (bound[idx]) {
      return InvalidArgumentError(StrFormat("%s() got multiple values for '%s'",
                                            fn_name.c_str(), kw.c_str()));
    }
    define(idx, std::move(value));
    bound[idx] = true;
  }
  for (size_t i = 0; i < n_params; ++i) {
    if (bound[i]) {
      continue;
    }
    if (has_default[i]) {
      auto dflt = eval_default(i);
      if (!dflt.ok()) {
        return dflt.status();
      }
      define(i, std::move(dflt).value());
    } else {
      return InvalidArgumentError(
          StrFormat("%s() missing required argument '%s'", fn_name.c_str(),
                    params[i].c_str()));
    }
  }
  return OkStatus();
}

}  // namespace configerator
