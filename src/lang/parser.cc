#include <cstdlib>

#include "src/lang/ast.h"
#include "src/lang/lexer.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

#define RETURN_IF_ERROR_R(expr)              \
  do {                                       \
    ::configerator::Status _s = (expr);      \
    if (!_s.ok()) {                          \
      return _s;                             \
    }                                        \
  } while (false)

bool IsKeyword(std::string_view word) {
  static constexpr std::string_view kKeywords[] = {
      "def",   "return", "if",   "elif",     "else", "for",  "in",
      "while", "break",  "continue", "pass", "assert", "not", "and",
      "or",    "True",   "False", "None",
  };
  for (std::string_view k : kKeywords) {
    if (k == word) {
      return true;
    }
  }
  return false;
}

class CslParser {
 public:
  CslParser(std::vector<CslToken> tokens, std::string origin,
            std::vector<LintDiagnostic>* lint_diags)
      : tokens_(std::move(tokens)), origin_(std::move(origin)),
        lint_diags_(lint_diags) {}

  Result<std::shared_ptr<Module>> Run() {
    auto module = std::make_shared<Module>();
    module->path = origin_;
    while (!At(CslToken::Kind::kEof)) {
      ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      module->body.push_back(std::move(stmt));
    }
    return module;
  }

 private:
  const CslToken& Cur() const { return tokens_[pos_]; }

  bool At(CslToken::Kind kind) const { return Cur().kind == kind; }
  bool AtOp(std::string_view op) const { return Cur().IsOp(op); }
  bool AtName(std::string_view name) const { return Cur().IsName(name); }

  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }

  Status Error(const std::string& msg) const {
    return InvalidArgumentError(
        StrFormat("%s:%d: %s (near '%s')", origin_.c_str(), Cur().line,
                  msg.c_str(), Cur().text.c_str()));
  }

  Status ExpectOp(std::string_view op) {
    if (!AtOp(op)) {
      return Error(StrFormat("expected '%s'", std::string(op).c_str()));
    }
    Advance();
    return OkStatus();
  }

  Status ExpectNewline() {
    if (!At(CslToken::Kind::kNewline)) {
      return Error("expected end of statement");
    }
    Advance();
    return OkStatus();
  }

  ExprPtr NewExpr(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = Cur().line;
    return e;
  }

  StmtPtr NewStmt(Stmt::Kind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = Cur().line;
    return s;
  }

  // block: NEWLINE INDENT stmt+ DEDENT
  Result<std::vector<StmtPtr>> ParseBlock() {
    RETURN_IF_ERROR_R(ExpectOp(":"));
    RETURN_IF_ERROR_R(ExpectNewline());
    if (!At(CslToken::Kind::kIndent)) {
      return Error("expected indented block");
    }
    Advance();
    std::vector<StmtPtr> body;
    while (!At(CslToken::Kind::kDedent) && !At(CslToken::Kind::kEof)) {
      ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      body.push_back(std::move(stmt));
    }
    if (At(CslToken::Kind::kDedent)) {
      Advance();
    }
    if (body.empty()) {
      return Error("empty block");
    }
    return body;
  }

  Result<StmtPtr> ParseStatement() {
    if (At(CslToken::Kind::kName)) {
      const std::string& word = Cur().text;
      if (word == "def") {
        return ParseDef();
      }
      if (word == "if") {
        return ParseIf();
      }
      if (word == "for") {
        return ParseFor();
      }
      if (word == "while") {
        return ParseWhile();
      }
      if (word == "return") {
        auto stmt = NewStmt(Stmt::Kind::kReturn);
        Advance();
        if (!At(CslToken::Kind::kNewline)) {
          ASSIGN_OR_RETURN(stmt->target, ParseExpression());
        }
        RETURN_IF_ERROR_R(ExpectNewline());
        return stmt;
      }
      if (word == "assert") {
        auto stmt = NewStmt(Stmt::Kind::kAssert);
        Advance();
        ASSIGN_OR_RETURN(stmt->target, ParseExpression());
        if (AtOp(",")) {
          Advance();
          ASSIGN_OR_RETURN(stmt->value, ParseExpression());
        }
        RETURN_IF_ERROR_R(ExpectNewline());
        return stmt;
      }
      if (word == "pass" || word == "break" || word == "continue") {
        auto stmt = NewStmt(word == "pass" ? Stmt::Kind::kPass
                            : word == "break" ? Stmt::Kind::kBreak
                                              : Stmt::Kind::kContinue);
        Advance();
        RETURN_IF_ERROR_R(ExpectNewline());
        return stmt;
      }
    }
    // Expression statement or assignment.
    ASSIGN_OR_RETURN(ExprPtr first, ParseExpression());
    if (AtOp("=")) {
      Advance();
      auto stmt = NewStmt(Stmt::Kind::kAssign);
      RETURN_IF_ERROR_R(ValidateAssignTarget(*first));
      stmt->target = std::move(first);
      ASSIGN_OR_RETURN(stmt->value, ParseExpression());
      RETURN_IF_ERROR_R(ExpectNewline());
      return stmt;
    }
    for (std::string_view aug : {"+=", "-=", "*=", "/="}) {
      if (AtOp(aug)) {
        Advance();
        auto stmt = NewStmt(Stmt::Kind::kAugAssign);
        RETURN_IF_ERROR_R(ValidateAssignTarget(*first));
        stmt->op = std::string(aug.substr(0, 1));
        stmt->target = std::move(first);
        ASSIGN_OR_RETURN(stmt->value, ParseExpression());
        RETURN_IF_ERROR_R(ExpectNewline());
        return stmt;
      }
    }
    auto stmt = NewStmt(Stmt::Kind::kExpr);
    stmt->target = std::move(first);
    RETURN_IF_ERROR_R(ExpectNewline());
    return stmt;
  }

  Status ValidateAssignTarget(const Expr& e) {
    if (e.kind == Expr::Kind::kName || e.kind == Expr::Kind::kAttr ||
        e.kind == Expr::Kind::kIndex) {
      return OkStatus();
    }
    return Error("invalid assignment target");
  }

  Result<StmtPtr> ParseDef() {
    auto stmt = NewStmt(Stmt::Kind::kDef);
    Advance();  // def
    if (!At(CslToken::Kind::kName) || IsKeyword(Cur().text)) {
      return Error("expected function name");
    }
    auto def = std::make_unique<FunctionDefStmt>();
    def->name = Cur().text;
    def->line = Cur().line;
    def->origin = origin_;
    Advance();
    RETURN_IF_ERROR_R(ExpectOp("("));
    bool saw_default = false;
    while (!AtOp(")")) {
      if (!At(CslToken::Kind::kName) || IsKeyword(Cur().text)) {
        return Error("expected parameter name");
      }
      def->params.push_back(Cur().text);
      Advance();
      if (AtOp("=")) {
        Advance();
        saw_default = true;
        ASSIGN_OR_RETURN(ExprPtr dflt, ParseExpression());
        def->defaults.push_back(std::move(dflt));
      } else {
        if (saw_default) {
          return Error("non-default parameter after default parameter");
        }
        def->defaults.push_back(nullptr);
      }
      if (AtOp(",")) {
        Advance();
      } else if (!AtOp(")")) {
        return Error("expected ',' or ')' in parameter list");
      }
    }
    Advance();  // ')'
    ASSIGN_OR_RETURN(def->body, ParseBlock());
    stmt->def = std::move(def);
    return stmt;
  }

  Result<StmtPtr> ParseIf() {
    auto stmt = NewStmt(Stmt::Kind::kIf);
    Advance();  // if / elif
    ASSIGN_OR_RETURN(stmt->target, ParseExpression());
    ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    if (AtName("elif")) {
      ASSIGN_OR_RETURN(StmtPtr nested, ParseIf());
      stmt->orelse.push_back(std::move(nested));
    } else if (AtName("else")) {
      Advance();
      ASSIGN_OR_RETURN(stmt->orelse, ParseBlock());
    }
    return stmt;
  }

  Result<StmtPtr> ParseFor() {
    auto stmt = NewStmt(Stmt::Kind::kFor);
    Advance();  // for
    while (true) {
      if (!At(CslToken::Kind::kName) || IsKeyword(Cur().text)) {
        return Error("expected loop variable");
      }
      stmt->loop_vars.push_back(Cur().text);
      Advance();
      if (AtOp(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (!AtName("in")) {
      return Error("expected 'in'");
    }
    Advance();
    ASSIGN_OR_RETURN(stmt->value, ParseExpression());
    ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  Result<StmtPtr> ParseWhile() {
    auto stmt = NewStmt(Stmt::Kind::kWhile);
    Advance();  // while
    ASSIGN_OR_RETURN(stmt->target, ParseExpression());
    ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  // expression: or_expr ['if' or_expr 'else' expression]
  Result<ExprPtr> ParseExpression() {
    ASSIGN_OR_RETURN(ExprPtr value, ParseOr());
    if (AtName("if")) {
      auto ternary = NewExpr(Expr::Kind::kTernary);
      Advance();
      ASSIGN_OR_RETURN(ternary->rhs, ParseOr());  // condition
      if (!AtName("else")) {
        return Error("expected 'else' in conditional expression");
      }
      Advance();
      ASSIGN_OR_RETURN(ternary->third, ParseExpression());
      ternary->lhs = std::move(value);
      return ternary;
    }
    return value;
  }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AtName("or")) {
      auto bin = NewExpr(Expr::Kind::kBinary);
      bin->name = "or";
      Advance();
      ASSIGN_OR_RETURN(bin->rhs, ParseAnd());
      bin->lhs = std::move(lhs);
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AtName("and")) {
      auto bin = NewExpr(Expr::Kind::kBinary);
      bin->name = "and";
      Advance();
      ASSIGN_OR_RETURN(bin->rhs, ParseNot());
      bin->lhs = std::move(lhs);
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AtName("not")) {
      auto unary = NewExpr(Expr::Kind::kUnary);
      unary->name = "not";
      Advance();
      ASSIGN_OR_RETURN(unary->lhs, ParseNot());
      return unary;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      std::string op;
      if (AtOp("==") || AtOp("!=") || AtOp("<") || AtOp("<=") || AtOp(">") ||
          AtOp(">=")) {
        op = Cur().text;
        Advance();
      } else if (AtName("in")) {
        op = "in";
        Advance();
      } else if (AtName("not")) {
        // "not in"
        Advance();
        if (!AtName("in")) {
          return Error("expected 'in' after 'not'");
        }
        Advance();
        op = "not in";
      } else {
        break;
      }
      auto bin = NewExpr(Expr::Kind::kBinary);
      bin->name = op;
      ASSIGN_OR_RETURN(bin->rhs, ParseAdditive());
      bin->lhs = std::move(lhs);
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (AtOp("+") || AtOp("-")) {
      auto bin = NewExpr(Expr::Kind::kBinary);
      bin->name = Cur().text;
      Advance();
      ASSIGN_OR_RETURN(bin->rhs, ParseMultiplicative());
      bin->lhs = std::move(lhs);
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (AtOp("*") || AtOp("/") || AtOp("%") || AtOp("//")) {
      auto bin = NewExpr(Expr::Kind::kBinary);
      bin->name = Cur().text;
      Advance();
      ASSIGN_OR_RETURN(bin->rhs, ParseUnary());
      bin->lhs = std::move(lhs);
      lhs = std::move(bin);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (AtOp("-")) {
      auto unary = NewExpr(Expr::Kind::kUnary);
      unary->name = "-";
      Advance();
      ASSIGN_OR_RETURN(unary->lhs, ParseUnary());
      return unary;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    ASSIGN_OR_RETURN(ExprPtr base, ParsePrimary());
    while (true) {
      if (AtOp("(")) {
        ASSIGN_OR_RETURN(base, ParseCall(std::move(base)));
      } else if (AtOp(".")) {
        Advance();
        if (!At(CslToken::Kind::kName)) {
          return Error("expected attribute name after '.'");
        }
        auto attr = NewExpr(Expr::Kind::kAttr);
        attr->name = Cur().text;
        attr->lhs = std::move(base);
        Advance();
        base = std::move(attr);
      } else if (AtOp("[")) {
        Advance();
        auto index = NewExpr(Expr::Kind::kIndex);
        ASSIGN_OR_RETURN(index->rhs, ParseExpression());
        RETURN_IF_ERROR_R(ExpectOp("]"));
        index->lhs = std::move(base);
        base = std::move(index);
      } else {
        break;
      }
    }
    return base;
  }

  Result<ExprPtr> ParseCall(ExprPtr callee) {
    auto call = NewExpr(Expr::Kind::kCall);
    call->lhs = std::move(callee);
    Advance();  // '('
    bool saw_kwarg = false;
    while (!AtOp(")")) {
      // Keyword argument: NAME '=' expr (where '=' is not '==').
      if (At(CslToken::Kind::kName) && !IsKeyword(Cur().text) &&
          pos_ + 1 < tokens_.size() && tokens_[pos_ + 1].IsOp("=")) {
        std::string kw = Cur().text;
        for (const auto& [existing, value_expr] : call->kwargs) {
          if (existing == kw) {
            return Error("duplicate keyword argument '" + kw + "'");
          }
        }
        Advance();
        Advance();  // '='
        ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
        call->kwargs.emplace_back(std::move(kw), std::move(value));
        saw_kwarg = true;
      } else {
        if (saw_kwarg) {
          return Error("positional argument after keyword argument");
        }
        ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
        call->items.push_back(std::move(value));
      }
      if (AtOp(",")) {
        Advance();
      } else if (!AtOp(")")) {
        return Error("expected ',' or ')' in argument list");
      }
    }
    Advance();  // ')'
    return call;
  }

  Result<ExprPtr> ParsePrimary() {
    switch (Cur().kind) {
      case CslToken::Kind::kInt: {
        auto e = NewExpr(Expr::Kind::kLiteral);
        e->literal = Value::Int(std::strtoll(Cur().text.c_str(), nullptr, 10));
        Advance();
        return e;
      }
      case CslToken::Kind::kFloat: {
        auto e = NewExpr(Expr::Kind::kLiteral);
        e->literal = Value::Double(std::strtod(Cur().text.c_str(), nullptr));
        Advance();
        return e;
      }
      case CslToken::Kind::kString: {
        auto e = NewExpr(Expr::Kind::kLiteral);
        e->literal = Value::Str(Cur().text);
        Advance();
        return e;
      }
      case CslToken::Kind::kName: {
        const std::string& word = Cur().text;
        if (word == "True" || word == "False") {
          auto e = NewExpr(Expr::Kind::kLiteral);
          e->literal = Value::Bool(word == "True");
          Advance();
          return e;
        }
        if (word == "None") {
          auto e = NewExpr(Expr::Kind::kLiteral);
          e->literal = Value::Null();
          Advance();
          return e;
        }
        if (IsKeyword(word)) {
          return Error("unexpected keyword '" + word + "'");
        }
        auto e = NewExpr(Expr::Kind::kName);
        e->name = word;
        Advance();
        return e;
      }
      case CslToken::Kind::kOp: {
        if (AtOp("(")) {
          Advance();
          ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
          RETURN_IF_ERROR_R(ExpectOp(")"));
          return inner;
        }
        if (AtOp("[")) {
          Advance();
          auto list = NewExpr(Expr::Kind::kList);
          while (!AtOp("]")) {
            ASSIGN_OR_RETURN(ExprPtr item, ParseExpression());
            list->items.push_back(std::move(item));
            if (AtOp(",")) {
              Advance();
            } else if (!AtOp("]")) {
              return Error("expected ',' or ']' in list");
            }
          }
          Advance();
          return list;
        }
        if (AtOp("{")) {
          Advance();
          auto dict = NewExpr(Expr::Kind::kDict);
          while (!AtOp("}")) {
            ASSIGN_OR_RETURN(ExprPtr key, ParseExpression());
            NoteDictKey(*dict, *key);
            RETURN_IF_ERROR_R(ExpectOp(":"));
            ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
            dict->pairs.emplace_back(std::move(key), std::move(value));
            if (AtOp(",")) {
              Advance();
            } else if (!AtOp("}")) {
              return Error("expected ',' or '}' in dict");
            }
          }
          Advance();
          return dict;
        }
        return Error("unexpected token");
      }
      default:
        return Error("unexpected token");
    }
  }

  // Diagnoses a constant key already present in the literal being parsed
  // (evaluation is last-write-wins, so the earlier entry is silently dead).
  void NoteDictKey(const Expr& dict, const Expr& key) {
    if (lint_diags_ == nullptr || key.kind != Expr::Kind::kLiteral ||
        !key.literal.is_string()) {
      return;
    }
    for (const auto& [existing_key, existing_value] : dict.pairs) {
      if (existing_key->kind == Expr::Kind::kLiteral &&
          existing_key->literal.is_string() &&
          existing_key->literal.as_string() == key.literal.as_string()) {
        LintDiagnostic diag;
        diag.rule_id = "L005";
        diag.severity = LintSeverity::kError;
        diag.file = origin_;
        diag.line = key.line;
        diag.message = "duplicate dict key \"" + key.literal.as_string() +
                       "\" (first defined on line " +
                       std::to_string(existing_key->line) +
                       "; the earlier value is silently discarded)";
        diag.suggestion = "remove one of the entries";
        lint_diags_->push_back(std::move(diag));
        return;
      }
    }
  }

  std::vector<CslToken> tokens_;
  std::string origin_;
  std::vector<LintDiagnostic>* lint_diags_;
  size_t pos_ = 0;
};

#undef RETURN_IF_ERROR_R

}  // namespace

Result<std::shared_ptr<Module>> ParseCsl(std::string_view source,
                                         const std::string& origin,
                                         std::vector<LintDiagnostic>* lint_diags) {
  ASSIGN_OR_RETURN(std::vector<CslToken> tokens, TokenizeCsl(source, origin));
  return CslParser(std::move(tokens), origin, lint_diags).Run();
}

}  // namespace configerator
