// Runtime value model for the config source language (CSL).
//
// The paper's config sources are "Python files manipulating Thrift objects".
// CSL reproduces that shape: values are null/bool/int/double/string, lists,
// dicts, schema-typed objects (a dict tagged with its Thrift struct name),
// and functions. Lists and dicts have reference semantics (shared_ptr) so
// `job.limits["x"] = 1` mutates the object, as in Python.

#ifndef SRC_LANG_VALUE_H_
#define SRC_LANG_VALUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/util/status.h"

namespace configerator {

class Value;
class Environment;
class ContainerCycleBreaker;
struct FunctionDefStmt;    // AST node, defined in ast.h.
struct CompiledFunction;   // Bytecode form, defined in bytecode.h.

// A user-defined function plus the environment it closed over. Exactly one
// of `def` (tree-walking interpreter) or `compiled` (bytecode VM) is set,
// depending on which engine created the closure.
struct Closure {
  const FunctionDefStmt* def = nullptr;
  const CompiledFunction* compiled = nullptr;
  std::shared_ptr<Environment> env;
};

// A native (C++-implemented) function. Receives evaluated positional args and
// keyword args.
using NativeFn = std::function<Result<Value>(
    std::vector<Value>& args, std::map<std::string, Value>& kwargs)>;

struct NativeFunction {
  std::string name;
  NativeFn fn;
};

class Value {
 public:
  enum class Kind {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kList,
    kDict,
    kClosure,
    kNative,
  };

  using List = std::vector<Value>;
  using Dict = std::map<std::string, Value>;  // Sorted: deterministic exports.

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Double(double d);
  static Value Str(std::string s);
  static Value MakeList();
  static Value MakeList(List items);
  static Value MakeDict();
  static Value MakeDict(Dict items, std::string type_name = "");
  static Value MakeClosure(Closure c);
  static Value MakeNative(std::string name, NativeFn fn);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_dict() const { return kind_ == Kind::kDict; }
  bool is_callable() const {
    return kind_ == Kind::kClosure || kind_ == Kind::kNative;
  }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return int_; }
  double as_double() const { return is_int() ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return *string_; }
  List& as_list() { return *list_; }
  const List& as_list() const { return *list_; }
  Dict& as_dict() { return *dict_; }
  const Dict& as_dict() const { return *dict_; }
  const Closure& as_closure() const { return *closure_; }
  const NativeFunction& as_native() const { return *native_; }

  // Schema type tag for dicts created by a struct constructor ("Job").
  // Empty for plain dicts.
  const std::string& type_name() const { return type_name_; }
  void set_type_name(std::string name) { type_name_ = std::move(name); }

  // Python-style truthiness: None/False/0/""/[]/{} are false.
  bool Truthy() const;

  // Deep structural equality (functions compare by identity).
  bool Equals(const Value& other) const;

  // "int", "list", ... for error messages.
  std::string_view KindName() const;

  // Debug/display rendering (repr-like). Truncates beyond a depth cap, so
  // it is safe on self-referential containers.
  std::string ToDebugString() const { return ToDebugStringInternal(0); }

  // Converts to JSON for export. Fails on functions and on pathologically
  // deep (or self-referential — the language permits `d["self"] = d`)
  // structures.
  Result<Json> ToJson() const { return ToJsonInternal(0); }

  // Builds a value from JSON (plain dicts/lists; no type tags).
  static Value FromJson(const Json& json);

 private:
  friend class ContainerCycleBreaker;  // Traverses cells to find cycles.

  Result<Json> ToJsonInternal(int depth) const;
  std::string ToDebugStringInternal(int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::shared_ptr<std::string> string_;
  std::shared_ptr<List> list_;
  std::shared_ptr<Dict> dict_;
  std::shared_ptr<Closure> closure_;
  std::shared_ptr<NativeFunction> native_;
  std::string type_name_;
};

// Breaks shared_ptr cycles through mutable containers. The language permits
// self-referential structures (`d["self"] = d`) whose cells keep each other
// alive after the last outside reference drops; clearing environments at
// engine teardown cannot reach a cycle that no longer hangs off any scope.
// While a breaker is installed, every list/dict cell Value creates on this
// thread is tracked weakly; BreakCycles() empties exactly the surviving
// cells that can reach themselves through container edges — cyclic
// structures are dismantled, while acyclic values that legitimately
// outlive the engine (a caller holding an evaluation result) are left
// intact. The engines install one for their lifetime (so every cell an
// evaluation can create is covered) and break cycles on destruction,
// right after clearing their environments — which is what guarantees the
// remaining cycles run purely through containers. Installations form a
// per-thread chain; a breaker destroyed out of order (e.g. replacing an
// engine via `ptr = std::make_unique<Engine>(...)`, which constructs the
// new breaker before destroying the old) splices itself out safely.
class ContainerCycleBreaker {
 public:
  ContainerCycleBreaker();
  ~ContainerCycleBreaker();  // BreakCycles(), then uninstalls.
  ContainerCycleBreaker(const ContainerCycleBreaker&) = delete;
  ContainerCycleBreaker& operator=(const ContainerCycleBreaker&) = delete;

  // Empties every still-alive tracked cell that participates in a
  // reference cycle.
  void BreakCycles();

 private:
  friend class Value;
  static ContainerCycleBreaker*& Current();
  void Track(const std::shared_ptr<Value::List>& cell);
  void Track(const std::shared_ptr<Value::Dict>& cell);
  void MaybeCompact();

  std::vector<std::weak_ptr<Value::List>> lists_;
  std::vector<std::weak_ptr<Value::Dict>> dicts_;
  size_t compact_threshold_ = 1024;
  ContainerCycleBreaker* prev_ = nullptr;
};

}  // namespace configerator

#endif  // SRC_LANG_VALUE_H_
