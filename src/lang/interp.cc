#include "src/lang/interp.h"

#include <algorithm>
#include <cmath>

#include "src/lang/builtins.h"
#include "src/lang/import_resolver.h"
#include "src/lang/ops.h"
#include "src/util/strings.h"

namespace configerator {

namespace {

#define RETURN_IF_ERROR_R(expr)              \
  do {                                       \
    ::configerator::Status _s = (expr);      \
    if (!_s.ok()) {                          \
      return _s;                             \
    }                                        \
  } while (false)

constexpr int kMaxCallDepth = 200;

}  // namespace

Value* Environment::Find(const std::string& name) {
  Environment* env = this;
  while (env != nullptr) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) {
      return &it->second;
    }
    env = env->parent_.get();
  }
  return nullptr;
}

Interp::Interp(const SchemaRegistry* registry, Hooks hooks)
    : registry_(registry), hooks_(std::move(hooks)) {}

Interp::~Interp() {
  // Break closure <-> environment shared_ptr cycles so the whole session's
  // values are reclaimed.
  for (const std::weak_ptr<Environment>& weak : session_envs_) {
    if (std::shared_ptr<Environment> env = weak.lock()) {
      env->Clear();
    }
  }
  if (base_env_ != nullptr) {
    base_env_->Clear();
  }
}

std::shared_ptr<Environment> Interp::NewEnvironment(
    std::shared_ptr<Environment> parent) {
  // Compact expired registrations occasionally so long evaluations (many
  // short-lived call frames) don't accumulate dead weak_ptrs.
  if (session_envs_.size() >= env_compact_threshold_) {
    std::erase_if(session_envs_,
                  [](const std::weak_ptr<Environment>& weak) {
                    return weak.expired();
                  });
    env_compact_threshold_ =
        std::max<size_t>(1024, session_envs_.size() * 2);
  }
  auto env = std::make_shared<Environment>(std::move(parent));
  session_envs_.push_back(env);
  return env;
}

Status Interp::Tick(int line) {
  if (++steps_ > step_limit_) {
    return EvalError(line, "evaluation step limit exceeded (runaway config code?)");
  }
  return OkStatus();
}

Status Interp::EvalError(int line, const std::string& msg) const {
  return InvalidConfigError(
      StrFormat("%s:%d: %s", current_origin_.c_str(), line, msg.c_str()));
}

std::shared_ptr<Environment> Interp::MakeBaseEnvironment() {
  if (base_env_ == nullptr) {
    // Builtins live in a shared immutable parent scope; only the session's
    // schema constructors / enum namespaces go in this (mutable) layer.
    base_env_ = std::make_shared<Environment>(SharedBuiltinsEnvironment());
    if (registry_ != nullptr) {
      RegisterSchemaConstructors(*registry_, base_env_.get());
    }
  }
  return base_env_;
}

Status Interp::EvalModule(const Module& module,
                          const std::shared_ptr<Environment>& globals,
                          bool exports_enabled) {
  std::string saved_origin = current_origin_;
  bool saved_exports = exports_enabled_;
  current_origin_ = module.path;
  exports_enabled_ = exports_enabled;
  steps_ = 0;

  auto restore = [&] {
    current_origin_ = saved_origin;
    exports_enabled_ = saved_exports;
  };

  auto flow = ExecBlock(module.body, globals);
  restore();
  if (!flow.ok()) {
    return flow.status();
  }
  return OkStatus();
}

Result<Interp::Flow> Interp::ExecBlock(const std::vector<StmtPtr>& body,
                                       const std::shared_ptr<Environment>& env) {
  for (const StmtPtr& stmt : body) {
    ASSIGN_OR_RETURN(Flow flow, ExecStmt(*stmt, env));
    if (flow.kind != Flow::Kind::kNormal) {
      return flow;
    }
  }
  return Flow{};
}

Result<Interp::Flow> Interp::ExecStmt(const Stmt& stmt,
                                      const std::shared_ptr<Environment>& env) {
  RETURN_IF_ERROR_R(Tick(stmt.line));
  switch (stmt.kind) {
    case Stmt::Kind::kExpr: {
      ASSIGN_OR_RETURN(Value ignored, Eval(*stmt.target, env));
      (void)ignored;
      return Flow{};
    }
    case Stmt::Kind::kAssign: {
      ASSIGN_OR_RETURN(Value value, Eval(*stmt.value, env));
      RETURN_IF_ERROR_R(Assign(*stmt.target, std::move(value), env));
      return Flow{};
    }
    case Stmt::Kind::kAugAssign: {
      ASSIGN_OR_RETURN(Value current, Eval(*stmt.target, env));
      ASSIGN_OR_RETURN(Value delta, Eval(*stmt.value, env));
      // Synthesize `current OP delta`.
      Expr synth;
      synth.kind = Expr::Kind::kBinary;
      synth.name = stmt.op;
      synth.line = stmt.line;
      auto lhs = std::make_unique<Expr>();
      lhs->kind = Expr::Kind::kLiteral;
      lhs->line = stmt.line;
      lhs->literal = std::move(current);
      auto rhs = std::make_unique<Expr>();
      rhs->kind = Expr::Kind::kLiteral;
      rhs->line = stmt.line;
      rhs->literal = std::move(delta);
      synth.lhs = std::move(lhs);
      synth.rhs = std::move(rhs);
      ASSIGN_OR_RETURN(Value combined, EvalBinary(synth, env));
      RETURN_IF_ERROR_R(Assign(*stmt.target, std::move(combined), env));
      return Flow{};
    }
    case Stmt::Kind::kIf: {
      ASSIGN_OR_RETURN(Value cond, Eval(*stmt.target, env));
      if (cond.Truthy()) {
        return ExecBlock(stmt.body, env);
      }
      return ExecBlock(stmt.orelse, env);
    }
    case Stmt::Kind::kFor: {
      ASSIGN_OR_RETURN(Value iterable, Eval(*stmt.value, env));
      auto materialized = IterableItems(iterable);
      if (!materialized.ok()) {
        return EvalError(stmt.line,
                         std::string(materialized.status().message()));
      }
      std::vector<Value> items = std::move(materialized).value();
      for (Value& item : items) {
        RETURN_IF_ERROR_R(Tick(stmt.line));
        if (stmt.loop_vars.size() == 1) {
          env->Define(stmt.loop_vars[0], std::move(item));
        } else {
          if (!item.is_list() || item.as_list().size() != stmt.loop_vars.size()) {
            return EvalError(stmt.line, "cannot unpack loop value");
          }
          for (size_t i = 0; i < stmt.loop_vars.size(); ++i) {
            env->Define(stmt.loop_vars[i], item.as_list()[i]);
          }
        }
        ASSIGN_OR_RETURN(Flow flow, ExecBlock(stmt.body, env));
        if (flow.kind == Flow::Kind::kBreak) {
          break;
        }
        if (flow.kind == Flow::Kind::kReturn) {
          return flow;
        }
      }
      return Flow{};
    }
    case Stmt::Kind::kWhile: {
      while (true) {
        RETURN_IF_ERROR_R(Tick(stmt.line));
        ASSIGN_OR_RETURN(Value cond, Eval(*stmt.target, env));
        if (!cond.Truthy()) {
          break;
        }
        ASSIGN_OR_RETURN(Flow flow, ExecBlock(stmt.body, env));
        if (flow.kind == Flow::Kind::kBreak) {
          break;
        }
        if (flow.kind == Flow::Kind::kReturn) {
          return flow;
        }
      }
      return Flow{};
    }
    case Stmt::Kind::kDef: {
      Closure closure;
      closure.def = stmt.def.get();
      closure.env = env;
      env->Define(stmt.def->name, Value::MakeClosure(std::move(closure)));
      return Flow{};
    }
    case Stmt::Kind::kReturn: {
      Flow flow;
      flow.kind = Flow::Kind::kReturn;
      if (stmt.target != nullptr) {
        ASSIGN_OR_RETURN(flow.value, Eval(*stmt.target, env));
      }
      return flow;
    }
    case Stmt::Kind::kAssert: {
      ASSIGN_OR_RETURN(Value cond, Eval(*stmt.target, env));
      if (!cond.Truthy()) {
        std::string message = "assertion failed";
        if (stmt.value != nullptr) {
          ASSIGN_OR_RETURN(Value msg, Eval(*stmt.value, env));
          message = msg.is_string() ? msg.as_string() : msg.ToDebugString();
        }
        return EvalError(stmt.line, message);
      }
      return Flow{};
    }
    case Stmt::Kind::kPass:
      return Flow{};
    case Stmt::Kind::kBreak: {
      Flow flow;
      flow.kind = Flow::Kind::kBreak;
      return flow;
    }
    case Stmt::Kind::kContinue: {
      Flow flow;
      flow.kind = Flow::Kind::kContinue;
      return flow;
    }
  }
  return InternalError("unhandled statement kind");
}

Status Interp::Assign(const Expr& target, Value value,
                      const std::shared_ptr<Environment>& env) {
  switch (target.kind) {
    case Expr::Kind::kName: {
      env->Define(target.name, std::move(value));
      return OkStatus();
    }
    case Expr::Kind::kAttr: {
      auto base = Eval(*target.lhs, env);
      if (!base.ok()) {
        return base.status();
      }
      Status set = EvalAttrSet(*base, target.name, std::move(value));
      if (!set.ok()) {
        return EvalError(target.line, std::string(set.message()));
      }
      return OkStatus();
    }
    case Expr::Kind::kIndex: {
      auto base = Eval(*target.lhs, env);
      if (!base.ok()) {
        return base.status();
      }
      auto key = Eval(*target.rhs, env);
      if (!key.ok()) {
        return key.status();
      }
      Status set = EvalIndexSet(*base, *key, std::move(value));
      if (!set.ok()) {
        return EvalError(target.line, std::string(set.message()));
      }
      return OkStatus();
    }
    default:
      return EvalError(target.line, "invalid assignment target");
  }
}

Result<Value> Interp::Eval(const Expr& expr, const std::shared_ptr<Environment>& env) {
  RETURN_IF_ERROR_R(Tick(expr.line));
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kName: {
      Value* found = env->Find(expr.name);
      if (found == nullptr) {
        return EvalError(expr.line, "undefined name '" + expr.name + "'");
      }
      return *found;
    }
    case Expr::Kind::kList: {
      Value::List items;
      items.reserve(expr.items.size());
      for (const ExprPtr& item : expr.items) {
        ASSIGN_OR_RETURN(Value v, Eval(*item, env));
        items.push_back(std::move(v));
      }
      return Value::MakeList(std::move(items));
    }
    case Expr::Kind::kDict: {
      Value::Dict items;
      for (const auto& [key_expr, value_expr] : expr.pairs) {
        ASSIGN_OR_RETURN(Value key, Eval(*key_expr, env));
        if (!key.is_string()) {
          return EvalError(expr.line, "dict keys must be strings");
        }
        ASSIGN_OR_RETURN(Value value, Eval(*value_expr, env));
        items[key.as_string()] = std::move(value);
      }
      return Value::MakeDict(std::move(items));
    }
    case Expr::Kind::kUnary: {
      ASSIGN_OR_RETURN(Value operand, Eval(*expr.lhs, env));
      auto result = EvalUnaryValues(expr.name, operand);
      if (!result.ok()) {
        return EvalError(expr.line, std::string(result.status().message()));
      }
      return result;
    }
    case Expr::Kind::kTernary: {
      ASSIGN_OR_RETURN(Value cond, Eval(*expr.rhs, env));
      if (cond.Truthy()) {
        return Eval(*expr.lhs, env);
      }
      return Eval(*expr.third, env);
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, env);
    case Expr::Kind::kAttr: {
      ASSIGN_OR_RETURN(Value base, Eval(*expr.lhs, env));
      auto result = EvalAttrGet(base, expr.name);
      if (!result.ok()) {
        return EvalError(expr.line, std::string(result.status().message()));
      }
      return result;
    }
    case Expr::Kind::kIndex: {
      ASSIGN_OR_RETURN(Value base, Eval(*expr.lhs, env));
      ASSIGN_OR_RETURN(Value key, Eval(*expr.rhs, env));
      auto result = EvalIndexGet(base, key);
      if (!result.ok()) {
        return EvalError(expr.line, std::string(result.status().message()));
      }
      return result;
    }
    case Expr::Kind::kCall:
      return EvalCall(expr, env);
  }
  return InternalError("unhandled expression kind");
}

Result<Value> Interp::EvalBinary(const Expr& expr,
                                 const std::shared_ptr<Environment>& env) {
  const std::string& op = expr.name;

  // Short-circuit logicals return the deciding operand, like Python.
  if (op == "and") {
    ASSIGN_OR_RETURN(Value lhs, Eval(*expr.lhs, env));
    if (!lhs.Truthy()) {
      return lhs;
    }
    return Eval(*expr.rhs, env);
  }
  if (op == "or") {
    ASSIGN_OR_RETURN(Value lhs, Eval(*expr.lhs, env));
    if (lhs.Truthy()) {
      return lhs;
    }
    return Eval(*expr.rhs, env);
  }

  std::optional<BinOp> bin = ParseBinOp(op);
  if (!bin.has_value()) {
    return EvalError(expr.line, "unknown binary operator '" + op + "'");
  }

  ASSIGN_OR_RETURN(Value lhs, Eval(*expr.lhs, env));
  ASSIGN_OR_RETURN(Value rhs, Eval(*expr.rhs, env));
  auto result = EvalBinaryValues(*bin, lhs, rhs);
  if (!result.ok()) {
    return EvalError(expr.line, std::string(result.status().message()));
  }
  return result;
}

Result<Value> Interp::EvalCall(const Expr& expr,
                               const std::shared_ptr<Environment>& env) {
  // Special forms: imports and exports, which need interpreter context.
  if (expr.lhs->kind == Expr::Kind::kName) {
    const std::string& name = expr.lhs->name;
    if (name == "import_python" || name == "import_thrift") {
      if (expr.items.empty()) {
        return EvalError(expr.line, name + "() needs a path argument");
      }
      ASSIGN_OR_RETURN(Value path_value, Eval(*expr.items[0], env));
      if (!path_value.is_string()) {
        return EvalError(expr.line, name + "() path must be a string");
      }
      const std::string& path = path_value.as_string();
      if (IsSchemaImportPath(name, path)) {
        if (!hooks_.import_schema) {
          return EvalError(expr.line, "schema imports not available here");
        }
        RETURN_IF_ERROR_R(hooks_.import_schema(path));
        // Newly registered schemas need constructors in the base env.
        if (registry_ != nullptr && base_env_ != nullptr) {
          RegisterSchemaConstructors(*registry_, base_env_.get());
        }
        return Value::Null();
      }
      if (!hooks_.import_module) {
        return EvalError(expr.line, "module imports not available here");
      }
      auto imported = hooks_.import_module(path);
      if (!imported.ok()) {
        return imported.status();
      }
      // Star import (the default and the paper's convention) copies the
      // module's globals; a specific symbol may be named instead.
      std::string filter = "*";
      if (expr.items.size() >= 2) {
        ASSIGN_OR_RETURN(Value f, Eval(*expr.items[1], env));
        if (!f.is_string()) {
          return EvalError(expr.line, "import filter must be a string");
        }
        filter = f.as_string();
      }
      for (const auto& [symbol, value] : (*imported)->vars()) {
        if (filter == "*" || filter == symbol) {
          env->Define(symbol, value);
        }
      }
      return Value::Null();
    }
    if (name == "export_if_last" || name == "export") {
      std::string export_name;
      const Expr* value_expr = nullptr;
      if (name == "export") {
        if (expr.items.size() != 2) {
          return EvalError(expr.line, "export(name, value) needs two arguments");
        }
        ASSIGN_OR_RETURN(Value n, Eval(*expr.items[0], env));
        if (!n.is_string()) {
          return EvalError(expr.line, "export name must be a string");
        }
        export_name = n.as_string();
        value_expr = expr.items[1].get();
      } else {
        if (expr.items.size() != 1) {
          return EvalError(expr.line, "export_if_last(value) needs one argument");
        }
        value_expr = expr.items[0].get();
      }
      ASSIGN_OR_RETURN(Value value, Eval(*value_expr, env));
      if (exports_enabled_ && hooks_.export_config) {
        RETURN_IF_ERROR_R(hooks_.export_config(export_name, value));
      }
      return Value::Null();
    }
  }

  ASSIGN_OR_RETURN(Value callee, Eval(*expr.lhs, env));
  if (!callee.is_callable()) {
    return EvalError(expr.line,
                     "value of type " + std::string(callee.KindName()) +
                         " is not callable");
  }

  std::vector<Value> args;
  args.reserve(expr.items.size());
  for (const ExprPtr& arg : expr.items) {
    ASSIGN_OR_RETURN(Value v, Eval(*arg, env));
    args.push_back(std::move(v));
  }
  std::map<std::string, Value> kwargs;
  for (const auto& [kw, arg_expr] : expr.kwargs) {
    ASSIGN_OR_RETURN(Value v, Eval(*arg_expr, env));
    kwargs[kw] = std::move(v);
  }

  auto result = CallValue(callee, std::move(args), std::move(kwargs));
  if (!result.ok()) {
    // Prefix the call site for a usable "stack trace".
    return InvalidConfigError(StrFormat("%s:%d: in call: %s",
                                        current_origin_.c_str(), expr.line,
                                        result.status().message().c_str()));
  }
  return result;
}

Result<Value> Interp::CallValue(const Value& fn, std::vector<Value> args,
                                std::map<std::string, Value> kwargs) {
  if (fn.kind() == Value::Kind::kNative) {
    return fn.as_native().fn(args, kwargs);
  }
  if (fn.kind() != Value::Kind::kClosure) {
    return InvalidArgumentError("value is not callable");
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    return InvalidConfigError("recursion limit exceeded");
  }

  const Closure& closure = fn.as_closure();
  if (closure.def == nullptr) {
    --call_depth_;
    return InternalError("closure was compiled for the bytecode VM");
  }
  const FunctionDefStmt& def = *closure.def;
  auto locals = NewEnvironment(closure.env);

  // Runtime errors inside the function body (and its default-argument
  // expressions) belong to the module that defines the function, which may
  // not be the module currently being evaluated.
  std::string saved_origin = current_origin_;
  if (!def.origin.empty()) {
    current_origin_ = def.origin;
  }

  std::vector<bool> has_default(def.params.size(), false);
  for (size_t i = 0; i < def.params.size(); ++i) {
    has_default[i] = def.defaults[i] != nullptr;
  }
  Status bind_status = BindCallArgs(
      def.name, def.params, has_default, std::move(args), std::move(kwargs),
      [&](size_t i, Value v) { locals->Define(def.params[i], std::move(v)); },
      [&](size_t i) { return Eval(*def.defaults[i], locals); });
  if (!bind_status.ok()) {
    --call_depth_;
    current_origin_ = saved_origin;
    return bind_status;
  }

  auto flow = ExecBlock(def.body, locals);
  --call_depth_;
  current_origin_ = saved_origin;
  if (!flow.ok()) {
    return flow.status();
  }
  if (flow->kind == Flow::Kind::kReturn) {
    return flow->value;
  }
  return Value::Null();
}

#undef RETURN_IF_ERROR_R

}  // namespace configerator
