#include "src/lang/import_resolver.h"

namespace configerator {

bool IsImportCall(const Expr& expr) {
  return expr.kind == Expr::Kind::kCall &&
         expr.lhs->kind == Expr::Kind::kName &&
         (expr.lhs->name == "import_python" ||
          expr.lhs->name == "import_thrift");
}

bool IsSchemaImportPath(const std::string& callee_name,
                        const std::string& path) {
  return callee_name == "import_thrift" || path.ends_with(".thrift");
}

ImportTarget ClassifyImport(const Expr& call) {
  ImportTarget target;
  target.line = call.line;
  if (call.items.empty() || call.items[0]->kind != Expr::Kind::kLiteral ||
      !call.items[0]->literal.is_string()) {
    return target;  // kDynamic: path computed at evaluation time.
  }
  target.path = call.items[0]->literal.as_string();
  if (IsSchemaImportPath(call.lhs->name, target.path)) {
    target.kind = ImportTarget::Kind::kSchema;
    return target;
  }
  if (call.items.size() >= 2) {
    if (call.items[1]->kind != Expr::Kind::kLiteral ||
        !call.items[1]->literal.is_string()) {
      target.path.clear();
      return target;  // kDynamic: filter computed at evaluation time.
    }
    target.filter = call.items[1]->literal.as_string();
  }
  target.kind = ImportTarget::Kind::kModule;
  return target;
}

}  // namespace configerator
