#include "src/mobile/cohort.h"

#include <algorithm>
#include <cmath>

namespace configerator {

CohortModel::CohortModel(std::vector<CohortSpec> cohorts)
    : cohorts_(std::move(cohorts)) {
  for (const CohortSpec& c : cohorts_) {
    total_ += c.devices;
  }
}

double CohortModel::CohortCdf(const CohortSpec& cohort, SimTime t) {
  if (t < 0 || cohort.online_prob <= 0 || cohort.poll_interval <= 0) {
    return 0;
  }
  const double q = std::min(cohort.online_prob, 1.0);
  const double p_interval = static_cast<double>(cohort.poll_interval);
  double cdf = 0;
  double weight = q;  // q(1-q)^k
  for (SimTime k_offset = 0; k_offset <= t && weight > 1e-15;
       k_offset += cohort.poll_interval) {
    double u = (static_cast<double>(t - k_offset)) / p_interval;
    cdf += weight * std::min(u, 1.0);
    weight *= (1.0 - q);
  }
  return cdf;
}

double CohortModel::UpdatedFraction(SimTime t) const {
  if (total_ == 0) {
    return 0;
  }
  double sum = 0;
  for (const CohortSpec& c : cohorts_) {
    sum += static_cast<double>(c.devices) * CohortCdf(c, t);
  }
  return sum / static_cast<double>(total_);
}

double CohortModel::UpdatedFractionWithPush(SimTime t) const {
  if (total_ == 0 || t < 0) {
    return 0;
  }
  double sum = 0;
  for (const CohortSpec& c : cohorts_) {
    double r = std::clamp(c.push_reach, 0.0, 1.0);
    sum += static_cast<double>(c.devices) * (r + (1.0 - r) * CohortCdf(c, t));
  }
  return sum / static_cast<double>(total_);
}

SimTime CohortModel::MeanUpdateDelay() const {
  if (total_ == 0) {
    return 0;
  }
  double sum = 0;
  for (const CohortSpec& c : cohorts_) {
    double q = std::clamp(c.online_prob, 1e-9, 1.0);
    double p_interval = static_cast<double>(c.poll_interval);
    // E[U] + P·E[K] for U ~ Uniform[0,P), K ~ Geometric(q).
    double mean = p_interval / 2.0 + p_interval * (1.0 - q) / q;
    sum += static_cast<double>(c.devices) * mean;
  }
  return static_cast<SimTime>(sum / static_cast<double>(total_));
}

SimTime CohortModel::Quantile(double p) const {
  SimTime hi = kSimSecond;
  while (UpdatedFraction(hi) < p && hi < (SimTime{1} << 60)) {
    hi *= 2;
  }
  SimTime lo = 0;
  while (lo + 1 < hi) {
    SimTime mid = lo + (hi - lo) / 2;
    if (UpdatedFraction(mid) >= p) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double CohortModel::PollsPerSecond() const {
  double sum = 0;
  for (const CohortSpec& c : cohorts_) {
    if (c.poll_interval <= 0) {
      continue;
    }
    sum += static_cast<double>(c.devices) *
           std::clamp(c.online_prob, 0.0, 1.0) /
           SimToSeconds(c.poll_interval);
  }
  return sum;
}

SampledMobileFleet::SampledMobileFleet(Simulator* sim,
                                       MobileConfigServer* server,
                                       const MobileSchema& schema,
                                       const CohortModel& model,
                                       size_t sample_size, uint64_t seed)
    : sim_(sim), server_(server), schema_(schema), model_(model), rng_(seed) {
  devices_.reserve(sample_size);
  // Cumulative rounding allocates exactly sample_size devices across cohorts
  // in proportion to cohort size.
  uint64_t cum_devices = 0;
  size_t assigned = 0;
  const auto& cohorts = model_.cohorts();
  for (size_t c = 0; c < cohorts.size(); ++c) {
    cum_devices += cohorts[c].devices;
    size_t cum_target = model_.total_devices() == 0
        ? 0
        : static_cast<size_t>(std::llround(
              static_cast<double>(sample_size) *
              (static_cast<double>(cum_devices) /
               static_cast<double>(model_.total_devices()))));
    for (; assigned < cum_target; ++assigned) {
      UserContext ctx;
      ctx.user_id = 1'000'000 + static_cast<int64_t>(assigned);
      ctx.platform = "android";
      ctx.app = "fb4a";
      devices_.emplace_back(schema_, std::move(ctx));
      devices_.back().cohort = c;
    }
  }
}

void SampledMobileFleet::Start() {
  started_ = true;
  for (size_t i = 0; i < devices_.size(); ++i) {
    const CohortSpec& cohort = model_.cohorts()[devices_[i].cohort];
    // Uniform phase in [0, P): the poll schedule of a device population is
    // uncorrelated with any particular config change.
    SimTime phase = static_cast<SimTime>(rng_.NextBounded(
        static_cast<uint64_t>(std::max<SimTime>(1, cohort.poll_interval))));
    SchedulePoll(i, phase);
  }
}

void SampledMobileFleet::SchedulePoll(size_t device_index, SimTime delay) {
  sim_->Schedule(delay, [this, device_index] {
    const CohortSpec& cohort = model_.cohorts()[devices_[device_index].cohort];
    if (cohort.online_prob >= 1.0 || rng_.NextBool(cohort.online_prob)) {
      SyncDevice(device_index);
    }
    SchedulePoll(device_index, cohort.poll_interval);
  });
}

void SampledMobileFleet::SyncDevice(size_t device_index) {
  Device& device = devices_[device_index];
  uint64_t bytes_before = device.client.bytes_transferred();
  Result<bool> result = device.client.Sync(*server_);
  ++sync_count_;
  total_sync_bytes_ += device.client.bytes_transferred() - bytes_before;
  if (result.ok() && measure_start_ >= 0 && device.updated_at < 0) {
    device.updated_at = sim_->now();
    ++updated_count_;
  }
}

void SampledMobileFleet::BeginMeasurement() {
  measure_start_ = sim_->now();
  updated_count_ = 0;
  for (Device& device : devices_) {
    device.updated_at = -1;
  }
}

void SampledMobileFleet::PushAll() {
  for (size_t i = 0; i < devices_.size(); ++i) {
    const CohortSpec& cohort = model_.cohorts()[devices_[i].cohort];
    if (cohort.push_reach > 0 && rng_.NextBool(cohort.push_reach)) {
      sim_->Schedule(0, [this, i] { SyncDevice(i); });
    }
  }
}

double SampledMobileFleet::EmpiricalUpdatedFraction(SimTime t) const {
  if (devices_.empty() || measure_start_ < 0) {
    return 0;
  }
  size_t n = 0;
  for (const Device& device : devices_) {
    if (device.updated_at >= 0 && device.updated_at - measure_start_ <= t) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(devices_.size());
}

std::vector<SimTime> SampledMobileFleet::UpdateDelays() const {
  std::vector<SimTime> delays;
  delays.reserve(updated_count_);
  for (const Device& device : devices_) {
    if (device.updated_at >= 0) {
      delays.push_back(device.updated_at - measure_start_);
    }
  }
  return delays;
}

ConformanceReport CheckConformance(const CohortModel& model,
                                   const SampledMobileFleet& fleet,
                                   SimTime horizon, int grid_points,
                                   bool with_push) {
  ConformanceReport report;
  for (int i = 1; i <= grid_points; ++i) {
    SimTime t = horizon * i / grid_points;
    double predicted = with_push ? model.UpdatedFractionWithPush(t)
                                 : model.UpdatedFraction(t);
    double observed = fleet.EmpiricalUpdatedFraction(t);
    double err = std::abs(predicted - observed);
    if (err > report.max_abs_error) {
      report.max_abs_error = err;
      report.worst_t = t;
    }
  }
  return report;
}

}  // namespace configerator
