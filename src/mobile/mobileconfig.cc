#include "src/mobile/mobileconfig.h"

#include "src/util/strings.h"

namespace configerator {

namespace {

std::string_view FieldTypeName(MobileFieldType type) {
  switch (type) {
    case MobileFieldType::kBool:
      return "bool";
    case MobileFieldType::kInt:
      return "int";
    case MobileFieldType::kDouble:
      return "double";
    case MobileFieldType::kString:
      return "string";
  }
  return "?";
}

// Coerces a backend value to the field's declared type; fails loudly on
// mismatch so a remapped binding can't silently feed garbage to an app.
Result<Json> CoerceToFieldType(const Json& value, MobileFieldType type,
                               const std::string& field) {
  switch (type) {
    case MobileFieldType::kBool:
      if (value.is_bool()) {
        return value;
      }
      break;
    case MobileFieldType::kInt:
      if (value.is_int()) {
        return value;
      }
      break;
    case MobileFieldType::kDouble:
      if (value.is_number()) {
        return Json(value.as_double());
      }
      break;
    case MobileFieldType::kString:
      if (value.is_string()) {
        return value;
      }
      break;
  }
  return InvalidConfigError(StrFormat(
      "field '%s' expects %s, backend produced %s", field.c_str(),
      std::string(FieldTypeName(type)).c_str(),
      value.is_null() ? "null" : "a mismatched type"));
}

}  // namespace

Sha256Digest MobileSchema::Hash() const {
  Sha256 hasher;
  hasher.Update(config_name);
  hasher.Update("\0", 1);
  for (const MobileFieldDef& field : fields) {
    hasher.Update(field.name);
    hasher.Update(":");
    hasher.Update(FieldTypeName(field.type));
    hasher.Update(";");
  }
  return hasher.Finish();
}

const MobileFieldDef* MobileSchema::FindField(std::string_view name) const {
  for (const MobileFieldDef& field : fields) {
    if (field.name == name) {
      return &field;
    }
  }
  return nullptr;
}

void TranslationLayer::Bind(const std::string& config_name,
                            const std::string& field, FieldBinding binding) {
  bindings_[{config_name, field}] = std::move(binding);
}

const FieldBinding* TranslationLayer::Find(const std::string& config_name,
                                           const std::string& field) const {
  auto it = bindings_.find({config_name, field});
  return it == bindings_.end() ? nullptr : &it->second;
}

MobileConfigServer::MobileConfigServer(const TranslationLayer* translation,
                                       GatekeeperRuntime* gatekeeper,
                                       ConfigReader config_reader)
    : translation_(translation), gatekeeper_(gatekeeper),
      config_reader_(std::move(config_reader)) {}

void MobileConfigServer::RegisterSchema(const MobileSchema& schema) {
  schemas_by_name_[schema.config_name][schema.Hash().ToHex()] = schema;
}

Result<Json> MobileConfigServer::ResolveValues(const MobileSchema& schema,
                                               const UserContext& device) const {
  Json values = Json::MakeObject();
  for (const MobileFieldDef& field : schema.fields) {
    const FieldBinding* binding = translation_->Find(schema.config_name, field.name);
    if (binding == nullptr) {
      return NotFoundError(StrFormat("no binding for %s.%s",
                                     schema.config_name.c_str(),
                                     field.name.c_str()));
    }
    Json raw;
    switch (binding->kind) {
      case FieldBinding::Kind::kConstant:
        raw = binding->constant;
        break;
      case FieldBinding::Kind::kGatekeeper:
        raw = Json(gatekeeper_ != nullptr &&
                   gatekeeper_->Check(binding->gk_project, device));
        break;
      case FieldBinding::Kind::kExperiment: {
        raw = binding->constant;  // Default arm.
        if (gatekeeper_ != nullptr) {
          for (const FieldBinding::ExperimentArm& arm : binding->arms) {
            if (gatekeeper_->Check(arm.condition_project, device)) {
              raw = arm.value;
              break;
            }
          }
        }
        break;
      }
      case FieldBinding::Kind::kConfigerator: {
        if (!config_reader_) {
          return UnavailableError("no backend config reader wired");
        }
        ASSIGN_OR_RETURN(std::string text, config_reader_(binding->config_path));
        ASSIGN_OR_RETURN(Json config, Json::Parse(text));
        const Json* field_value = config.Get(binding->config_field);
        if (field_value == nullptr) {
          return NotFoundError(StrFormat("config %s has no field '%s'",
                                         binding->config_path.c_str(),
                                         binding->config_field.c_str()));
        }
        raw = *field_value;
        break;
      }
    }
    ASSIGN_OR_RETURN(Json coerced, CoerceToFieldType(raw, field.type, field.name));
    values.Set(field.name, std::move(coerced));
  }
  return values;
}

Sha256Digest MobileConfigServer::HashValues(const Json& values) {
  return Sha256::Hash(values.Dump());
}

Result<MobilePullResponse> MobileConfigServer::HandlePull(
    const MobilePullRequest& request) const {
  ++pulls_served_;
  if (pulls_counter_ != nullptr) {
    pulls_counter_->Inc();
  }
  auto by_name = schemas_by_name_.find(request.config_name);
  if (by_name == schemas_by_name_.end()) {
    return NotFoundError("unknown mobile config '" + request.config_name + "'");
  }
  auto schema_it = by_name->second.find(request.schema_hash.ToHex());
  if (schema_it == by_name->second.end()) {
    return NotFoundError(StrFormat(
        "unknown schema version %s for config %s (app build not registered)",
        request.schema_hash.ShortHex().c_str(), request.config_name.c_str()));
  }
  const MobileSchema& schema = schema_it->second;

  ASSIGN_OR_RETURN(Json values, ResolveValues(schema, request.device));
  MobilePullResponse response;
  response.server_generation = generation_;
  response.values_hash = HashValues(values);
  // Stateful mode: compare against the hash we remembered for this client
  // instead of one carried in the request (footnote 2).
  Sha256Digest client_hash = request.values_hash;
  if (stateful_) {
    auto key = std::make_pair(request.config_name, request.device.user_id);
    auto it = client_hashes_.find(key);
    client_hash = it != client_hashes_.end() ? it->second : Sha256Digest{};
    client_hashes_[key] = response.values_hash;
  }
  if (response.values_hash == client_hash) {
    response.unchanged = true;
    response.response_bytes = 32;  // Just the hash echo.
    ++unchanged_;
    if (unchanged_counter_ != nullptr) {
      unchanged_counter_->Inc();
    }
    if (response_bytes_hist_ != nullptr) {
      response_bytes_hist_->Record(
          static_cast<double>(response.response_bytes));
    }
    return response;
  }
  response.response_bytes = 32 + static_cast<int64_t>(values.Dump().size());
  response.values = std::move(values);
  if (response_bytes_hist_ != nullptr) {
    response_bytes_hist_->Record(static_cast<double>(response.response_bytes));
  }
  return response;
}

Result<bool> MobileConfigClient::Sync(const MobileConfigServer& server) {
  ++syncs_;
  MobilePullRequest request;
  request.config_name = schema_.config_name;
  request.schema_hash = schema_.Hash();
  request.values_hash = cached_hash_;
  request.device = device_;
  // Request payload: config name + schema hash + framing; the values hash is
  // carried only when the server is stateless (footnote 2).
  bytes_transferred_ +=
      (server.stateful() ? 64 : 96) + request.config_name.size();

  ASSIGN_OR_RETURN(MobilePullResponse response, server.HandlePull(request));
  return ApplyPullResponse(response);
}

bool MobileConfigClient::ApplyPullResponse(const MobilePullResponse& response) {
  if (response.server_generation < applied_generation_) {
    ++stale_rejected_;  // A fresher response already landed; never roll back.
    return false;
  }
  applied_generation_ = response.server_generation;
  bytes_transferred_ += static_cast<uint64_t>(response.response_bytes);
  if (response.unchanged) {
    return false;
  }
  flash_cache_ = response.values;
  cached_hash_ = response.values_hash;
  return true;
}

bool MobileConfigClient::getBool(const std::string& field, bool dflt) const {
  const Json* value = flash_cache_.is_object() ? flash_cache_.Get(field) : nullptr;
  return value != nullptr && value->is_bool() ? value->as_bool() : dflt;
}

int64_t MobileConfigClient::getInt(const std::string& field, int64_t dflt) const {
  const Json* value = flash_cache_.is_object() ? flash_cache_.Get(field) : nullptr;
  return value != nullptr && value->is_int() ? value->as_int() : dflt;
}

double MobileConfigClient::getDouble(const std::string& field, double dflt) const {
  const Json* value = flash_cache_.is_object() ? flash_cache_.Get(field) : nullptr;
  return value != nullptr && value->is_number() ? value->as_double() : dflt;
}

std::string MobileConfigClient::getString(const std::string& field,
                                          const std::string& dflt) const {
  const Json* value = flash_cache_.is_object() ? flash_cache_.Get(field) : nullptr;
  return value != nullptr && value->is_string() ? value->as_string() : dflt;
}

}  // namespace configerator
