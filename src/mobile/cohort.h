// Cohort model for the million-device MobileConfig fleet (paper §5 serves
// ~1B devices; simulating each one is pointless and impossible).
//
// The fleet is described as cohorts — groups of devices sharing a poll
// interval P, an online probability q (a scheduled poll only happens/succeeds
// when the device has connectivity), and an emergency-push reach r. Under a
// uniformly-phased poll schedule, the delay D until a device picks up a
// config change has a closed form:
//
//     D = U + K·P,   U ~ Uniform[0, P),   K ~ Geometric(q)
//     F(t) = P(D <= t) = Σ_k  q(1-q)^k · clamp((t - kP)/P, 0, 1)
//
// (U is the phase offset to the next scheduled poll; K counts offline polls
// before the first successful one.) With an emergency push at the change
// instant, a fraction r updates immediately: F_push(t) = r + (1-r)·F(t).
//
// CohortModel evaluates these mixtures over all cohorts, weighted by device
// count. SampledMobileFleet runs a seeded sample of devices through the
// *exact* pull/push protocol (real MobileConfigClient::Sync against the real
// server, real schema/values hashing and bandwidth accounting) on the
// simulator clock; the conformance check (tests/mobile_fleet_test.cc) holds
// the sample's empirical update-delay distribution to the closed form, which
// is what licenses using the closed form for the other 99.8% of the fleet.

#ifndef SRC_MOBILE_COHORT_H_
#define SRC_MOBILE_COHORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mobile/mobileconfig.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace configerator {

struct CohortSpec {
  std::string name;
  uint64_t devices = 0;
  SimTime poll_interval = kSimHour;  // P.
  double online_prob = 1.0;          // q: P(a scheduled poll succeeds).
  double push_reach = 0.0;           // r: P(emergency push reaches device).
};

class CohortModel {
 public:
  explicit CohortModel(std::vector<CohortSpec> cohorts);

  const std::vector<CohortSpec>& cohorts() const { return cohorts_; }
  uint64_t total_devices() const { return total_; }

  // Fraction of the fleet holding a change `t` after it landed (pull only).
  double UpdatedFraction(SimTime t) const;
  // Same, with an emergency push fired at the change instant.
  double UpdatedFractionWithPush(SimTime t) const;

  // Mean update delay E[U + P·K] over the fleet (pull only).
  SimTime MeanUpdateDelay() const;
  // Smallest t with UpdatedFraction(t) >= p (bisection; p in (0, 1)).
  SimTime Quantile(double p) const;

  // Expected poll *attempts* reaching the server per second across the whole
  // fleet (offline devices generate no traffic): Σ N_c · q_c / P_c.
  double PollsPerSecond() const;

 private:
  static double CohortCdf(const CohortSpec& cohort, SimTime t);

  std::vector<CohortSpec> cohorts_;
  uint64_t total_ = 0;
};

// A seeded sample of devices running the exact protocol on the simulator
// clock. Devices are allocated to cohorts proportionally to cohort size.
class SampledMobileFleet {
 public:
  // `server` and `schema` must outlive the fleet. Each device gets a unique
  // UserContext id so stateful-server and gatekeeper paths behave per-device.
  SampledMobileFleet(Simulator* sim, MobileConfigServer* server,
                     const MobileSchema& schema, const CohortModel& model,
                     size_t sample_size, uint64_t seed);

  // Schedules every device's poll loop (first poll at its uniform phase).
  void Start();

  // Marks now as the config-change instant to measure propagation against:
  // each device records its first server contact from now on.
  void BeginMeasurement();

  // Emergency push at now: each device draws its cohort's push_reach; reached
  // devices sync immediately (same instant, distinct events).
  void PushAll();

  size_t size() const { return devices_.size(); }
  // Devices that contacted the server since BeginMeasurement.
  size_t updated_count() const { return updated_count_; }
  // Empirical P(update delay <= t) over the sample.
  double EmpiricalUpdatedFraction(SimTime t) const;
  // Update delays of updated devices, unsorted (one entry per updated
  // device). Tests feed these to quantile checks.
  std::vector<SimTime> UpdateDelays() const;

  uint64_t sync_count() const { return sync_count_; }
  uint64_t total_sync_bytes() const { return total_sync_bytes_; }
  size_t cohort_of(size_t device_index) const {
    return devices_[device_index].cohort;
  }

 private:
  struct Device {
    MobileConfigClient client;
    size_t cohort = 0;
    SimTime updated_at = -1;  // First post-measurement server contact.
    Device(MobileSchema schema, UserContext ctx)
        : client(std::move(schema), std::move(ctx)) {}
  };

  void SchedulePoll(size_t device_index, SimTime delay);
  void SyncDevice(size_t device_index);

  Simulator* sim_;
  MobileConfigServer* server_;
  const MobileSchema& schema_;
  const CohortModel& model_;
  std::vector<Device> devices_;
  Rng rng_;
  SimTime measure_start_ = -1;
  size_t updated_count_ = 0;
  uint64_t sync_count_ = 0;
  uint64_t total_sync_bytes_ = 0;
  bool started_ = false;
};

// Sup-norm distance between the sample's empirical update-delay CDF and the
// model's, evaluated on `grid_points` points over [0, horizon]. The mobile
// conformance test declares a tolerance; a skewed cohort parameter (e.g. a
// model whose poll interval is 2x the fleet's real one) must exceed it.
struct ConformanceReport {
  double max_abs_error = 0;
  SimTime worst_t = 0;
};
ConformanceReport CheckConformance(const CohortModel& model,
                                   const SampledMobileFleet& fleet,
                                   SimTime horizon, int grid_points,
                                   bool with_push);

}  // namespace configerator

#endif  // SRC_MOBILE_COHORT_H_
