// MobileConfig (paper §5): config management for mobile apps.
//
// Key behaviours reproduced:
//  * Context classes: the app reads typed fields (getBool/getInt/...) from a
//    named config; reads always hit the local flash cache, never the network.
//  * Pull protocol: the client periodically sends the hash of its config
//    schema (schema versioning) and the hash of its cached values; the
//    server replies only with changed values relevant to that schema version
//    — minimizing mobile bandwidth.
//  * Emergency push: unreliable push notifications can trigger an immediate
//    pull (e.g. to disable a buggy feature now, not an hour from now).
//  * Translation layer: one level of indirection mapping a Mobile field to a
//    backend — a Gatekeeper project (bool gating), a Gatekeeper-backed
//    experiment (per-condition parameter values), a Configerator config
//    field, or a constant. Remapping a field (experiment → constant) needs
//    no app change.

#ifndef SRC_MOBILE_MOBILECONFIG_H_
#define SRC_MOBILE_MOBILECONFIG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/gatekeeper/runtime.h"
#include "src/json/json.h"
#include "src/util/sha256.h"
#include "src/util/status.h"

namespace configerator {

// ---- Schema ----------------------------------------------------------------

enum class MobileFieldType { kBool, kInt, kDouble, kString };

struct MobileFieldDef {
  std::string name;
  MobileFieldType type = MobileFieldType::kBool;
};

// A mobile config schema version (what a given app build was compiled with).
struct MobileSchema {
  std::string config_name;  // e.g. "MY_CONFIG".
  std::vector<MobileFieldDef> fields;

  Sha256Digest Hash() const;
  const MobileFieldDef* FindField(std::string_view name) const;
};

// ---- Translation layer -----------------------------------------------------

// What a mobile field is backed by.
struct FieldBinding {
  enum class Kind {
    kConstant,
    kGatekeeper,   // bool: gk_check(project, device user).
    kExperiment,   // first matching condition project supplies the value.
    kConfigerator, // field of a JSON config from the backend store.
  };

  Kind kind = Kind::kConstant;
  Json constant;             // kConstant (and experiment default).
  std::string gk_project;    // kGatekeeper.
  struct ExperimentArm {
    std::string condition_project;  // Gatekeeper project gating this arm.
    Json value;
  };
  std::vector<ExperimentArm> arms;  // kExperiment.
  std::string config_path;   // kConfigerator: path of the JSON config...
  std::string config_field;  // ...and the field within it.

  static FieldBinding Constant(Json value) {
    FieldBinding binding;
    binding.kind = Kind::kConstant;
    binding.constant = std::move(value);
    return binding;
  }
  static FieldBinding Gatekeeper(std::string project) {
    FieldBinding binding;
    binding.kind = Kind::kGatekeeper;
    binding.gk_project = std::move(project);
    return binding;
  }
  static FieldBinding Experiment(Json default_value,
                                 std::vector<ExperimentArm> experiment_arms) {
    FieldBinding binding;
    binding.kind = Kind::kExperiment;
    binding.constant = std::move(default_value);
    binding.arms = std::move(experiment_arms);
    return binding;
  }
  static FieldBinding Configerator(std::string path, std::string field) {
    FieldBinding binding;
    binding.kind = Kind::kConfigerator;
    binding.config_path = std::move(path);
    binding.config_field = std::move(field);
    return binding;
  }
};

// The server-side translation layer: (config, field) -> binding. The mapping
// itself is a config and can be swapped live.
class TranslationLayer {
 public:
  void Bind(const std::string& config_name, const std::string& field,
            FieldBinding binding);

  const FieldBinding* Find(const std::string& config_name,
                           const std::string& field) const;

 private:
  std::map<std::pair<std::string, std::string>, FieldBinding> bindings_;
};

// ---- Server ----------------------------------------------------------------

struct MobilePullRequest {
  std::string config_name;
  Sha256Digest schema_hash;
  Sha256Digest values_hash;  // Hash of the client's cached values.
  UserContext device;        // Who is asking (device/user attributes).
};

struct MobilePullResponse {
  bool unchanged = false;          // Client's cache is current.
  Json values;                     // Full value set when changed.
  Sha256Digest values_hash;
  int64_t response_bytes = 0;      // Modeled payload size.
  // Server config generation at resolve time. Responses travel over an
  // unordered network; the client rejects a response older than one it has
  // already applied, so a delayed pull reply cannot roll back the values an
  // emergency push just delivered.
  int64_t server_generation = 0;
};

class MobileConfigServer {
 public:
  // `config_reader` resolves kConfigerator bindings: path -> JSON text.
  using ConfigReader = std::function<Result<std::string>(const std::string&)>;

  MobileConfigServer(const TranslationLayer* translation,
                     GatekeeperRuntime* gatekeeper, ConfigReader config_reader);

  // Registers a known schema version. Clients are served the field set of
  // their own version; unknown schema hashes are rejected.
  void RegisterSchema(const MobileSchema& schema);

  Result<MobilePullResponse> HandlePull(const MobilePullRequest& request) const;

  // The paper's footnote-2 future enhancement: a stateful server remembers
  // each client's value hash, so pull requests need not carry it (saving
  // uplink bytes on every poll). Client state is keyed by (config, user).
  void set_stateful(bool stateful) { stateful_ = stateful; }
  bool stateful() const { return stateful_; }

  // Opt-in metrics: mobile_pulls_total, mobile_unchanged_total, and the
  // mobile_response_bytes histogram (the pull-bandwidth minimization §5
  // claims — "unchanged" responses must dominate and stay tiny).
  void AttachObservability(Observability* obs) {
    pulls_counter_ = obs->metrics.GetCounter("mobile_pulls_total");
    unchanged_counter_ = obs->metrics.GetCounter("mobile_unchanged_total");
    response_bytes_hist_ = obs->metrics.GetHistogram("mobile_response_bytes");
  }

  // Bump when any backing config / binding / gating state changed. Stamped
  // into every response so clients can order responses that raced through
  // the network (emergency push vs. scheduled pull).
  void NoteConfigChanged() { ++generation_; }
  int64_t generation() const { return generation_; }

  // Resolves the current value of every field of `schema` for `device`.
  Result<Json> ResolveValues(const MobileSchema& schema,
                             const UserContext& device) const;

  static Sha256Digest HashValues(const Json& values);

  uint64_t pulls_served() const { return pulls_served_; }
  uint64_t unchanged_responses() const { return unchanged_; }

 private:
  const TranslationLayer* translation_;
  GatekeeperRuntime* gatekeeper_;
  ConfigReader config_reader_;
  std::map<std::string, std::map<std::string, MobileSchema>> schemas_by_name_;
  // (keyed by config name, then schema hash hex)
  bool stateful_ = false;
  // Stateful mode: last served value hash per (config name, user id).
  mutable std::map<std::pair<std::string, int64_t>, Sha256Digest> client_hashes_;
  int64_t generation_ = 1;
  mutable uint64_t pulls_served_ = 0;
  mutable uint64_t unchanged_ = 0;
  Counter* pulls_counter_ = nullptr;
  Counter* unchanged_counter_ = nullptr;
  Histogram* response_bytes_hist_ = nullptr;
};

// ---- Client ----------------------------------------------------------------

// The device-side client library (the C++ core shared by iOS and Android in
// the paper). Reads are local; Sync() performs one pull round.
class MobileConfigClient {
 public:
  MobileConfigClient(MobileSchema schema, UserContext device)
      : schema_(std::move(schema)), device_(std::move(device)) {}

  // One pull round against the server. Returns true if new values landed.
  Result<bool> Sync(const MobileConfigServer& server);

  // Applies a pull response that arrived over the network. Returns true if
  // new values landed; a response staler than one already applied (its
  // server generation is older) is rejected — the guard that makes an
  // emergency push racing a scheduled pull safe under message reordering.
  bool ApplyPullResponse(const MobilePullResponse& response);

  // Emergency push receipt: force a sync regardless of poll schedule.
  Result<bool> OnEmergencyPush(const MobileConfigServer& server) {
    return Sync(server);
  }

  // Typed getters with defaults, reading the flash cache.
  bool getBool(const std::string& field, bool dflt = false) const;
  int64_t getInt(const std::string& field, int64_t dflt = 0) const;
  double getDouble(const std::string& field, double dflt = 0) const;
  std::string getString(const std::string& field,
                        const std::string& dflt = "") const;

  bool has_values() const { return flash_cache_.is_object(); }
  const UserContext& device() const { return device_; }
  const MobileSchema& schema() const { return schema_; }
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t syncs() const { return syncs_; }
  int64_t applied_generation() const { return applied_generation_; }
  uint64_t stale_rejected() const { return stale_rejected_; }

 private:
  MobileSchema schema_;
  UserContext device_;
  Json flash_cache_;  // Survives app restarts (device flash).
  Sha256Digest cached_hash_{};
  int64_t applied_generation_ = 0;
  uint64_t stale_rejected_ = 0;
  uint64_t bytes_transferred_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace configerator

#endif  // SRC_MOBILE_MOBILECONFIG_H_
