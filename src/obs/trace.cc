#include "src/obs/trace.h"

#include <algorithm>

#include "src/util/strings.h"

namespace configerator {

TraceContext Tracer::StartTrace(const std::string& name,
                                const std::string& host, SimTime at) {
  if (arrivals_++ % sample_every_ != 0) {
    ++sampled_out_;
    return TraceContext{};
  }
  uint64_t id = next_trace_id_++;
  TraceData& trace = traces_[id];
  trace.id = id;
  trace.name = name;
  trace.start = at;
  Span root;
  root.id = 1;
  root.parent = 0;
  root.name = name;
  root.host = host;
  root.start = at;
  trace.spans.push_back(std::move(root));
  return TraceContext{id, 1};
}

TraceContext Tracer::StartSpan(const TraceContext& parent,
                               const std::string& name, const std::string& host,
                               SimTime at) {
  if (!parent.valid()) {
    return TraceContext{};
  }
  auto it = traces_.find(parent.trace_id);
  if (it == traces_.end() || parent.span_id == 0 ||
      parent.span_id > it->second.spans.size()) {
    return TraceContext{};
  }
  TraceData& trace = it->second;
  Span span;
  span.id = trace.spans.size() + 1;
  span.parent = parent.span_id;
  span.name = name;
  span.host = host;
  span.start = at;
  trace.spans.push_back(std::move(span));
  return TraceContext{trace.id, trace.spans.back().id};
}

void Tracer::EndSpan(const TraceContext& ctx, SimTime at) {
  if (!ctx.valid()) {
    return;
  }
  auto it = traces_.find(ctx.trace_id);
  if (it == traces_.end() || ctx.span_id == 0 ||
      ctx.span_id > it->second.spans.size()) {
    return;
  }
  Span& span = it->second.spans[ctx.span_id - 1];
  if (span.open()) {
    span.end = std::max(at, span.start);
  }
}

void Tracer::BindPath(const std::string& path, const TraceContext& ctx) {
  if (ctx.valid()) {
    by_path_[path] = ctx;
  }
}

TraceContext Tracer::PathContext(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? TraceContext{} : it->second;
}

void Tracer::BindZxid(int64_t zxid, const TraceContext& ctx) {
  if (ctx.valid()) {
    by_zxid_[zxid] = ctx;
  }
}

TraceContext Tracer::ZxidContext(int64_t zxid) const {
  auto it = by_zxid_.find(zxid);
  return it == by_zxid_.end() ? TraceContext{} : it->second;
}

const TraceData* Tracer::Find(uint64_t trace_id) const {
  auto it = traces_.find(trace_id);
  return it == traces_.end() ? nullptr : &it->second;
}

SimTime Tracer::TraceStartTime(uint64_t trace_id) const {
  const TraceData* trace = Find(trace_id);
  return trace == nullptr ? -1 : trace->start;
}

Status Tracer::ValidateComplete(uint64_t trace_id) const {
  const TraceData* trace = Find(trace_id);
  if (trace == nullptr) {
    return NotFoundError(StrFormat("no trace %llu",
                                   static_cast<unsigned long long>(trace_id)));
  }
  if (trace->spans.empty()) {
    return InvalidArgumentError("trace has no spans");
  }
  for (const Span& span : trace->spans) {
    if (span.open()) {
      return InvalidArgumentError(
          StrFormat("span %llu (%s on %s) never ended",
                    static_cast<unsigned long long>(span.id), span.name.c_str(),
                    span.host.c_str()));
    }
    if (span.end < span.start) {
      return InvalidArgumentError(
          StrFormat("span %llu (%s) ends before it starts",
                    static_cast<unsigned long long>(span.id),
                    span.name.c_str()));
    }
    if (span.parent != 0) {
      if (span.parent > trace->spans.size()) {
        return InvalidArgumentError(
            StrFormat("span %llu (%s) is an orphan: parent %llu missing",
                      static_cast<unsigned long long>(span.id),
                      span.name.c_str(),
                      static_cast<unsigned long long>(span.parent)));
      }
      const Span& parent = trace->spans[span.parent - 1];
      if (span.start < parent.start) {
        return InvalidArgumentError(StrFormat(
            "span %llu (%s) starts at %lld before its parent %s at %lld",
            static_cast<unsigned long long>(span.id), span.name.c_str(),
            static_cast<long long>(span.start), parent.name.c_str(),
            static_cast<long long>(parent.start)));
      }
    } else if (span.id != 1) {
      return InvalidArgumentError(
          StrFormat("span %llu (%s) claims to be a second root",
                    static_cast<unsigned long long>(span.id),
                    span.name.c_str()));
    }
  }
  return OkStatus();
}

std::string Tracer::DumpTree(uint64_t trace_id) const {
  const TraceData* trace = Find(trace_id);
  if (trace == nullptr) {
    return "";
  }
  // children[p] = ids of spans whose parent is p, ordered by (start, id).
  std::map<uint64_t, std::vector<uint64_t>> children;
  for (const Span& span : trace->spans) {
    children[span.parent].push_back(span.id);
  }
  for (auto& [parent, ids] : children) {
    std::sort(ids.begin(), ids.end(), [trace](uint64_t a, uint64_t b) {
      const Span& sa = trace->spans[a - 1];
      const Span& sb = trace->spans[b - 1];
      return sa.start != sb.start ? sa.start < sb.start : a < b;
    });
  }
  std::string out = StrFormat("trace %llu \"%s\" start=%lld\n",
                              static_cast<unsigned long long>(trace->id),
                              trace->name.c_str(),
                              static_cast<long long>(trace->start));
  // Iterative DFS so a deep fan-out cannot overflow the stack.
  struct Frame {
    uint64_t id;
    int depth;
  };
  std::vector<Frame> stack;
  auto push_children = [&](uint64_t parent, int depth) {
    auto it = children.find(parent);
    if (it == children.end()) {
      return;
    }
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.push_back(Frame{*rit, depth});
    }
  };
  push_children(0, 0);
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Span& span = trace->spans[frame.id - 1];
    out += std::string(static_cast<size_t>(frame.depth) * 2, ' ');
    if (span.open()) {
      out += StrFormat("%s host=%s start=%lld OPEN\n", span.name.c_str(),
                       span.host.c_str(), static_cast<long long>(span.start));
    } else {
      out += StrFormat("%s host=%s start=%lld end=%lld\n", span.name.c_str(),
                       span.host.c_str(), static_cast<long long>(span.start),
                       static_cast<long long>(span.end));
    }
    push_children(frame.id, frame.depth + 1);
  }
  return out;
}

}  // namespace configerator
