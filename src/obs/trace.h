// Commit tracer: assigns each landed commit a trace id and records the
// causally-ordered spans it generates as it flows through the pipeline —
// LandingStrip → Sandcastle → canary → git tailer → Zeus leader/observer/
// proxy tree → per-server disk cache → application callback (and the
// PackageVessel metadata/bulk split). All timestamps are *sim* time, so a
// DST run produces bit-identical traces on replay.
//
// Causal joins happen at the two points where the commit changes identity:
//  * BindPath(path, ctx): a landed commit touches `path`; the tailer later
//    discovers the change by path and parents its publish span here.
//  * BindZxid(zxid, ctx): Zeus assigned a zxid to the published write; every
//    later delivery of that zxid (observer push, anti-entropy replay,
//    subscribe refetch) parents its span here.
//
// StartSpan with an invalid parent returns an invalid context and records
// nothing — a delivery whose provenance predates tracing (or was never
// traced) contributes no orphan span, which is what lets ValidateComplete
// demand a fully-connected tree.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace configerator {

// Identifies one span within one trace; passed by value across hops (it
// rides inside ZeusTxn through the distribution tree). trace_id 0 = invalid.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

struct Span {
  uint64_t id = 0;      // Dense per trace: spans[i].id == i + 1.
  uint64_t parent = 0;  // 0 = root span.
  std::string name;     // e.g. "proxy.apply".
  std::string host;     // Where it ran, e.g. "1.0.4".
  SimTime start = 0;
  SimTime end = -1;  // -1 = still open (sim time is never negative).
  bool open() const { return end < 0; }
};

struct TraceData {
  uint64_t id = 0;
  std::string name;  // e.g. "commit step=7".
  SimTime start = 0;
  std::vector<Span> spans;
};

class Tracer {
 public:
  // Record 1 of every `n` traces (default 1 = record everything). At fleet
  // scale a span tree per commit per 100k-server fan-out is the tracer's
  // memory wall, so scale runs sample: an unsampled StartTrace returns an
  // invalid context, and because StartSpan on an invalid parent records
  // nothing, the whole downstream tree no-ops without any caller changes.
  // Sampling is by arrival order (first of each stride), so it is
  // deterministic under DST replay.
  void SetSampleEvery(uint64_t n) { sample_every_ = n == 0 ? 1 : n; }
  uint64_t sample_every() const { return sample_every_; }
  // Traces skipped by sampling since construction.
  uint64_t sampled_out() const { return sampled_out_; }

  // Opens a root span; `at` is the sim time the commit entered the pipeline.
  // Returns an invalid context (nothing recorded) for sampled-out traces.
  TraceContext StartTrace(const std::string& name, const std::string& host,
                          SimTime at);

  // Opens a child span. Invalid/unknown parent → invalid context, no span.
  TraceContext StartSpan(const TraceContext& parent, const std::string& name,
                         const std::string& host, SimTime at);

  void EndSpan(const TraceContext& ctx, SimTime at);

  // --- Causal joins ---------------------------------------------------------

  void BindPath(const std::string& path, const TraceContext& ctx);
  TraceContext PathContext(const std::string& path) const;
  void BindZxid(int64_t zxid, const TraceContext& ctx);
  TraceContext ZxidContext(int64_t zxid) const;

  // --- Queries --------------------------------------------------------------

  const TraceData* Find(uint64_t trace_id) const;
  // Root-span start, or -1 if the trace is unknown. Propagation latency at a
  // hop is `now - TraceStartTime(ctx.trace_id)`.
  SimTime TraceStartTime(uint64_t trace_id) const;
  size_t trace_count() const { return traces_.size(); }

  // A complete trace: has spans, every span is closed, every parent exists,
  // and time is monotone along every parent→child edge (child starts no
  // earlier than its parent — causality in sim time).
  Status ValidateComplete(uint64_t trace_id) const;

  // Indented text rendering of the span tree, children ordered by
  // (start, id). Deterministic; DST violation reports embed this.
  std::string DumpTree(uint64_t trace_id) const;

 private:
  std::map<uint64_t, TraceData> traces_;
  std::map<std::string, TraceContext> by_path_;
  std::map<int64_t, TraceContext> by_zxid_;
  uint64_t next_trace_id_ = 1;
  uint64_t sample_every_ = 1;
  uint64_t arrivals_ = 0;
  uint64_t sampled_out_ = 0;
};

}  // namespace configerator

#endif  // SRC_OBS_TRACE_H_
