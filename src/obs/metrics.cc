#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/strings.h"

namespace configerator {

int Histogram::BucketIndex(double value) {
  if (!(value > 0) || std::isnan(value)) {
    return 0;  // Zero, negative, NaN: underflow bucket.
  }
  int exp = 0;
  double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac ∈ [0.5, 1).
  // The sample lives in octave [2^(exp-1), 2^exp).
  int octave = (exp - 1) - kMinExp;
  if (octave < 0) {
    return 0;
  }
  if (octave >= kNumOctaves) {
    return kNumBuckets - 1;
  }
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBucketsPerOctave);
  sub = std::clamp(sub, 0, kSubBucketsPerOctave - 1);
  return 1 + octave * kSubBucketsPerOctave + sub;
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) {
    return 0;
  }
  if (index >= kNumBuckets - 1) {
    return std::ldexp(1.0, kMaxExp);
  }
  int octave = (index - 1) / kSubBucketsPerOctave;
  int sub = (index - 1) % kSubBucketsPerOctave;
  double frac = 0.5 + static_cast<double>(sub) / (2.0 * kSubBucketsPerOctave);
  return std::ldexp(frac, kMinExp + octave + 1);
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) {
    return std::ldexp(1.0, kMinExp);
  }
  if (index >= kNumBuckets - 1) {
    return std::ldexp(1.0, kMaxExp + 1);  // Nominal; max() is exact anyway.
  }
  int octave = (index - 1) / kSubBucketsPerOctave;
  int sub = (index - 1) % kSubBucketsPerOctave;
  double frac =
      0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBucketsPerOctave);
  return std::ldexp(frac, kMinExp + octave + 1);
}

void Histogram::Record(double value, uint64_t count) {
  if (count == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[static_cast<size_t>(BucketIndex(value))] += count;
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      if (i == 0) {
        return min_;  // Underflow: every sample there is ≤ 2^kMinExp anyway.
      }
      if (i == kNumBuckets - 1) {
        return max_;
      }
      double mid = 0.5 * (BucketLowerBound(i) + BucketUpperBound(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // Unreachable: cumulative reaches count_ ≥ rank.
}

std::string MetricsRegistry::CanonicalKey(const std::string& name,
                                          const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      key += ",";
    }
    first = false;
    key += k + "=" + v;
  }
  key += "}";
  return key;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const MetricLabels& labels) {
  auto& slot = counters_[CanonicalKey(name, labels)];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const MetricLabels& labels) {
  auto& slot = gauges_[CanonicalKey(name, labels)];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const MetricLabels& labels) {
  std::string key = CanonicalKey(name, labels);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    histogram_names_[key] = name;
  }
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const MetricLabels& labels) const {
  auto it = counters_.find(CanonicalKey(name, labels));
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const MetricLabels& labels) const {
  auto it = gauges_.find(CanonicalKey(name, labels));
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name, const MetricLabels& labels) const {
  auto it = histograms_.find(CanonicalKey(name, labels));
  return it == histograms_.end() ? nullptr : it->second.get();
}

Histogram MetricsRegistry::MergedHistogram(const std::string& name) const {
  Histogram merged;
  for (const auto& [key, hist_name] : histogram_names_) {
    if (hist_name == name) {
      merged.Merge(*histograms_.at(key));
    }
  }
  return merged;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  for (const auto& [key, counter] : counters_) {
    out += StrFormat("counter %s %llu\n", key.c_str(),
                     static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [key, gauge] : gauges_) {
    out += StrFormat("gauge %s %.6f\n", key.c_str(), gauge->value());
  }
  for (const auto& [key, hist] : histograms_) {
    out += StrFormat(
        "histogram %s count=%llu p50=%.6f p99=%.6f max=%.6f\n", key.c_str(),
        static_cast<unsigned long long>(hist->count()), hist->Quantile(0.5),
        hist->Quantile(0.99), hist->max());
  }
  return out;
}

}  // namespace configerator
