// Process-wide metrics registry: counters, gauges, and mergeable log-linear
// histograms, labeled by subsystem/server. The design constraints, in order:
//
//  * Hot-path cheap. GatekeeperRuntime::Check() runs millions of times per
//    second in the paper's Figure 15; instrumented components therefore cache
//    the Counter*/Gauge*/Histogram* returned by the registry once (pointers
//    are stable for the registry's lifetime) and a counter bump is a single
//    add on a cached pointer — no lookup, no lock, no allocation.
//  * Mergeable. Histograms use a *fixed* log-linear bucket layout (every
//    histogram in the process has identical bucket boundaries), so merging
//    two histograms is an element-wise count add: exactly associative and
//    commutative, and quantiles of the merge equal quantiles of recording
//    the union stream into one histogram. That is what lets per-server
//    histograms roll up into fleet-wide percentiles without resampling.
//  * Deterministic. Iteration order over metrics is the canonical
//    "name{k=v,...}" key order; a DST run dumps identical text on replay.
//
// Quantile error: a log-linear bucket spans 1/kSubBucketsPerOctave of its
// octave, so a reported quantile is within one bucket's relative width
// (1/32 ≈ 3.1%) of the exact sample quantile — tight enough for the p50/p95/
// p99/p999 queries the benches and the DST freshness-SLO invariant make.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace configerator {

// Thread-safe: counters are bumped from concurrent GatekeeperRuntime check
// threads. Relaxed atomics — counts are statistics, not synchronization, and
// a relaxed fetch_add keeps the hot path a single lock-free RMW.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    // No atomic<double>::fetch_add until C++20 libs catch up everywhere;
    // a CAS loop is portable and this is never on the check hot path.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Mergeable log-linear histogram over non-negative samples. Values in
// [2^kMinExp, 2^kMaxExp) land in a bucket whose relative width is
// 1/kSubBucketsPerOctave; values outside clamp into under/overflow buckets
// (exact min/max are tracked separately, so Quantile(0)/Quantile(1) are
// exact).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 32;
  static constexpr int kMinExp = -30;  // 2^-30 ≈ 9.3e-10 (sub-ns in seconds).
  static constexpr int kMaxExp = 34;   // 2^34  ≈ 1.7e10 (centuries; bytes too).
  static constexpr int kNumOctaves = kMaxExp - kMinExp;
  // Interior buckets plus one underflow (index 0) and one overflow (last).
  static constexpr int kNumBuckets = kNumOctaves * kSubBucketsPerOctave + 2;

  Histogram() : buckets_(static_cast<size_t>(kNumBuckets), 0) {}

  void Record(double value, uint64_t count = 1);

  // Element-wise bucket add. Because every Histogram shares one fixed bucket
  // layout this is exactly associative and commutative.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }

  // Nearest-rank quantile, q in [0, 1]: the midpoint of the bucket holding
  // the ceil(q*count)-th sample, clamped to the exact [min, max]. Worst-case
  // relative error vs. the exact sample quantile is one bucket's relative
  // width (QuantileRelativeError()).
  double Quantile(double q) const;
  double Percentile(double p) const { return Quantile(p / 100.0); }

  static double QuantileRelativeError() {
    return 1.0 / static_cast<double>(kSubBucketsPerOctave);
  }

  // Bucket geometry (exposed for the merge property test).
  static int BucketIndex(double value);
  static double BucketLowerBound(int index);
  static double BucketUpperBound(int index);

  uint64_t bucket_count(int index) const {
    return buckets_[static_cast<size_t>(index)];
  }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Metric labels, e.g. {{"server", "0.1.4"}}. std::map: canonical order.
using MetricLabels = std::map<std::string, std::string>;

// Process-wide registry. GetX(name, labels) creates on first use and always
// returns the same stable pointer for the same (name, labels) afterwards.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {});

  // Lookup without creating; nullptr if the metric was never touched.
  const Counter* FindCounter(const std::string& name,
                             const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(const std::string& name,
                         const MetricLabels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const MetricLabels& labels = {}) const;

  // Fleet roll-up: merge of every histogram named `name` across all label
  // sets (the per-server → fleet aggregation the paper's Fig. 14 reports).
  Histogram MergedHistogram(const std::string& name) const;

  // Deterministic text dump of every metric, one per line, sorted by the
  // canonical key — DST traces and tests can diff this.
  std::string DumpText() const;

  // "name{k=v,k2=v2}" (or just "name" with no labels).
  static std::string CanonicalKey(const std::string& name,
                                  const MetricLabels& labels);

  size_t counter_count() const { return counters_.size(); }
  size_t gauge_count() const { return gauges_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

 private:
  // unique_ptr values keep the returned pointers stable across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Key → name, for MergedHistogram (key order groups names together).
  std::map<std::string, std::string> histogram_names_;
};

}  // namespace configerator

#endif  // SRC_OBS_METRICS_H_
