// The observability bundle components attach to: one metrics registry + one
// commit tracer per process (or per DST harness / bench world). Attachment
// is opt-in — every instrumented component takes an `Observability*` that
// defaults to nullptr, and unattached components behave exactly as before
// (no metrics, no spans, no extra messages).

#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace configerator {

struct Observability {
  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace configerator

#endif  // SRC_OBS_OBSERVABILITY_H_
