// Deterministic pseudo-random number generation and the statistical
// distributions the workload generators need (uniform, Zipf, log-normal,
// Poisson arrivals). Everything is seedable so experiments reproduce exactly.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

namespace configerator {

// SplitMix64: used to expand a single seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256**: fast, high-quality, deterministic PRNG. Satisfies the
// UniformRandomBitGenerator concept so it plugs into <random> if needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) {
      s = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    uint64_t result = RotL(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = RotL(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Standard normal via Box–Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

  // Exponential inter-arrival time with the given rate (events per unit time).
  double NextExponential(double rate) {
    double u = NextDouble();
    if (u < 1e-300) {
      u = 1e-300;
    }
    return -std::log(u) / rate;
  }

 private:
  static uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Zipf(s) distribution over ranks 1..n — models the heavy skew of config
// update popularity the paper reports (top 1% of raw configs receive 92.8% of
// updates). Uses a precomputed CDF; O(log n) sampling.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  // Returns a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Stable 64-bit hash of a string, for deterministic per-(project,user)
// sampling in Gatekeeper. FNV-1a core with a SplitMix64 finalizer: plain FNV
// has weak high bits, which would bias sampling probabilities derived from
// the top of the hash.
inline uint64_t StableHash64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  uint64_t state = h;
  return SplitMix64(state);
}

}  // namespace configerator

#endif  // SRC_UTIL_RNG_H_
