#include "src/util/sha256.h"

#include <cstring>

namespace configerator {

namespace {

constexpr std::array<uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t RotR(uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t LoadBigEndian32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) |
         uint32_t{p[3]};
}

inline void StoreBigEndian32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string Sha256Digest::ToHex() const {
  std::string out;
  out.resize(64);
  for (size_t i = 0; i < bytes.size(); ++i) {
    out[2 * i] = kHexDigits[bytes[i] >> 4];
    out[2 * i + 1] = kHexDigits[bytes[i] & 0xf];
  }
  return out;
}

bool Sha256Digest::FromHex(std::string_view hex, Sha256Digest* out) {
  if (hex.size() != 64) {
    return false;
  }
  for (size_t i = 0; i < 32; ++i) {
    int hi = HexNibble(hex[2 * i]);
    int lo = HexNibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->bytes[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return true;
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBigEndian32(block + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    size_t fill = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, fill);
    buffer_len_ += fill;
    p += fill;
    len -= fill;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }

  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }

  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
}

Sha256Digest Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;

  // Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length.
  uint8_t pad_byte = 0x80;
  Update(&pad_byte, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_len_ accounting for the length field itself.
  std::memcpy(buffer_.data() + buffer_len_, len_bytes, 8);
  ProcessBlock(buffer_.data());

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    StoreBigEndian32(digest.bytes.data() + 4 * i, state_[i]);
  }
  return digest;
}

Sha256Digest Sha256::Hash(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace configerator
