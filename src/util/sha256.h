// From-scratch SHA-256 (FIPS 180-4). The VCS substrate content-addresses
// blobs/trees/commits by SHA-256, PackageVessel verifies chunk integrity with
// it, and MobileConfig uses it for schema/value hashes. No OpenSSL dependency.

#ifndef SRC_UTIL_SHA256_H_
#define SRC_UTIL_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace configerator {

// A 32-byte SHA-256 digest. Value type; comparable and hashable so it can key
// maps in the object store.
struct Sha256Digest {
  std::array<uint8_t, 32> bytes{};

  // 64-char lowercase hex rendering (object ids in the VCS).
  std::string ToHex() const;

  // Parse a 64-char hex string; returns false on malformed input.
  static bool FromHex(std::string_view hex, Sha256Digest* out);

  // Truncated hex for logs, like git's short ids.
  std::string ShortHex(size_t chars = 12) const { return ToHex().substr(0, chars); }

  bool operator==(const Sha256Digest&) const = default;
  auto operator<=>(const Sha256Digest&) const = default;
};

// Incremental hasher: Update() any number of times, then Finish().
class Sha256 {
 public:
  Sha256();

  void Update(const void* data, size_t len);
  void Update(std::string_view data) { Update(data.data(), data.size()); }

  // Finalizes and returns the digest. The hasher must not be reused after.
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t total_len_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace configerator

// std::hash support so digests can key unordered_map.
template <>
struct std::hash<configerator::Sha256Digest> {
  size_t operator()(const configerator::Sha256Digest& d) const noexcept {
    size_t h;
    static_assert(sizeof(h) <= sizeof(d.bytes));
    __builtin_memcpy(&h, d.bytes.data(), sizeof(h));
    return h;
  }
};

#endif  // SRC_UTIL_SHA256_H_
