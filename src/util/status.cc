#include "src/util/status.h"

namespace configerator {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInvalidConfig:
      return "INVALID_CONFIG";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kConflict:
      return "CONFLICT";
    case StatusCode::kRejected:
      return "REJECTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace configerator
