// Generic greedy delta-debugging (ddmin) subset minimizer.
//
// Given n items and a predicate that says whether a kept-subset still
// reproduces some failure, finds a small (1-minimal within the probe budget)
// subset of indices that still satisfies the predicate. The full set is
// assumed to reproduce; the predicate is never called on it. Used by the DST
// fault-plan shrinker and by the invariant witness shrinker — anything whose
// probes are deterministic can be minimized this way.

#ifndef SRC_UTIL_DDMIN_H_
#define SRC_UTIL_DDMIN_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace configerator {

// `reproduces` receives the kept indices into the original [0, n) sequence,
// in ascending order. Returns the minimized kept-index list (ascending).
// Every predicate call costs one probe; at most `max_probes` are spent.
// `probes_used` (optional) receives the number actually spent.
std::vector<size_t> DdminSubset(
    size_t n, const std::function<bool(const std::vector<size_t>&)>& reproduces,
    int max_probes, int* probes_used = nullptr);

}  // namespace configerator

#endif  // SRC_UTIL_DDMIN_H_
