// Minimal leveled logger. All components of the stack log through this so
// tests and benches can silence or capture output uniformly.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace configerator {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped. Defaults to kWarning
// so tests and benches stay quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: emit one formatted line to stderr.
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

// Stream-style log sink used by the CLOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define CLOG(level)                                                       \
  if (::configerator::LogLevel::k##level < ::configerator::GetLogLevel()) \
    ;                                                                     \
  else                                                                    \
    ::configerator::LogMessage(::configerator::LogLevel::k##level,        \
                               __FILE__, __LINE__)                        \
        .stream()

}  // namespace configerator

#endif  // SRC_UTIL_LOGGING_H_
