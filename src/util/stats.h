// Descriptive statistics used by the benchmark harness: online mean/stddev,
// exact percentiles over collected samples, CDF tabulation and fixed-width
// histograms. The paper reports everything as CDFs and percentile tables, so
// these helpers produce those shapes directly.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace configerator {

// Welford online mean / variance / min / max.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Collects samples; answers percentile / CDF queries. Sorting is deferred and
// cached.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // p in [0,100]. Nearest-rank percentile.
  double Percentile(double p) const;

  // Fraction of samples <= x, in [0,1].
  double CdfAt(double x) const;

  double Mean() const;
  double Min() const { return Percentile(0); }
  double Max() const { return Percentile(100); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// One row of a tabulated CDF: value and cumulative fraction.
struct CdfPoint {
  double value = 0;
  double cumulative = 0;  // in [0,1]
};

// Tabulate the CDF of `samples` at the given probe values.
std::vector<CdfPoint> TabulateCdf(const SampleSet& samples,
                                  const std::vector<double>& probes);

// Fraction of `samples` falling in [lo, hi] — used for the paper's bucketed
// tables (Tables 1–3).
double FractionInRange(const SampleSet& samples, double lo, double hi);

}  // namespace configerator

#endif  // SRC_UTIL_STATS_H_
