#include "src/util/rng.h"

#include <algorithm>
#include <cassert>

namespace configerator {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) {
    v /= sum;
  }
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace configerator
