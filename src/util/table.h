// Aligned-text table printer used by every benchmark binary to report
// paper-reported vs. measured rows in a uniform format.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace configerator {

// Builds and prints a fixed-column text table:
//
//   TextTable t({"phase", "paper", "measured"});
//   t.AddRow({"commit", "5 s", "4.8 s"});
//   t.Print();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and a header separator.
  std::string ToString() const;

  // ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints the standard benchmark banner: experiment id + one-line description.
void PrintBenchHeader(const std::string& experiment, const std::string& description);

}  // namespace configerator

#endif  // SRC_UTIL_TABLE_H_
