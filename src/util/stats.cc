#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace configerator {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  if (p <= 0) {
    return samples_.front();
  }
  if (p >= 100) {
    return samples_.back();
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::CdfAt(double x) const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double SampleSet::Mean() const {
  if (samples_.empty()) {
    return 0;
  }
  double sum = 0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

std::vector<CdfPoint> TabulateCdf(const SampleSet& samples,
                                  const std::vector<double>& probes) {
  std::vector<CdfPoint> out;
  out.reserve(probes.size());
  for (double p : probes) {
    out.push_back({p, samples.CdfAt(p)});
  }
  return out;
}

double FractionInRange(const SampleSet& samples, double lo, double hi) {
  if (samples.empty()) {
    return 0;
  }
  size_t n = 0;
  for (double s : samples.samples()) {
    if (s >= lo && s <= hi) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(samples.size());
}

}  // namespace configerator
