#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace configerator {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Strip directories: logs show "proxy.cc:42", not the full path.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogLine(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line,
               msg.c_str());
}

}  // namespace configerator
