#include "src/util/ddmin.h"

#include <algorithm>

namespace configerator {

namespace {

std::vector<size_t> WithoutChunk(const std::vector<size_t>& kept, size_t begin,
                                 size_t end) {
  std::vector<size_t> out;
  out.reserve(kept.size() - (end - begin));
  for (size_t i = 0; i < kept.size(); ++i) {
    if (i < begin || i >= end) {
      out.push_back(kept[i]);
    }
  }
  return out;
}

}  // namespace

std::vector<size_t> DdminSubset(
    size_t n, const std::function<bool(const std::vector<size_t>&)>& reproduces,
    int max_probes, int* probes_used) {
  std::vector<size_t> kept(n);
  for (size_t i = 0; i < n; ++i) {
    kept[i] = i;
  }
  int probes = 0;

  // Classic ddmin: try dropping ever-smaller chunks, restarting at coarse
  // granularity whenever a removal sticks.
  size_t chunks = 2;
  while (kept.size() > 1 && probes < max_probes) {
    bool removed_any = false;
    size_t size = kept.size();
    chunks = std::min(chunks, size);
    size_t chunk_size = (size + chunks - 1) / chunks;
    for (size_t begin = 0; begin < size && probes < max_probes;
         begin += chunk_size) {
      size_t end = std::min(begin + chunk_size, size);
      std::vector<size_t> candidate = WithoutChunk(kept, begin, end);
      ++probes;
      if (reproduces(candidate)) {
        kept = std::move(candidate);
        removed_any = true;
        break;  // Restart the scan against the smaller set.
      }
    }
    if (removed_any) {
      chunks = 2;  // Coarse again: big chunks may now be removable.
    } else if (chunks >= kept.size()) {
      break;  // Single-item granularity and nothing removable: 1-minimal.
    } else {
      chunks = std::min(chunks * 2, kept.size());
    }
  }

  if (probes_used != nullptr) {
    *probes_used = probes;
  }
  return kept;
}

}  // namespace configerator
