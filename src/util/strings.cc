#include "src/util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace configerator {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < s.size()) {
    out.emplace_back(s.substr(start));
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool LooksLikeTimestamp(std::string_view s) {
  s = StrTrim(s);
  // "YYYY-MM-DD" prefix form.
  if (s.size() >= 10 && std::isdigit(static_cast<unsigned char>(s[0])) &&
      std::isdigit(static_cast<unsigned char>(s[1])) &&
      std::isdigit(static_cast<unsigned char>(s[2])) &&
      std::isdigit(static_cast<unsigned char>(s[3])) && s[4] == '-' &&
      std::isdigit(static_cast<unsigned char>(s[5])) &&
      std::isdigit(static_cast<unsigned char>(s[6])) && s[7] == '-' &&
      std::isdigit(static_cast<unsigned char>(s[8])) &&
      std::isdigit(static_cast<unsigned char>(s[9]))) {
    return true;
  }
  // Plausible unix epoch seconds: all digits, 9-11 chars (2001..2286-ish).
  if (s.size() >= 9 && s.size() <= 11) {
    for (char c : s) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return false;
      }
    }
    return true;
  }
  return false;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  if (u == 0) {
    return StrFormat("%.0f %s", bytes, units[u]);
  }
  return StrFormat("%.1f %s", bytes, units[u]);
}

}  // namespace configerator
