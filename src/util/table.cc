#include "src/util/table.h"

#include <cstdio>

namespace configerator {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::string sep;
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += "  ";
    sep.append(widths[c], '-');
  }
  out += sep + '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintBenchHeader(const std::string& experiment, const std::string& description) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

}  // namespace configerator
