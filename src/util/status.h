// Lightweight error-handling vocabulary used across the configuration stack.
//
// The stack is exception-free in its steady-state paths: operations that can
// fail return `Status` (no payload) or `Result<T>` (payload or error), in the
// style of absl::Status / std::expected. This keeps control-plane failure
// handling explicit, which matters for a system whose availability story is
// "the application keeps running no matter which management component died".

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace configerator {

// Error taxonomy. Mirrors the failure classes the paper's components surface:
// validation failures (kInvalidConfig), review/canary rejections (kRejected),
// VCS conflicts (kConflict), lookups (kNotFound), and infrastructure faults
// (kUnavailable).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kInvalidConfig,   // Validator or schema violation.
  kNotFound,
  kAlreadyExists,
  kConflict,        // VCS true-conflict between diffs.
  kRejected,        // Review / canary / CI rejected the change.
  kUnavailable,     // Component down or quorum lost.
  kDeadlineExceeded,
  kCorruption,      // Hash mismatch, torn read, malformed object.
  kInternal,
};

// Human-readable name for a status code ("OK", "CONFLICT", ...).
std::string_view StatusCodeName(StatusCode code);

// Status: a code plus a context message. Cheap to copy for the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl.
inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status InvalidConfigError(std::string msg) {
  return Status(StatusCode::kInvalidConfig, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status ConflictError(std::string msg) {
  return Status(StatusCode::kConflict, std::move(msg));
}
inline Status RejectedError(std::string msg) {
  return Status(StatusCode::kRejected, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status CorruptionError(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError();` both
  // work at call sites, like absl::StatusOr.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // value() if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

// RETURN_IF_ERROR(expr): early-return a non-OK Status from a Status-returning
// function.
#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::configerator::Status _status = (expr);         \
    if (!_status.ok()) {                             \
      return _status;                                \
    }                                                \
  } while (false)

// ASSIGN_OR_RETURN(lhs, rexpr): evaluate a Result-returning expression and
// bind its value, or propagate the error.
#define ASSIGN_OR_RETURN(lhs, rexpr)                 \
  auto CONFIGERATOR_CONCAT_(_result_, __LINE__) = (rexpr);        \
  if (!CONFIGERATOR_CONCAT_(_result_, __LINE__).ok()) {           \
    return CONFIGERATOR_CONCAT_(_result_, __LINE__).status();     \
  }                                                  \
  lhs = std::move(CONFIGERATOR_CONCAT_(_result_, __LINE__)).value()

#define CONFIGERATOR_CONCAT_INNER_(a, b) a##b
#define CONFIGERATOR_CONCAT_(a, b) CONFIGERATOR_CONCAT_INNER_(a, b)

}  // namespace configerator

#endif  // SRC_UTIL_STATUS_H_
