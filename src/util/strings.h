// Small string utilities shared across modules.

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace configerator {

// Split `s` on `sep`; keeps empty pieces ("a//b" on '/' -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Split into lines, treating a trailing '\n' as a terminator (no empty last
// line). Used by the diff engine.
std::vector<std::string> SplitLines(std::string_view s);

// Join with a separator.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Strip ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// True if `s` looks like an ISO-8601-ish timestamp ("2015-10-04",
// "2015-10-04 12:30:00", "2015-10-04T12:30:00Z") or a plausible unix epoch
// number. Sitevars uses this for historical type inference.
bool LooksLikeTimestamp(std::string_view s);

// Human-readable byte count ("1.5 KB", "14.8 MB").
std::string HumanBytes(double bytes);

}  // namespace configerator

#endif  // SRC_UTIL_STRINGS_H_
