// §3.4 ablation: the push model (Zeus subscription tree) vs the pull model
// (stateless server, clients poll with their full interest list). The paper
// chose push because (1) empty polls are pure overhead at any poll rate, and
// (2) a stateless server forces each poll to carry the client's whole config
// list — unscalable when servers need tens of thousands of configs.

#include <cstdio>

#include "src/distribution/proxy.h"
#include "src/distribution/pull.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/zeus/zeus.h"

using namespace configerator;

namespace {

constexpr int kServers = 200;
constexpr int kConfigsPerServer = 100;
constexpr int kUpdates = 60;  // One update per simulated minute, for an hour.

struct ModelResult {
  uint64_t messages;
  uint64_t bytes;
  double mean_staleness_s;  // Update commit -> client sees it.
};

ModelResult RunPush() {
  Simulator sim;
  Network net(&sim, Topology(2, 2, 60), /*seed=*/41);
  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{1, 0, 0},
                                   ServerId{0, 0, 1}, ServerId{1, 0, 1},
                                   ServerId{0, 1, 0}};
  std::vector<ServerId> observers = {ServerId{0, 0, 59}, ServerId{0, 1, 59},
                                     ServerId{1, 0, 59}, ServerId{1, 1, 59}};
  ZeusEnsemble zeus(&net, members, observers);

  std::map<std::string, SimTime> published_at;
  SampleSet staleness;

  std::vector<std::unique_ptr<OnDiskCache>> disks;
  std::vector<std::unique_ptr<ConfigProxy>> proxies;
  for (int i = 0; i < kServers; ++i) {
    ServerId host{i % 2, (i / 2) % 2, 2 + (i / 4) % 55};
    disks.push_back(std::make_unique<OnDiskCache>());
    proxies.push_back(
        std::make_unique<ConfigProxy>(&net, &zeus, host, disks.back().get(),
                                      500 + i));
    for (int c = 0; c < kConfigsPerServer; ++c) {
      proxies.back()->Subscribe(
          StrFormat("conf/%04d.json", c),
          [&staleness, &published_at, &sim](const std::string&,
                                            const std::string& value, int64_t) {
            auto it = published_at.find(value);
            if (it != published_at.end()) {
              staleness.Add(SimToSeconds(sim.now() - it->second));
            }
          });
    }
  }
  sim.RunUntil(5 * kSimSecond);
  uint64_t messages_before = net.messages_sent();
  uint64_t bytes_before = net.bytes_sent();

  Rng rng(77);
  for (int u = 0; u < kUpdates; ++u) {
    SimTime when = (u + 1) * kSimMinute;
    sim.ScheduleAt(when, [&, u, when] {
      std::string key =
          StrFormat("conf/%04llu.json", static_cast<unsigned long long>(
                                            rng.NextBounded(kConfigsPerServer)));
      std::string payload = "v" + std::to_string(u);
      published_at[payload] = when;
      zeus.Write(ServerId{0, 0, 2}, key, payload, [](Result<int64_t>) {});
    });
  }
  sim.RunUntil((kUpdates + 5) * kSimMinute);
  return ModelResult{net.messages_sent() - messages_before,
                     net.bytes_sent() - bytes_before, staleness.Mean()};
}

ModelResult RunPull(SimTime poll_interval) {
  Simulator sim;
  Network net(&sim, Topology(2, 2, 60), /*seed=*/42);
  PullService service(&net, ServerId{0, 0, 0});
  for (int c = 0; c < kConfigsPerServer; ++c) {
    service.Publish(StrFormat("conf/%04d.json", c), "v0");
  }

  std::map<std::string, SimTime> published_at;
  SampleSet staleness;

  std::vector<std::unique_ptr<PullClient>> clients;
  Rng stagger_rng(5);
  for (int i = 0; i < kServers; ++i) {
    ServerId host{i % 2, (i / 2) % 2, 2 + (i / 4) % 55};
    clients.push_back(
        std::make_unique<PullClient>(&net, &service, host, poll_interval));
    for (int c = 0; c < kConfigsPerServer; ++c) {
      clients.back()->Track(
          StrFormat("conf/%04d.json", c),
          [&staleness, &published_at, &sim](const std::string&,
                                            const std::string& value, int64_t) {
            auto it = published_at.find(value);
            if (it != published_at.end()) {
              staleness.Add(SimToSeconds(sim.now() - it->second));
            }
          });
    }
    clients.back()->Start(static_cast<SimTime>(
        stagger_rng.NextBounded(static_cast<uint64_t>(poll_interval))));
  }
  sim.RunUntil(5 * kSimSecond);
  uint64_t messages_before = net.messages_sent();
  uint64_t bytes_before = net.bytes_sent();

  Rng rng(77);
  for (int u = 0; u < kUpdates; ++u) {
    SimTime when = (u + 1) * kSimMinute;
    sim.ScheduleAt(when, [&, u, when] {
      std::string key =
          StrFormat("conf/%04llu.json", static_cast<unsigned long long>(
                                            rng.NextBounded(kConfigsPerServer)));
      std::string payload = "v" + std::to_string(u + 1);
      published_at[payload] = when;
      service.Publish(key, payload);
    });
  }
  sim.RunUntil((kUpdates + 5) * kSimMinute);
  return ModelResult{net.messages_sent() - messages_before,
                     net.bytes_sent() - bytes_before, staleness.Mean()};
}

}  // namespace

int main() {
  PrintBenchHeader("§3.4 ablation — push vs pull distribution",
                   StrFormat("%d servers x %d configs each; %d updates over "
                             "one hour",
                             kServers, kConfigsPerServer, kUpdates));

  ModelResult push = RunPush();
  TextTable table({"model", "messages", "bytes", "mean staleness (s)"});
  table.AddRow({"push (Zeus tree)", std::to_string(push.messages),
                HumanBytes(static_cast<double>(push.bytes)),
                StrFormat("%.2f", push.mean_staleness_s)});
  for (SimTime interval : {10 * kSimSecond, 60 * kSimSecond, 600 * kSimSecond}) {
    ModelResult pull = RunPull(interval);
    table.AddRow({StrFormat("pull, %llds poll",
                            static_cast<long long>(interval / kSimSecond)),
                  std::to_string(pull.messages),
                  HumanBytes(static_cast<double>(pull.bytes)),
                  StrFormat("%.2f", pull.mean_staleness_s)});
  }
  table.Print();

  std::printf("\npaper vs measured:\n");
  ModelResult pull60 = RunPull(60 * kSimSecond);
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"empty polls are pure overhead",
                  "hard to pick a poll frequency",
                  StrFormat("pull@60s sends %.0fx the messages of push",
                            static_cast<double>(pull60.messages) /
                                static_cast<double>(push.messages))});
  summary.AddRow({"stateless server: polls carry the full config list",
                  "not scalable as #configs grows",
                  StrFormat("pull@60s moves %s vs push %s",
                            HumanBytes(static_cast<double>(pull60.bytes)).c_str(),
                            HumanBytes(static_cast<double>(push.bytes)).c_str())});
  summary.AddRow({"push delivers promptly",
                  "no polling delay",
                  StrFormat("staleness %.2fs push vs %.2fs pull@60s",
                            push.mean_staleness_s, pull60.mean_staleness_s)});
  summary.Print();
  return 0;
}
