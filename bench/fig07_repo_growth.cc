// Figure 7: number of configs in the repository over time. The paper's
// y-axis is redacted ("hundreds of thousands"); what is checkable is the
// shape — superlinear growth, compiled configs growing faster than raw and
// ending near 75% of the population, and the step when Gatekeeper migrated
// onto Configerator. We regenerate the curve from the calibrated workload
// model.

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/population.h"

using namespace configerator;

int main() {
  PrintBenchHeader("Figure 7 — repository growth",
                   "Configs in the repository by day (workload model, "
                   "population scaled 10x down from 'hundreds of thousands')");

  PopulationModel::Params params;
  params.final_configs = 30'000;
  params.total_days = 1400;
  PopulationModel model(params);
  model.Run();
  auto counts = model.CountsByDay();

  TextTable table({"day", "compiled", "raw", "total", "compiled-share"});
  for (int day = 100; day <= params.total_days; day += 100) {
    const auto& c = counts[static_cast<size_t>(day)];
    size_t total = c.compiled + c.raw;
    table.AddRow({std::to_string(day), std::to_string(c.compiled),
                  std::to_string(c.raw), std::to_string(total),
                  total == 0 ? "-"
                             : StrFormat("%.0f%%", 100.0 *
                                                       static_cast<double>(c.compiled) /
                                                       static_cast<double>(total))});
  }
  table.Print();

  const auto& last = counts.back();
  size_t total = last.compiled + last.raw;
  double compiled_share =
      100.0 * static_cast<double>(last.compiled) / static_cast<double>(total);
  size_t half_day = static_cast<size_t>(params.total_days) / 2;
  size_t at_half = counts[half_day].compiled + counts[half_day].raw;

  std::printf("\npaper vs measured:\n");
  TextTable summary({"property", "paper", "measured"});
  summary.AddRow({"compiled share of all configs", "75%",
                  StrFormat("%.0f%%", compiled_share)});
  summary.AddRow({"growth shape", "superlinear",
                  at_half * 2 < total ? "superlinear (2nd half > 1st half)"
                                      : "NOT superlinear"});
  const auto& pre = counts[static_cast<size_t>(params.gatekeeper_migration_day - 1)];
  const auto& post = counts[static_cast<size_t>(params.gatekeeper_migration_day)];
  summary.AddRow({"Gatekeeper migration step", "visible jump in compiled",
                  StrFormat("+%zu compiled configs on day %d",
                            post.compiled - pre.compiled,
                            params.gatekeeper_migration_day)});
  summary.Print();
  return 0;
}
