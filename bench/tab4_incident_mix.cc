// §6.4's incident table: of high-impact incidents related to configuration
// management, 42% were common config errors (Type I), 36% subtle errors such
// as load-related issues (Type II), and 22% were valid configs exposing
// latent code bugs (Type III). This bench runs a fault-injection campaign
// through the automated canary pipeline and reports (a) the incident mix
// among escapes, and (b) the §6.4 ablation — without the cluster-sized
// canary phase, load-related (Type II) errors escape far more often, which
// is exactly the incident that made the paper add that phase.

#include <cstdio>
#include <map>

#include "src/canary/canary.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

struct CampaignResult {
  std::map<ConfigDefect, int> injected;
  std::map<ConfigDefect, int> escaped;  // Canary passed a defective config.
  int clean_rejected = 0;               // False positives.
  int clean_total = 0;
};

CampaignResult RunCampaign(const CanarySpec& spec, int changes, uint64_t seed) {
  Simulator sim;
  CanaryService::Options options;
  options.fleet_size = 200'000;
  CanaryService service(&sim, options);
  Rng rng(seed);
  CampaignResult result;

  for (int i = 0; i < changes; ++i) {
    // 16% of incidents were config-related in the paper's three-month audit;
    // here: most changes are clean, defective ones follow the 42/36/22 mix.
    ConfigDefect defect = ConfigDefect::kNone;
    if (rng.NextBool(0.16)) {
      double u = rng.NextDouble();
      defect = u < 0.42 ? ConfigDefect::kImmediateError
               : u < 0.78 ? ConfigDefect::kLoadSensitive
                          : ConfigDefect::kLatentCrash;
    }
    // Severity varies: marginal defects are the ones canaries miss.
    DefectServiceModel::Params params;
    params.severity = 0.25 + rng.NextDouble() * 1.5;
    DefectServiceModel model(defect, params, rng.Next());

    Status verdict = InternalError("never finished");
    service.RunTest(spec, &model, [&](Status s) { verdict = std::move(s); });
    sim.RunUntilIdle();

    if (defect == ConfigDefect::kNone) {
      ++result.clean_total;
      if (!verdict.ok()) {
        ++result.clean_rejected;
      }
      continue;
    }
    ++result.injected[defect];
    if (verdict.ok()) {
      ++result.escaped[defect];
    }
  }
  return result;
}

double EscapeRate(const CampaignResult& result, ConfigDefect defect) {
  auto injected = result.injected.find(defect);
  if (injected == result.injected.end() || injected->second == 0) {
    return 0;
  }
  auto escaped = result.escaped.find(defect);
  int n = escaped == result.escaped.end() ? 0 : escaped->second;
  return 100.0 * n / injected->second;
}

}  // namespace

int main() {
  PrintBenchHeader("§6.4 — configuration-incident mix under canary testing",
                   "Fault-injection campaign through the canary pipeline "
                   "(2000 changes; 16% carry a defect, 42/36/22 mix)");

  constexpr int kChanges = 6000;
  CampaignResult full = RunCampaign(CanarySpec::Default(), kChanges, 64);
  CampaignResult small_only = RunCampaign(CanarySpec::SmallOnly(), kChanges, 64);

  int escaped_total = 0;
  for (const auto& [defect, n] : full.escaped) {
    escaped_total += n;
  }

  TextTable mix({"incident type", "paper share", "injected share",
                 "escape rate (20+cluster)", "escape rate (20 only)"});
  struct Row {
    ConfigDefect defect;
    const char* label;
    const char* paper;
  };
  const Row kRows[] = {
      {ConfigDefect::kImmediateError, "Type I: common config errors", "42%"},
      {ConfigDefect::kLoadSensitive, "Type II: subtle (load etc.)", "36%"},
      {ConfigDefect::kLatentCrash, "Type III: valid config, code bug", "22%"},
  };
  int injected_total = 0;
  for (const auto& [defect, n] : full.injected) {
    injected_total += n;
  }
  for (const Row& row : kRows) {
    int injected = full.injected.count(row.defect) ? full.injected.at(row.defect) : 0;
    mix.AddRow({row.label, row.paper,
                StrFormat("%.0f%%", 100.0 * injected / std::max(1, injected_total)),
                StrFormat("%.0f%%", EscapeRate(full, row.defect)),
                StrFormat("%.0f%%", EscapeRate(small_only, row.defect))});
  }
  mix.Print();

  std::printf("\nheadline claims:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow(
      {"canary catches most obvious (Type I) errors", "rollout aborted",
       StrFormat("%.0f%% escape", EscapeRate(full, ConfigDefect::kImmediateError))});
  summary.AddRow(
      {"cluster-phase needed for load issues",
       "added after an incident escaped the 20-server phase",
       StrFormat("Type II escapes: %.0f%% with cluster phase vs %.0f%% without",
                 EscapeRate(full, ConfigDefect::kLoadSensitive),
                 EscapeRate(small_only, ConfigDefect::kLoadSensitive))});
  summary.AddRow(
      {"type III exists: valid configs expose code bugs", "22% of incidents",
       StrFormat("%.0f%% of injected defects were Type III",
                 100.0 * (full.injected.count(ConfigDefect::kLatentCrash)
                              ? full.injected.at(ConfigDefect::kLatentCrash)
                              : 0) /
                     std::max(1, injected_total))});
  summary.AddRow({"false-positive rejections of clean configs", "(not reported)",
                  StrFormat("%.1f%%", 100.0 * full.clean_rejected /
                                          std::max(1, full.clean_total))});
  summary.Print();
  return 0;
}
