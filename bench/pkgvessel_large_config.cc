// §3.5: PackageVessel distributes large configs (e.g. ML models) via the
// hybrid subscription-P2P model. Paper claims: the spam-fighting system
// pushes hundreds of MBs to thousands of live servers "in less than four
// minutes", without overloading the central storage; locality-aware peer
// selection keeps bulk traffic inside clusters.

#include <cstdio>

#include "src/p2p/vessel.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

struct RunResult {
  double seconds;
  double storage_fraction;
  double cross_region_fraction;
};

RunResult Run(int servers_per_cluster, int64_t bytes, bool p2p, bool locality) {
  Simulator sim;
  Network net(&sim, Topology(2, 2, servers_per_cluster), /*seed=*/35);
  std::vector<ServerId> clients;
  for (const ServerId& server : net.topology().AllServers()) {
    if (server.server > 0) {
      clients.push_back(server);
    }
  }
  VesselSwarm::Options options;
  options.p2p_enabled = p2p;
  options.locality_aware = locality;
  VesselSwarm swarm(&net, ServerId{0, 0, 0}, clients, bytes, options, 7);
  swarm.Start();
  sim.RunUntilIdle();
  const VesselSwarm::Stats& stats = swarm.stats();
  double total = static_cast<double>(stats.bytes_from_storage +
                                     stats.bytes_from_peers);
  return RunResult{SimToSeconds(stats.last_completion),
                   static_cast<double>(stats.bytes_from_storage) / total,
                   static_cast<double>(stats.cross_region_bytes) / total};
}

}  // namespace

int main() {
  PrintBenchHeader("§3.5 — PackageVessel large-config distribution",
                   "Hybrid subscription-P2P swarm vs central-only, across "
                   "sizes and fleet scales");

  TextTable sweep({"config size", "fleet", "mode", "fleet done (s)",
                   "from storage", "cross-region"});
  const int64_t kSizes[] = {50LL << 20, 300LL << 20, 1LL << 30};
  const int kFleets[] = {125, 500, 1250};  // Per-cluster sizing (x4 clusters).
  for (int64_t size : kSizes) {
    for (int per_cluster : kFleets) {
      int fleet = per_cluster * 4 - 1;
      RunResult p2p = Run(per_cluster, size, true, true);
      sweep.AddRow({HumanBytes(static_cast<double>(size)),
                    std::to_string(fleet), "P2P+locality",
                    StrFormat("%.1f", p2p.seconds),
                    StrFormat("%.1f%%", 100 * p2p.storage_fraction),
                    StrFormat("%.1f%%", 100 * p2p.cross_region_fraction)});
    }
  }
  sweep.Print();

  std::printf("\nablations at 300 MB / 2000 servers:\n");
  RunResult central = Run(500, 300LL << 20, false, false);
  RunResult blind = Run(500, 300LL << 20, true, false);
  RunResult local = Run(500, 300LL << 20, true, true);
  TextTable ablation({"mode", "fleet done (s)", "from storage", "cross-region"});
  ablation.AddRow({"central only", StrFormat("%.1f", central.seconds),
                   StrFormat("%.1f%%", 100 * central.storage_fraction),
                   StrFormat("%.1f%%", 100 * central.cross_region_fraction)});
  ablation.AddRow({"P2P locality-blind", StrFormat("%.1f", blind.seconds),
                   StrFormat("%.1f%%", 100 * blind.storage_fraction),
                   StrFormat("%.1f%%", 100 * blind.cross_region_fraction)});
  ablation.AddRow({"P2P locality-aware", StrFormat("%.1f", local.seconds),
                   StrFormat("%.1f%%", 100 * local.storage_fraction),
                   StrFormat("%.1f%%", 100 * local.cross_region_fraction)});
  ablation.Print();

  std::printf("\npaper vs measured:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"100s of MBs to 1000s of servers", "< 4 minutes",
                  StrFormat("%.1f s (300MB/2000 servers) -> %s", local.seconds,
                            local.seconds < 240 ? "HOLDS" : "DOES NOT HOLD")});
  summary.AddRow({"P2P avoids overloading central storage",
                  "bulk exchanged between peers",
                  StrFormat("storage serves %.1f%% of bytes (vs 100%% central)",
                            100 * local.storage_fraction)});
  summary.AddRow({"locality-aware peer selection",
                  "prefer same-cluster peers",
                  StrFormat("cross-region bytes %.1f%% vs %.1f%% blind",
                            100 * local.cross_region_fraction,
                            100 * blind.cross_region_fraction)});
  summary.Print();
  return 0;
}
