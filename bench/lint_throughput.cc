// Static-analysis throughput: files/sec for ConfigLint (syntactic L-rules)
// and the abstract interpreter (semantic T-rules + symbol slices) over a
// synthetic 1k-file repository shaped like production config trees: shared
// schema files, mid-layer .cinc module libraries, and .cconf entries that
// import both. Sandcastle runs both passes over a diff's reverse closure on
// every proposal, so this number bounds how large a closure one diff can
// afford to re-analyze.
//
// Emits BENCH_lint_throughput.json next to the working directory for the
// bench trajectory.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/synthetic_repo.h"
#include "src/analysis/absint.h"
#include "src/analysis/lint.h"
#include "src/json/json.h"
#include "src/lang/ast_cache.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Static analysis throughput — lint + abstract interpretation",
      "files/sec over a synthetic 1k-file repo (schemas, module "
      "libraries, entries); bounds Sandcastle's affordable closure size");

  SyntheticRepo repo = BuildSyntheticRepo();
  FileReader reader = repo.sources.AsReader();
  const size_t total_files = repo.paths.size();

  // Pass 1: syntactic lint.
  size_t lint_findings = 0;
  auto lint_start = std::chrono::steady_clock::now();
  {
    ConfigLint linter(reader);
    for (const std::string& path : repo.paths) {
      lint_findings += linter.LintFile(path, *reader(path)).size();
    }
  }
  double lint_s = Seconds(lint_start);

  // Pass 2: abstract interpretation (schema checks + symbol slices).
  size_t absint_findings = 0;
  size_t slices = 0;
  auto absint_start = std::chrono::steady_clock::now();
  {
    AbstractInterpreter absint(reader);
    for (const std::string& path : repo.paths) {
      AbsintResult result = absint.Analyze(path, *reader(path));
      absint_findings += result.diagnostics.size();
      slices += result.exports.size();
    }
  }
  double absint_s = Seconds(absint_start);

  // Pass 3: both analyses sharing one parsed AST per file (what Sandcastle
  // does since lint and absint took a common AstCache): each file is parsed
  // once instead of once per pass.
  size_t shared_findings = 0;
  auto shared_start = std::chrono::steady_clock::now();
  {
    AstCache ast_cache;
    ConfigLint linter(reader);
    AbstractInterpreter absint(reader);
    linter.set_ast_cache(&ast_cache);
    absint.set_ast_cache(&ast_cache);
    for (const std::string& path : repo.paths) {
      const std::string content = *reader(path);
      shared_findings += linter.LintFile(path, content).size();
      shared_findings += absint.Analyze(path, content).diagnostics.size();
    }
  }
  double shared_s = Seconds(shared_start);

  double lint_fps = static_cast<double>(total_files) / lint_s;
  double absint_fps = static_cast<double>(total_files) / absint_s;
  double combined_fps =
      static_cast<double>(total_files) / (lint_s + absint_s);
  double shared_fps = static_cast<double>(total_files) / shared_s;
  double shared_speedup = (lint_s + absint_s) / shared_s;

  TextTable table({"pass", "files", "time (s)", "files/sec", "findings"});
  table.AddRow({"lint (L/G rules)", std::to_string(total_files),
                StrFormat("%.3f", lint_s), StrFormat("%.0f", lint_fps),
                std::to_string(lint_findings)});
  table.AddRow({"absint (T rules)", std::to_string(total_files),
                StrFormat("%.3f", absint_s), StrFormat("%.0f", absint_fps),
                std::to_string(absint_findings)});
  table.AddRow({"combined", std::to_string(total_files),
                StrFormat("%.3f", lint_s + absint_s),
                StrFormat("%.0f", combined_fps), "-"});
  table.AddRow({"combined, shared AST", std::to_string(total_files),
                StrFormat("%.3f", shared_s), StrFormat("%.0f", shared_fps),
                std::to_string(shared_findings)});
  table.Print();
  std::printf("export slices recorded: %zu\n", slices);
  std::printf("shared-AST speedup over separate passes: %.2fx\n",
              shared_speedup);

  Json out = Json::MakeObject();
  out.Set("bench", Json("lint_throughput"));
  out.Set("files", Json(static_cast<int64_t>(total_files)));
  out.Set("lint_seconds", Json(lint_s));
  out.Set("lint_files_per_sec", Json(lint_fps));
  out.Set("lint_findings", Json(static_cast<int64_t>(lint_findings)));
  out.Set("absint_seconds", Json(absint_s));
  out.Set("absint_files_per_sec", Json(absint_fps));
  out.Set("absint_findings", Json(static_cast<int64_t>(absint_findings)));
  out.Set("combined_files_per_sec", Json(combined_fps));
  out.Set("shared_ast_seconds", Json(shared_s));
  out.Set("shared_ast_files_per_sec", Json(shared_fps));
  out.Set("shared_ast_speedup", Json(shared_speedup));
  out.Set("export_slices", Json(static_cast<int64_t>(slices)));
  std::ofstream file("BENCH_lint_throughput.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_lint_throughput.json\n");
  return 0;
}
