// Static-analysis throughput: files/sec for ConfigLint (syntactic L-rules)
// and the abstract interpreter (semantic T-rules + symbol slices) over a
// synthetic 1k-file repository shaped like production config trees: shared
// schema files, mid-layer .cinc module libraries, and .cconf entries that
// import both. Sandcastle runs both passes over a diff's reverse closure on
// every proposal, so this number bounds how large a closure one diff can
// afford to re-analyze.
//
// Emits BENCH_lint_throughput.json next to the working directory for the
// bench trajectory.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/absint.h"
#include "src/analysis/lint.h"
#include "src/json/json.h"
#include "src/lang/compiler.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

struct SyntheticRepo {
  InMemorySources sources;
  std::vector<std::string> paths;  // Analyzable CSL files, in layout order.
};

// 1k files: 20 schemas, 180 shared modules (each importing a schema; every
// tenth also importing the previous module, for some two-hop chains without
// making every entry transitively pull in the whole library), 800 entries
// importing two modules each.
SyntheticRepo BuildRepo() {
  SyntheticRepo repo;
  constexpr int kSchemas = 20;
  constexpr int kModules = 180;
  constexpr int kEntries = 800;

  for (int s = 0; s < kSchemas; ++s) {
    repo.sources.Put(
        StrFormat("schemas/svc%02d.thrift", s),
        StrFormat("struct Svc%02d {\n"
                  "  1: required string name;\n"
                  "  2: optional i32 port = %d;\n"
                  "  3: optional list<string> tags;\n"
                  "}\n",
                  s, 8000 + s));
  }

  for (int m = 0; m < kModules; ++m) {
    int schema = m % kSchemas;
    bool chained = m > 0 && m % 10 == 0;
    // Chained modules derive their port from the previous module's, so the
    // import is used and the repo stays lint-clean.
    std::string port_expr = chained
                                ? StrFormat("BASE_PORT_%d + 1", m - 1)
                                : StrFormat("%d", 9000 + m);
    std::string source = StrFormat(
        "import_thrift(\"schemas/svc%02d.thrift\")\n"
        "BASE_PORT_%d = %s\n"
        "REGIONS_%d = [\"east\", \"west\", \"central\"]\n"
        "def make_svc_%d(name, port=BASE_PORT_%d):\n"
        "    svc = Svc%02d(name=name, port=port)\n"
        "    svc.tags = [\"module:%d\"]\n"
        "    for region in REGIONS_%d:\n"
        "        append(svc.tags, \"region:\" + region)\n"
        "    return svc\n",
        schema, m, port_expr.c_str(), m, m, m, schema, m, m);
    if (chained) {
      source = StrFormat("import_python(\"lib/mod%03d.cinc\", \"BASE_PORT_%d\")\n",
                         m - 1, m - 1) +
               source;
    }
    std::string path = StrFormat("lib/mod%03d.cinc", m);
    repo.sources.Put(path, source);
    repo.paths.push_back(path);
  }

  for (int e = 0; e < kEntries; ++e) {
    int m1 = e % kModules;
    int m2 = (e * 7 + 3) % kModules;
    std::string path = StrFormat("svc/entry%03d.cconf", e);
    repo.sources.Put(
        path,
        StrFormat("import_python(\"lib/mod%03d.cinc\", \"*\")\n"
                  "import_python(\"lib/mod%03d.cinc\", \"BASE_PORT_%d\")\n"
                  "svc = make_svc_%d(name=\"entry%03d\")\n"
                  "if BASE_PORT_%d > 9000:\n"
                  "    svc.port = BASE_PORT_%d\n"
                  "export_if_last(svc)\n",
                  m1, m2, m2, m1, e, m2, m2));
    repo.paths.push_back(path);
  }
  return repo;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Static analysis throughput — lint + abstract interpretation",
      "files/sec over a synthetic 1k-file repo (schemas, module "
      "libraries, entries); bounds Sandcastle's affordable closure size");

  SyntheticRepo repo = BuildRepo();
  FileReader reader = repo.sources.AsReader();
  const size_t total_files = repo.paths.size();

  // Pass 1: syntactic lint.
  size_t lint_findings = 0;
  auto lint_start = std::chrono::steady_clock::now();
  {
    ConfigLint linter(reader);
    for (const std::string& path : repo.paths) {
      lint_findings += linter.LintFile(path, *reader(path)).size();
    }
  }
  double lint_s = Seconds(lint_start);

  // Pass 2: abstract interpretation (schema checks + symbol slices).
  size_t absint_findings = 0;
  size_t slices = 0;
  auto absint_start = std::chrono::steady_clock::now();
  {
    AbstractInterpreter absint(reader);
    for (const std::string& path : repo.paths) {
      AbsintResult result = absint.Analyze(path, *reader(path));
      absint_findings += result.diagnostics.size();
      slices += result.exports.size();
    }
  }
  double absint_s = Seconds(absint_start);

  double lint_fps = static_cast<double>(total_files) / lint_s;
  double absint_fps = static_cast<double>(total_files) / absint_s;
  double combined_fps =
      static_cast<double>(total_files) / (lint_s + absint_s);

  TextTable table({"pass", "files", "time (s)", "files/sec", "findings"});
  table.AddRow({"lint (L/G rules)", std::to_string(total_files),
                StrFormat("%.3f", lint_s), StrFormat("%.0f", lint_fps),
                std::to_string(lint_findings)});
  table.AddRow({"absint (T rules)", std::to_string(total_files),
                StrFormat("%.3f", absint_s), StrFormat("%.0f", absint_fps),
                std::to_string(absint_findings)});
  table.AddRow({"combined", std::to_string(total_files),
                StrFormat("%.3f", lint_s + absint_s),
                StrFormat("%.0f", combined_fps), "-"});
  table.Print();
  std::printf("export slices recorded: %zu\n", slices);

  Json out = Json::MakeObject();
  out.Set("bench", Json("lint_throughput"));
  out.Set("files", Json(static_cast<int64_t>(total_files)));
  out.Set("lint_seconds", Json(lint_s));
  out.Set("lint_files_per_sec", Json(lint_fps));
  out.Set("lint_findings", Json(static_cast<int64_t>(lint_findings)));
  out.Set("absint_seconds", Json(absint_s));
  out.Set("absint_files_per_sec", Json(absint_fps));
  out.Set("absint_findings", Json(static_cast<int64_t>(absint_findings)));
  out.Set("combined_files_per_sec", Json(combined_fps));
  out.Set("export_slices", Json(static_cast<int64_t>(slices)));
  std::ofstream file("BENCH_lint_throughput.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_lint_throughput.json\n");
  return 0;
}
