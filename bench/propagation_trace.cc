// Commit-propagation trace bench: runs the real distribution pipeline
// (landing strip → repository → git tailer → Zeus leader/observer tree →
// per-server proxies) on the simulator with the observability layer
// attached, then reports per-hop and end-to-end latency percentiles straight
// from the recorded span trees and the metrics registry — the Figure 14
// breakdown (commit, tailer discover, Zeus tree, proxy delivery), but
// measured from traces instead of ad-hoc bookkeeping.
//
// Emits BENCH_propagation_trace.json. --commits=N controls the workload
// size (scripts/check.sh uses a small smoke count).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/distribution/proxy.h"
#include "src/distribution/tailer.h"
#include "src/json/json.h"
#include "src/obs/observability.h"
#include "src/pipeline/landing_strip.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/vcs/repository.h"
#include "src/zeus/zeus.h"

using namespace configerator;

namespace {

constexpr int kPaths = 20;
constexpr int kProxies = 40;
constexpr SimTime kCommitSpacing = 7 * kSimSecond;

Json HistogramJson(const Histogram& h) {
  Json out = Json::MakeObject();
  out.Set("count", Json(static_cast<int64_t>(h.count())));
  out.Set("mean", Json(h.mean()));
  out.Set("p50", Json(h.Quantile(0.5)));
  out.Set("p95", Json(h.Quantile(0.95)));
  out.Set("p99", Json(h.Quantile(0.99)));
  out.Set("p999", Json(h.Quantile(0.999)));
  out.Set("max", Json(h.max()));
  return out;
}

void PrintHopRow(TextTable& table, const char* name, const Histogram& h) {
  table.AddRow({name, std::to_string(h.count()),
                StrFormat("%.2f", h.Quantile(0.5)),
                StrFormat("%.2f", h.Quantile(0.95)),
                StrFormat("%.2f", h.Quantile(0.99)),
                StrFormat("%.2f", h.Quantile(0.999)),
                StrFormat("%.2f", h.max())});
}

}  // namespace

int main(int argc, char** argv) {
  int commits = 200;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--commits=", 0) == 0) {
      commits = std::atoi(arg.c_str() + 10);
    }
  }

  PrintBenchHeader("Propagation trace — per-hop latency from commit spans",
                   "Real pipeline on the simulator; Fig 14's breakdown "
                   "measured from the tracer's span trees");

  Observability obs;
  Simulator sim;
  Network net(&sim, Topology(2, 2, 25), /*seed=*/14);
  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{1, 0, 0},
                                   ServerId{0, 0, 1}, ServerId{1, 0, 1},
                                   ServerId{0, 1, 0}};
  std::vector<ServerId> observers;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      observers.push_back(ServerId{r, c, 24});
      observers.push_back(ServerId{r, c, 23});
    }
  }
  // Fig 14's stage sizing: ~4.5 s Zeus tree (processing delay), 5 s tailer
  // poll + 5 s fetch.
  ZeusEnsemble::Options zeus_options;
  zeus_options.processing_delay = 1500 * kSimMillisecond;
  ZeusEnsemble zeus(&net, members, observers, zeus_options);
  zeus.AttachObservability(&obs);

  Repository repo;
  LandingStrip landing(&repo);
  landing.AttachObservability(&obs);
  GitTailer::Options tailer_options;
  tailer_options.poll_interval = 5 * kSimSecond;
  tailer_options.fetch_delay = 5 * kSimSecond;
  GitTailer tailer(&net, ServerId{0, 0, 5}, &repo, &zeus, tailer_options);
  tailer.AttachObservability(&obs);
  tailer.Start();

  std::vector<std::unique_ptr<OnDiskCache>> disks;
  std::vector<std::unique_ptr<ConfigProxy>> proxies;
  for (int i = 0; i < kProxies; ++i) {
    ServerId host{i % 2, (i / 2) % 2, 2 + (i / 4) % 20};
    disks.push_back(std::make_unique<OnDiskCache>());
    proxies.push_back(std::make_unique<ConfigProxy>(
        &net, &zeus, host, disks.back().get(), 100 + i));
    proxies.back()->AttachObservability(&obs);
    for (int p = 0; p < kPaths; ++p) {
      proxies.back()->Subscribe(StrFormat("conf/path%03d.json", p), nullptr);
    }
  }

  // One landed commit every kCommitSpacing, round-robin over the paths; each
  // commit roots a trace, exactly like the production stack does.
  for (int i = 0; i < commits; ++i) {
    sim.ScheduleAt((i + 1) * kCommitSpacing, [&obs, &landing, &repo, &sim, i] {
      SimTime at = (sim.now() / kSimMillisecond) * kSimMillisecond;
      TraceContext root = obs.tracer.StartTrace(
          StrFormat("commit %d", i), "author", at);
      obs.tracer.EndSpan(root, at);
      ProposedDiff diff = MakeProposedDiff(
          repo, "engineer", StrFormat("update %d", i),
          {{StrFormat("conf/path%03d.json", i % kPaths),
            StrFormat("payload-%d", i)}},
          sim.now() / kSimMillisecond);
      (void)landing.Land(diff, root);
    });
  }
  sim.RunUntil((commits + 1) * kCommitSpacing + 60 * kSimSecond);

  // Per-hop latencies, read back from the span trees.
  Histogram hop_discover;   // commit → tailer.publish start (poll + fetch).
  Histogram hop_zeus;       // tailer.publish duration (write → commit ack).
  Histogram hop_tree;       // publish end → observer.apply (the Zeus tree).
  Histogram hop_deliver;    // observer.apply → proxy.apply (last hop).
  Histogram e2e_spans;      // commit → proxy.apply, per delivery.
  size_t complete = 0;
  size_t incomplete = 0;
  for (uint64_t id = 1; id <= obs.tracer.trace_count(); ++id) {
    const TraceData* trace = obs.tracer.Find(id);
    if (trace == nullptr || trace->spans.empty()) {
      continue;
    }
    if (obs.tracer.ValidateComplete(id).ok()) {
      ++complete;
    } else {
      ++incomplete;  // e.g. a publish still in flight at the horizon.
      continue;
    }
    SimTime root_start = trace->start;
    SimTime publish_end = -1;
    for (const Span& span : trace->spans) {
      if (span.name == "tailer.publish") {
        hop_discover.Record(SimToSeconds(span.start - root_start));
        hop_zeus.Record(SimToSeconds(span.end - span.start));
        publish_end = span.end;
      }
    }
    for (const Span& span : trace->spans) {
      if (span.name == "zeus.observer.apply" && publish_end >= 0) {
        hop_tree.Record(SimToSeconds(span.start - publish_end));
      }
      if (span.name == "proxy.apply") {
        const Span& parent = trace->spans[span.parent - 1];
        if (parent.name == "zeus.observer.apply") {
          hop_deliver.Record(SimToSeconds(span.start - parent.start));
        }
        e2e_spans.Record(SimToSeconds(span.start - root_start));
      }
    }
  }

  // The registry's fleet roll-up measures the same end-to-end path.
  Histogram e2e_registry = obs.metrics.MergedHistogram("proxy_propagation_seconds");

  TextTable table({"hop", "samples", "p50 (s)", "p95 (s)", "p99 (s)",
                   "p999 (s)", "max (s)"});
  PrintHopRow(table, "commit -> tailer publish", hop_discover);
  PrintHopRow(table, "zeus write -> commit", hop_zeus);
  PrintHopRow(table, "tree push -> observer", hop_tree);
  PrintHopRow(table, "observer -> proxy apply", hop_deliver);
  PrintHopRow(table, "end-to-end (spans)", e2e_spans);
  PrintHopRow(table, "end-to-end (registry)", e2e_registry);
  table.Print();
  std::printf("\ntraces: %zu complete, %zu incomplete at horizon; paper "
              "baseline ~14.5 s commit-to-fleet\n",
              complete, incomplete);

  Json out = Json::MakeObject();
  out.Set("bench", Json(std::string("propagation_trace")));
  out.Set("commits", Json(static_cast<int64_t>(commits)));
  out.Set("proxies", Json(static_cast<int64_t>(kProxies)));
  out.Set("complete_traces", Json(static_cast<int64_t>(complete)));
  out.Set("incomplete_traces", Json(static_cast<int64_t>(incomplete)));
  Json hops = Json::MakeObject();
  hops.Set("commit_to_publish", HistogramJson(hop_discover));
  hops.Set("zeus_commit", HistogramJson(hop_zeus));
  hops.Set("tree_push", HistogramJson(hop_tree));
  hops.Set("proxy_deliver", HistogramJson(hop_deliver));
  out.Set("hops", std::move(hops));
  out.Set("e2e_spans", HistogramJson(e2e_spans));
  out.Set("e2e_registry", HistogramJson(e2e_registry));
  std::ofstream file("BENCH_propagation_trace.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_propagation_trace.json\n");
  return 0;
}
