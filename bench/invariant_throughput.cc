// Cross-config invariant checker throughput: invariants/sec for
// InvariantChecker::Check over the shared synthetic 1k-file repository, plus
// the ddmin witness-shrink cost (p50 probes per violated budget invariant).
// Sandcastle proves the active invariant set on every landing, so this
// number bounds how large a fleet-wide invariant registry one analysis host
// can afford at the commit gate.
//
// The registry mixes the shapes real registries are made of: ordering
// proofs over compiled entry exports (each resolves through the abstract
// interpreter), membership and reference proofs over raw JSON configs, and
// deliberately-violated budget invariants whose witnesses must be shrunk to
// a minimal term subset.
//
// Emits BENCH_invariants.json next to the working directory for the bench
// trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/synthetic_repo.h"
#include "src/analysis/invariant.h"
#include "src/json/json.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

constexpr int kIterations = 3;
constexpr int kOrdering = 100;   // entry port <= fleet port ceiling.
constexpr int kMembership = 100; // entry name in its allowed set.
constexpr int kReference = 50;   // fallback pointers resolve.
constexpr int kSum = 50;         // weight budgets, every one violated.
constexpr int kSumTerms = 8;
constexpr int kWeights = 64;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string BuildSpec() {
  std::string spec = "{\"invariants\": [";
  bool first = true;
  auto add = [&](const std::string& entry) {
    if (!first) {
      spec += ", ";
    }
    first = false;
    spec += entry;
  };
  for (int i = 0; i < kOrdering; ++i) {
    int e = (i * 13) % SyntheticRepo::kEntries;
    add(StrFormat(
        "{\"name\": \"ord%03d\", \"kind\": \"ordering\", "
        "\"lhs\": {\"config\": \"svc/entry%03d.json\", \"field\": \"port\"}, "
        "\"relation\": \"<=\", "
        "\"rhs\": {\"config\": \"limits.json\", \"field\": \"max_port\"}}",
        i, e));
  }
  for (int i = 0; i < kMembership; ++i) {
    int e = (i * 7 + 1) % SyntheticRepo::kEntries;
    add(StrFormat(
        "{\"name\": \"mem%03d\", \"kind\": \"membership\", "
        "\"subject\": {\"config\": \"svc/entry%03d.json\", "
        "\"field\": \"name\"}, "
        "\"allowed\": [\"entry%03d\", \"retired%03d\"]}",
        i, e, e, e));
  }
  for (int i = 0; i < kReference; ++i) {
    add(StrFormat(
        "{\"name\": \"ref%03d\", \"kind\": \"reference\", "
        "\"subject\": {\"config\": \"refs/r%03d.json\", "
        "\"field\": \"fallback\"}}",
        i, i));
  }
  for (int i = 0; i < kSum; ++i) {
    // kSumTerms weights averaging ~25 against a budget of 100: every one
    // violated, and a small subset already exceeds the budget, so the
    // shrinker has real work.
    std::string terms;
    for (int t = 0; t < kSumTerms; ++t) {
      if (t > 0) {
        terms += ", ";
      }
      terms += StrFormat(
          "{\"config\": \"weights/w%03d.json\", \"field\": \"weight\"}",
          (i * kSumTerms + t) % kWeights);
    }
    add(StrFormat("{\"name\": \"sum%03d\", \"kind\": \"sum\", "
                  "\"relation\": \"<=\", \"budget\": 100, \"terms\": [%s]}",
                  i, terms.c_str()));
  }
  spec += "]}";
  return spec;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Invariant checker throughput — commit-gate proof rate",
      "invariants/sec for InvariantChecker over the synthetic 1k-file repo "
      "plus ddmin witness-shrink cost; bounds the registry size one "
      "Sandcastle host can prove per landing");

  SyntheticRepo repo = BuildSyntheticRepo();
  repo.sources.Put("limits.json", "{\"max_port\": 20000, \"min_port\": 1}");
  for (int i = 0; i < kWeights; ++i) {
    repo.sources.Put(StrFormat("weights/w%03d.json", i),
                     StrFormat("{\"weight\": %d}", 10 + (i * 11) % 30));
  }
  for (int i = 0; i < kReference; ++i) {
    repo.sources.Put(StrFormat("refs/r%03d.json", i),
                     StrFormat("{\"fallback\": \"weights/w%03d.json\"}",
                               i % kWeights));
  }

  InvariantRegistry registry;
  registry.AddSpecFile("invariants/bench.json", BuildSpec());
  if (!registry.diagnostics.empty()) {
    std::printf("spec error: %s\n",
                registry.diagnostics.front().Format().c_str());
    return 1;
  }
  const size_t total = registry.invariants.size();

  size_t proven = 0;
  size_t violated = 0;
  size_t cases_checked = 0;
  std::vector<int> shrink_probes;
  double check_s = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    // Fresh checker per iteration: the abstract-resolution cache is per
    // landing in production, so a warm cache would flatter the number.
    InvariantChecker checker(repo.sources.AsReader());
    auto start = std::chrono::steady_clock::now();
    InvariantReport report = checker.Check(registry);
    check_s += Seconds(start);

    proven += report.proven;
    violated += report.violated;
    for (const InvariantOutcome& outcome : report.outcomes) {
      cases_checked += outcome.cases_checked;
      if (outcome.status == InvariantStatus::kViolated &&
          outcome.witness.shrink_probes > 0) {
        shrink_probes.push_back(outcome.witness.shrink_probes);
      }
    }
  }

  const size_t checked = total * kIterations;
  double invariants_per_sec = static_cast<double>(checked) / check_s;
  std::sort(shrink_probes.begin(), shrink_probes.end());
  int shrink_p50 =
      shrink_probes.empty() ? 0 : shrink_probes[shrink_probes.size() / 2];

  TextTable table({"metric", "value"});
  table.AddRow({"repo files", std::to_string(repo.paths.size())});
  table.AddRow({"registry size", std::to_string(total)});
  table.AddRow({"invariants checked", std::to_string(checked)});
  table.AddRow({"check time (s)", StrFormat("%.3f", check_s)});
  table.AddRow({"invariants/sec", StrFormat("%.1f", invariants_per_sec)});
  table.AddRow({"proven", std::to_string(proven)});
  table.AddRow({"violated (seeded budgets)", std::to_string(violated)});
  table.AddRow({"abstract cases checked", std::to_string(cases_checked)});
  table.AddRow({"witness shrinks", std::to_string(shrink_probes.size())});
  table.AddRow({"shrink probes p50", std::to_string(shrink_p50)});
  table.Print();

  Json out = Json::MakeObject();
  out.Set("bench", Json("invariant_throughput"));
  out.Set("registry_size", Json(static_cast<int64_t>(total)));
  out.Set("invariants_checked", Json(static_cast<int64_t>(checked)));
  out.Set("check_seconds", Json(check_s));
  out.Set("invariants_per_sec", Json(invariants_per_sec));
  out.Set("proven", Json(static_cast<int64_t>(proven)));
  out.Set("violated", Json(static_cast<int64_t>(violated)));
  out.Set("abstract_cases_checked", Json(static_cast<int64_t>(cases_checked)));
  out.Set("witness_shrinks", Json(static_cast<int64_t>(shrink_probes.size())));
  out.Set("shrink_probes_p50", Json(static_cast<int64_t>(shrink_p50)));
  std::ofstream file("BENCH_invariants.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_invariants.json\n");
  return 0;
}
