// Shared synthetic repository for static-analysis benchmarks: a 1k-file
// tree shaped like production config repos — 20 thrift schemas, 180 .cinc
// module libraries (every tenth chained onto the previous one), and 800
// .cconf entries importing two modules each (one star, one specific).
// lint_throughput measures files/sec over it; semdiff_throughput replays
// scripted commits against it and measures commits/sec.

#ifndef BENCH_SYNTHETIC_REPO_H_
#define BENCH_SYNTHETIC_REPO_H_

#include <string>
#include <vector>

#include "src/lang/compiler.h"
#include "src/util/strings.h"

namespace configerator {

struct SyntheticRepo {
  static constexpr int kSchemas = 20;
  static constexpr int kModules = 180;
  static constexpr int kEntries = 800;

  InMemorySources sources;
  std::vector<std::string> paths;  // Analyzable CSL files, in layout order.

  static std::string ModulePath(int m) {
    return StrFormat("lib/mod%03d.cinc", m);
  }
  static std::string EntryPath(int e) {
    return StrFormat("svc/entry%03d.cconf", e);
  }

  // Entry e star-imports module e % kModules and specifically imports
  // BASE_PORT from module (e*7 + 3) % kModules.
  static std::vector<std::string> EntriesImporting(int m) {
    std::vector<std::string> out;
    for (int e = 0; e < kEntries; ++e) {
      if (e % kModules == m || (e * 7 + 3) % kModules == m) {
        out.push_back(EntryPath(e));
      }
    }
    return out;
  }

  // The module source, parameterized so commits can rewrite one module.
  // `rev` bumps a comment line (a semantic no-op); `port_bump` shifts the
  // module's base port (a value change that reaches every importer).
  static std::string ModuleSource(int m, int rev = 0, int port_bump = 0) {
    int schema = m % kSchemas;
    bool chained = m > 0 && m % 10 == 0;
    // Chained modules derive their port from the previous module's, so the
    // import is used and the repo stays lint-clean.
    std::string port_expr =
        chained ? StrFormat("BASE_PORT_%d + 1", m - 1)
                : StrFormat("%d", 9000 + m + port_bump);
    std::string source = StrFormat(
        "import_thrift(\"schemas/svc%02d.thrift\")\n"
        "BASE_PORT_%d = %s\n"
        "REGIONS_%d = [\"east\", \"west\", \"central\"]\n"
        "def make_svc_%d(name, port=BASE_PORT_%d):\n"
        "    svc = Svc%02d(name=name, port=port)\n"
        "    svc.tags = [\"module:%d\"]\n"
        "    for region in REGIONS_%d:\n"
        "        append(svc.tags, \"region:\" + region)\n"
        "    return svc\n",
        schema, m, port_expr.c_str(), m, m, m, schema, m, m);
    if (chained) {
      source = StrFormat("import_python(\"lib/mod%03d.cinc\", \"BASE_PORT_%d\")\n",
                         m - 1, m - 1) +
               source;
    }
    if (rev > 0) {
      source = StrFormat("# rev %d\n", rev) + source;
    }
    return source;
  }

  static std::string EntrySource(int e) {
    int m1 = e % kModules;
    int m2 = (e * 7 + 3) % kModules;
    return StrFormat("import_python(\"lib/mod%03d.cinc\", \"*\")\n"
                     "import_python(\"lib/mod%03d.cinc\", \"BASE_PORT_%d\")\n"
                     "svc = make_svc_%d(name=\"entry%03d\")\n"
                     "if BASE_PORT_%d > 9000:\n"
                     "    svc.port = BASE_PORT_%d\n"
                     "export_if_last(svc)\n",
                     m1, m2, m2, m1, e, m2, m2);
  }
};

// 1k files: 20 schemas, 180 shared modules (each importing a schema; every
// tenth also importing the previous module, for some two-hop chains without
// making every entry transitively pull in the whole library), 800 entries
// importing two modules each.
inline SyntheticRepo BuildSyntheticRepo() {
  SyntheticRepo repo;

  for (int s = 0; s < SyntheticRepo::kSchemas; ++s) {
    repo.sources.Put(
        StrFormat("schemas/svc%02d.thrift", s),
        StrFormat("struct Svc%02d {\n"
                  "  1: required string name;\n"
                  "  2: optional i32 port = %d;\n"
                  "  3: optional list<string> tags;\n"
                  "}\n",
                  s, 8000 + s));
  }
  for (int m = 0; m < SyntheticRepo::kModules; ++m) {
    std::string path = SyntheticRepo::ModulePath(m);
    repo.sources.Put(path, SyntheticRepo::ModuleSource(m));
    repo.paths.push_back(path);
  }
  for (int e = 0; e < SyntheticRepo::kEntries; ++e) {
    std::string path = SyntheticRepo::EntryPath(e);
    repo.sources.Put(path, SyntheticRepo::EntrySource(e));
    repo.paths.push_back(path);
  }
  return repo;
}

}  // namespace configerator

#endif  // BENCH_SYNTHETIC_REPO_H_
