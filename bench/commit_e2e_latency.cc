// §6.3 end-to-end timeline: "When an engineer saves a config change, it
// takes about ten minutes to go through automated canary tests... After
// canary tests [it takes] about 5 seconds to commit, about 5 seconds for the
// tailer to fetch, and about 4.5 seconds for Zeus to propagate" — baseline
// ~14.5 s of post-canary latency. This bench drives one change through the
// full stack and prints the measured timeline stage by stage.

#include <cstdio>

#include "src/core/stack.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

int main() {
  PrintBenchHeader("§6.3 — end-to-end latency of one config change",
                   "Propose -> review -> canary -> land -> tail -> Zeus -> "
                   "proxies, on the simulated clock");

  ConfigManagementStack::Options options;
  options.tailer.poll_interval = 5 * kSimSecond;
  options.tailer.fetch_delay = 5 * kSimSecond;
  ConfigManagementStack stack(options);

  // Subscribe applications on servers in every cluster.
  std::vector<ServerId> app_servers = {ServerId{0, 0, 7}, ServerId{0, 1, 7},
                                       ServerId{1, 0, 7}, ServerId{1, 1, 7}};
  size_t received = 0;
  SimTime last_arrival = 0;
  for (const ServerId& server : app_servers) {
    stack.SubscribeServer(server, "feed/ranker.json",
                          [&](const std::string&, const std::string&, int64_t) {
                            ++received;
                            last_arrival = stack.sim().now();
                          });
  }
  stack.RunFor(2 * kSimSecond);

  SimTime t0 = stack.sim().now();
  auto change = stack.ProposeChange(
      "alice", "tune ranker",
      {{"feed/ranker.cconf",
        "export_if_last({\"weight_likes\": 0.7, \"weight_recency\": 0.3})\n"}});
  if (!change.ok()) {
    std::printf("propose failed: %s\n", change.status().ToString().c_str());
    return 1;
  }
  SimTime t_proposed = stack.sim().now();
  if (!stack.Approve(&*change, "bob").ok()) {
    return 1;
  }

  DefectServiceModel healthy(ConfigDefect::kNone, DefectServiceModel::Params{},
                             3);
  SimTime t_landed = 0;
  bool landed = false;
  stack.TestAndLand(*change, CanarySpec::Default(), &healthy,
                    [&](Result<ObjectId> result) {
                      landed = result.ok();
                      t_landed = stack.sim().now();
                    });
  stack.RunFor(30 * kSimMinute);
  if (!landed || received < app_servers.size()) {
    std::printf("pipeline did not complete (landed=%d, received=%zu)\n",
                landed, received);
    return 1;
  }

  double canary_minutes = SimToSeconds(t_landed - t_proposed) / 60.0;
  double post_land_seconds = SimToSeconds(last_arrival - t_landed);
  double total_minutes = SimToSeconds(last_arrival - t0) / 60.0;

  TextTable timeline({"stage", "paper", "measured"});
  timeline.AddRow({"compile + CI + open review", "(interactive)",
                   StrFormat("%.1f s", SimToSeconds(t_proposed - t0))});
  timeline.AddRow({"automated canary (2 phases)", "~10 min",
                   StrFormat("%.1f min", canary_minutes)});
  timeline.AddRow({"land -> all subscribed servers",
                   "~14.5 s (5 commit + 5 tailer + 4.5 tree)",
                   StrFormat("%.1f s", post_land_seconds)});
  timeline.AddRow({"total save-to-fleet", "~10-11 min",
                   StrFormat("%.1f min", total_minutes)});
  timeline.Print();

  std::printf("\nNote: our landing strip commits in-memory (microseconds), so "
              "the measured post-land latency\nis tailer poll (<=5s) + fetch "
              "(5s) + tree; the paper's extra ~5s is git commit time, \n"
              "reproduced separately in fig13/fig14.\n");
  return 0;
}
