// Figure 14 at fleet scale: commit-to-fleet propagation latency with 1k, 10k,
// and 100k subscribed servers, the push-vs-pull ablation re-run at each size,
// and the million-device MobileConfig fleet modeled as cohorts. This is the
// scaling companion to fig14_propagation_latency (which runs the full
// landing-strip pipeline at small scale over a simulated week): here the
// commit source writes directly to Zeus and the fleet is a ProxyFleet — two
// dense arrays per key instead of a ConfigProxy object per server — so the
// bench measures the distribution tree itself at the paper's sizes.
//
// Emits BENCH_fig14_scale.json:
//   * per-scale propagation percentiles (p50/p90/p99/p999) over every
//     (commit, server) delivery,
//   * scheduler throughput (events/sec) at each size — the calendar queue's
//     near-linearity claim is the 100k:10k ratio,
//   * push-vs-pull message/byte totals and staleness at each size,
//   * the 1M-device cohort model: polls/sec, update-delay quantiles, push
//     vs pull freshness, and bandwidth estimated from a sampled fleet
//     running the real sync protocol.
//
// --smoke runs only the 10k push leg and writes nothing (scripts/check.sh
// --scale uses it as a fast end-to-end probe).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/distribution/fleet.h"
#include "src/distribution/pull.h"
#include "src/gatekeeper/runtime.h"
#include "src/json/json.h"
#include "src/mobile/cohort.h"
#include "src/mobile/mobileconfig.h"
#include "src/obs/observability.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/zeus/zeus.h"

using namespace configerator;

namespace {

constexpr int kKeys = 4;
constexpr int kCommits = 20;
constexpr SimTime kCommitSpacing = 10 * kSimSecond;
constexpr SimTime kFirstCommit = 20 * kSimSecond;
constexpr SimTime kPullInterval = 60 * kSimSecond;

struct ScaleShape {
  const char* label;
  int regions;
  int clusters_per_region;
  int servers_per_cluster;
};

// Fleet servers are every host in layers [2, spc-1): layer 0 holds ensemble
// members, layer 1 the writer and the pull service, the top layer one
// observer per cluster.
constexpr ScaleShape kScales[] = {
    {"1k", 2, 4, 125},     // 8 clusters x 122 = 976 fleet servers.
    {"10k", 2, 8, 625},    // 16 clusters x 622 = 9952.
    {"100k", 2, 16, 3125}, // 32 clusters x 3122 = 99904.
};

struct PushResult {
  size_t servers = 0;
  size_t observers = 0;
  SampleSet latency;  // Seconds, one sample per (commit, server) delivery.
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t sim_events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  size_t traces_recorded = 0;
  uint64_t traces_sampled_out = 0;
  size_t materialized_links = 0;
};

struct PullResult {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t polls = 0;
  uint64_t empty_polls = 0;
  SampleSet staleness;  // Seconds, publish -> client sees it.
};

std::vector<ServerId> FleetHosts(const ScaleShape& shape) {
  std::vector<ServerId> hosts;
  for (int r = 0; r < shape.regions; ++r) {
    for (int c = 0; c < shape.clusters_per_region; ++c) {
      for (int s = 2; s + 1 < shape.servers_per_cluster; ++s) {
        hosts.push_back(ServerId{r, c, s});
      }
    }
  }
  return hosts;
}

std::string KeyName(int k) { return StrFormat("conf/scale%02d.json", k); }

PushResult RunPush(const ScaleShape& shape) {
  Simulator sim;
  Network net(&sim, Topology(shape.regions, shape.clusters_per_region,
                             shape.servers_per_cluster),
              /*seed=*/14);
  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{1, 0, 0},
                                   ServerId{0, 1, 0}, ServerId{1, 1, 0},
                                   ServerId{0, 2, 0}};
  std::vector<ServerId> observers;
  for (int r = 0; r < shape.regions; ++r) {
    for (int c = 0; c < shape.clusters_per_region; ++c) {
      observers.push_back(ServerId{r, c, shape.servers_per_cluster - 1});
    }
  }
  ZeusEnsemble::Options zeus_options;
  zeus_options.processing_delay = 100 * kSimMillisecond;
  ZeusEnsemble zeus(&net, members, observers, zeus_options);

  // At fleet scale the tracer samples: 1 of every 8 commits records its span
  // tree; the rest no-op end to end. Memory stays bounded by the sample
  // rate, not the fan-out.
  Observability obs;
  obs.tracer.SetSampleEvery(8);
  zeus.AttachObservability(&obs);

  PushResult result;
  ProxyFleet fleet(&net, &zeus, FleetHosts(shape), /*seed=*/7);
  result.servers = fleet.size();
  result.observers = observers.size();

  std::map<std::string, SimTime> published_at;
  fleet.set_update_hook(
      [&](size_t, size_t, const ZeusTxn& txn) {
        auto it = published_at.find(txn.value);
        if (it != published_at.end()) {
          result.latency.Add(SimToSeconds(sim.now() - it->second));
        }
      });
  for (int k = 0; k < kKeys; ++k) {
    fleet.SubscribeAll(KeyName(k), /*spread=*/10 * kSimSecond);
  }

  ServerId writer{0, 0, 1};
  for (int i = 0; i < kCommits; ++i) {
    SimTime when = kFirstCommit + i * kCommitSpacing;
    sim.ScheduleAt(when, [&, i, when] {
      std::string payload = StrFormat("scale-payload-%03d", i);
      published_at[payload] = when;
      TraceContext root = obs.tracer.StartTrace(
          StrFormat("scale-commit %d", i), "0.0.1", when);
      zeus.Write(writer, KeyName(i % kKeys), payload,
                 [&, root](Result<int64_t> zxid) {
                   if (zxid.ok() && root.valid()) {
                     obs.tracer.BindZxid(*zxid, root);
                     obs.tracer.EndSpan(root, sim.now());
                   }
                 });
    });
  }

  SimTime horizon = kFirstCommit + kCommits * kCommitSpacing + kSimMinute;
  auto wall_start = std::chrono::steady_clock::now();
  sim.RunUntil(horizon);
  auto wall_end = std::chrono::steady_clock::now();

  result.messages = net.messages_sent();
  result.bytes = net.bytes_sent();
  result.sim_events = sim.processed_events();
  result.wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.events_per_sec =
      result.wall_s > 0 ? static_cast<double>(result.sim_events) / result.wall_s
                        : 0;
  result.traces_recorded = obs.tracer.trace_count();
  result.traces_sampled_out = obs.tracer.sampled_out();
  result.materialized_links = net.materialized_links();
  return result;
}

PullResult RunPull(const ScaleShape& shape) {
  Simulator sim;
  Network net(&sim, Topology(shape.regions, shape.clusters_per_region,
                             shape.servers_per_cluster),
              /*seed=*/15);
  PullService service(&net, ServerId{1, 0, 1});
  for (int k = 0; k < kKeys; ++k) {
    service.Publish(KeyName(k), "initial");
  }

  PullResult result;
  std::map<std::string, SimTime> published_at;
  std::vector<ServerId> hosts = FleetHosts(shape);
  std::vector<std::unique_ptr<PullClient>> clients;
  clients.reserve(hosts.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    clients.push_back(std::make_unique<PullClient>(&net, &service, hosts[i],
                                                   kPullInterval));
    for (int k = 0; k < kKeys; ++k) {
      clients.back()->Track(
          KeyName(k),
          [&](const std::string&, const std::string& value, int64_t) {
            auto it = published_at.find(value);
            if (it != published_at.end()) {
              result.staleness.Add(SimToSeconds(sim.now() - it->second));
            }
          });
    }
    clients.back()->Start(/*initial_stagger=*/static_cast<SimTime>(
        (i * static_cast<size_t>(kPullInterval)) / hosts.size()));
  }

  for (int k = 0; k < kKeys; ++k) {
    SimTime when = (k + 1) * kSimMinute;
    sim.ScheduleAt(when, [&, k, when] {
      std::string payload = StrFormat("pull-payload-%02d", k);
      published_at[payload] = when;
      service.Publish(KeyName(k), payload);
    });
  }
  sim.RunUntil((kKeys + 2) * kSimMinute + 30 * kSimSecond);

  result.messages = net.messages_sent();
  result.bytes = net.bytes_sent();
  for (const auto& client : clients) {
    result.polls += client->polls_sent();
    result.empty_polls += client->empty_polls();
  }
  return result;
}

Json HistJson(const SampleSet& samples) {
  Json json = Json::MakeObject();
  json.Set("count", Json(static_cast<int64_t>(samples.size())));
  if (!samples.empty()) {
    json.Set("mean", Json(samples.Mean()));
    json.Set("p50", Json(samples.Percentile(50)));
    json.Set("p90", Json(samples.Percentile(90)));
    json.Set("p99", Json(samples.Percentile(99)));
    json.Set("p999", Json(samples.Percentile(99.9)));
    json.Set("max", Json(samples.Percentile(100)));
  }
  return json;
}

std::vector<CohortSpec> MillionDeviceFleet() {
  return {
      {"wifi-15m", 250'000, 15 * kSimMinute, 0.95, 0.9},
      {"hourly", 600'000, kSimHour, 0.8, 0.6},
      {"long-tail", 150'000, 4 * kSimHour, 0.5, 0.2},
  };
}

// Bandwidth ground truth for the cohort row: a sampled fleet running the real
// MobileConfig sync protocol yields bytes per poll; the closed-form poll rate
// scales it to the full million devices.
double MeasureBytesPerSync(const CohortModel& model) {
  TranslationLayer translation;
  translation.Bind("FLEET_CONFIG", "FEATURE_X",
                   FieldBinding::Constant(Json(true)));
  translation.Bind("FLEET_CONFIG", "POLL_BUDGET",
                   FieldBinding::Constant(Json(int64_t{7})));
  GatekeeperRuntime gatekeeper;
  MobileConfigServer server(&translation, &gatekeeper, nullptr);
  MobileSchema schema;
  schema.config_name = "FLEET_CONFIG";
  schema.fields = {{"FEATURE_X", MobileFieldType::kBool},
                   {"POLL_BUDGET", MobileFieldType::kInt}};
  server.RegisterSchema(schema);

  Simulator sim;
  SampledMobileFleet fleet(&sim, &server, schema, model, /*sample_size=*/2000,
                           /*seed=*/21);
  fleet.Start();
  sim.RunUntil(8 * kSimHour);
  return fleet.sync_count() == 0
             ? 0
             : static_cast<double>(fleet.total_sync_bytes()) /
                   static_cast<double>(fleet.sync_count());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  if (smoke) {
    PrintBenchHeader("Figure 14 scaling smoke (10k servers)",
                     "Push leg only; no JSON output");
    PushResult push = RunPush(kScales[1]);
    std::printf("servers=%zu deliveries=%zu p50=%.2fs p999=%.2fs "
                "events=%llu (%.0f events/s)\n",
                push.servers, push.latency.size(), push.latency.Percentile(50),
                push.latency.Percentile(99.9),
                static_cast<unsigned long long>(push.sim_events),
                push.events_per_sec);
    size_t expected = push.servers * static_cast<size_t>(kCommits);
    if (push.latency.size() != expected) {
      std::printf("FAIL: expected %zu deliveries\n", expected);
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }

  PrintBenchHeader("Figure 14 at scale — 1k/10k/100k-server propagation",
                   "Calendar-queue scheduler + SoA fleet; push vs pull at "
                   "each size; 1M-device cohort model");

  Json scales_json = Json::MakeArray();
  TextTable table({"scale", "servers", "p50 (s)", "p90 (s)", "p99 (s)",
                   "p999 (s)", "events/s", "push msgs", "pull msgs"});
  double events_per_sec_10k = 0;
  double events_per_sec_100k = 0;

  for (const ScaleShape& shape : kScales) {
    PushResult push = RunPush(shape);
    PullResult pull = RunPull(shape);
    if (std::strcmp(shape.label, "10k") == 0) {
      events_per_sec_10k = push.events_per_sec;
    } else if (std::strcmp(shape.label, "100k") == 0) {
      events_per_sec_100k = push.events_per_sec;
    }

    table.AddRow({shape.label, StrFormat("%zu", push.servers),
                  StrFormat("%.2f", push.latency.Percentile(50)),
                  StrFormat("%.2f", push.latency.Percentile(90)),
                  StrFormat("%.2f", push.latency.Percentile(99)),
                  StrFormat("%.2f", push.latency.Percentile(99.9)),
                  StrFormat("%.2e", push.events_per_sec),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(push.messages)),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(pull.messages))});

    Json entry = Json::MakeObject();
    entry.Set("scale", Json(std::string(shape.label)));
    entry.Set("servers", Json(static_cast<int64_t>(push.servers)));
    entry.Set("observers", Json(static_cast<int64_t>(push.observers)));
    entry.Set("keys", Json(static_cast<int64_t>(kKeys)));
    entry.Set("commits", Json(static_cast<int64_t>(kCommits)));
    Json push_json = Json::MakeObject();
    push_json.Set("propagation_s", HistJson(push.latency));
    push_json.Set("messages", Json(static_cast<int64_t>(push.messages)));
    push_json.Set("bytes", Json(static_cast<int64_t>(push.bytes)));
    push_json.Set("sim_events", Json(static_cast<int64_t>(push.sim_events)));
    push_json.Set("wall_s", Json(push.wall_s));
    push_json.Set("events_per_sec", Json(push.events_per_sec));
    push_json.Set("traces_recorded",
                  Json(static_cast<int64_t>(push.traces_recorded)));
    push_json.Set("traces_sampled_out",
                  Json(static_cast<int64_t>(push.traces_sampled_out)));
    push_json.Set("materialized_links",
                  Json(static_cast<int64_t>(push.materialized_links)));
    entry.Set("push", std::move(push_json));
    Json pull_json = Json::MakeObject();
    pull_json.Set("messages", Json(static_cast<int64_t>(pull.messages)));
    pull_json.Set("bytes", Json(static_cast<int64_t>(pull.bytes)));
    pull_json.Set("polls", Json(static_cast<int64_t>(pull.polls)));
    pull_json.Set("empty_polls",
                  Json(static_cast<int64_t>(pull.empty_polls)));
    pull_json.Set("staleness_s", HistJson(pull.staleness));
    entry.Set("pull", std::move(pull_json));
    scales_json.Append(std::move(entry));
  }
  table.Print();

  std::printf("\nthroughput linearity: 10k %.2e events/s, 100k %.2e events/s "
              "(%.2fx per-event cost at 10x the fleet)\n",
              events_per_sec_10k, events_per_sec_100k,
              events_per_sec_10k > 0 ? events_per_sec_10k / events_per_sec_100k
                                     : 0);

  // --- Mobile fleet: 1M devices as cohorts ---------------------------------
  CohortModel model(MillionDeviceFleet());
  double bytes_per_sync = MeasureBytesPerSync(model);
  double polls_per_sec = model.PollsPerSecond();
  std::printf("\nmobile fleet (%llu devices in %zu cohorts): %.0f polls/s, "
              "%.0f B/sync (~%.1f KB/s fleet-wide), mean update delay %.0fs, "
              "1h freshness %.3f pull / %.3f with push\n",
              static_cast<unsigned long long>(model.total_devices()),
              model.cohorts().size(), polls_per_sec, bytes_per_sync,
              polls_per_sec * bytes_per_sync / 1024.0,
              SimToSeconds(model.MeanUpdateDelay()),
              model.UpdatedFraction(kSimHour),
              model.UpdatedFractionWithPush(kSimHour));

  Json out = Json::MakeObject();
  out.Set("bench", Json(std::string("fig14_scale")));
  out.Set("scales", std::move(scales_json));
  Json linearity = Json::MakeObject();
  linearity.Set("events_per_sec_10k", Json(events_per_sec_10k));
  linearity.Set("events_per_sec_100k", Json(events_per_sec_100k));
  linearity.Set("slowdown_at_10x_fleet",
                Json(events_per_sec_100k > 0
                         ? events_per_sec_10k / events_per_sec_100k
                         : 0));
  out.Set("throughput_linearity", std::move(linearity));
  Json mobile = Json::MakeObject();
  mobile.Set("devices", Json(static_cast<int64_t>(model.total_devices())));
  Json cohorts = Json::MakeArray();
  for (const CohortSpec& spec : model.cohorts()) {
    Json c = Json::MakeObject();
    c.Set("name", Json(spec.name));
    c.Set("devices", Json(static_cast<int64_t>(spec.devices)));
    c.Set("poll_interval_s", Json(SimToSeconds(spec.poll_interval)));
    c.Set("online_prob", Json(spec.online_prob));
    c.Set("push_reach", Json(spec.push_reach));
    cohorts.Append(std::move(c));
  }
  mobile.Set("cohorts", std::move(cohorts));
  mobile.Set("polls_per_sec", Json(polls_per_sec));
  mobile.Set("bytes_per_sync", Json(bytes_per_sync));
  mobile.Set("fleet_bandwidth_bytes_per_sec",
             Json(polls_per_sec * bytes_per_sync));
  mobile.Set("mean_update_delay_s", Json(SimToSeconds(model.MeanUpdateDelay())));
  mobile.Set("update_delay_p50_s", Json(SimToSeconds(model.Quantile(0.5))));
  mobile.Set("update_delay_p99_s", Json(SimToSeconds(model.Quantile(0.99))));
  mobile.Set("updated_frac_1h_pull", Json(model.UpdatedFraction(kSimHour)));
  mobile.Set("updated_frac_1h_push",
             Json(model.UpdatedFractionWithPush(kSimHour)));
  out.Set("mobile_cohorts", std::move(mobile));

  std::ofstream file("BENCH_fig14_scale.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_fig14_scale.json\n");
  return 0;
}
