// Table 3: number of distinct co-authors per config over its lifetime.
// Paper: 49.5% of compiled configs have a single author, raw configs are
// even more single-authored (70.0%) because automation counts as one
// author; the tail is long (one sitevar had 727 authors); and the shape
// resembles regular code (fbcode) because of the DevOps model.

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/population.h"

using namespace configerator;

namespace {

struct Bucket {
  const char* label;
  double lo;
  double hi;
  double paper_compiled;
  double paper_raw;
  double paper_fbcode;
};

}  // namespace

int main() {
  PrintBenchHeader("Table 3 — co-authors per config",
                   "Distinct authors over each config's lifetime (automation "
                   "counts as a single author)");

  PopulationModel::Params params;
  params.final_configs = 60'000;
  PopulationModel model(params);
  model.Run();
  SampleSet compiled = model.CoauthorCounts(ConfigKind::kCompiled);
  SampleSet raw = model.CoauthorCounts(ConfigKind::kRaw);

  const Bucket kBuckets[] = {
      {"1", 1, 1, 49.5, 70.0, 44.0},
      {"2", 2, 2, 30.1, 21.5, 37.7},
      {"3", 3, 3, 9.2, 5.1, 7.6},
      {"4", 4, 4, 3.9, 1.4, 3.6},
      {"[5, 10]", 5, 10, 5.7, 1.2, 5.6},
      {"[11, 50]", 11, 50, 1.3, 0.6, 1.4},
      {"[51, 100]", 51, 100, 0.2, 0.1, 0.02},
      {"[101, inf)", 101, 1e18, 0.04, 0.002, 0.007},
  };

  TextTable table({"co-authors", "compiled paper", "compiled measured",
                   "raw paper", "raw measured", "fbcode paper"});
  for (const Bucket& bucket : kBuckets) {
    table.AddRow(
        {bucket.label, StrFormat("%6.2f%%", bucket.paper_compiled),
         StrFormat("%6.2f%%", 100 * FractionInRange(compiled, bucket.lo, bucket.hi)),
         StrFormat("%6.2f%%", bucket.paper_raw),
         StrFormat("%6.2f%%", 100 * FractionInRange(raw, bucket.lo, bucket.hi)),
         StrFormat("%6.3f%%", bucket.paper_fbcode)});
  }
  table.Print();

  std::printf("\nheadline claims:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"compiled configs with 1-2 authors", "79.6%",
                  StrFormat("%.1f%%", 100 * FractionInRange(compiled, 1, 2))});
  summary.AddRow({"raw configs with 1-2 authors", "91.5%",
                  StrFormat("%.1f%%", 100 * FractionInRange(raw, 1, 2))});
  summary.AddRow({"raw more single-authored than compiled", "yes",
                  FractionInRange(raw, 1, 1) > FractionInRange(compiled, 1, 1)
                      ? "yes"
                      : "NO"});
  summary.AddRow({"heavy tail exists (some configs >100 authors)", "yes",
                  compiled.Max() > 100 ? StrFormat("max %.0f", compiled.Max())
                                       : "NO"});
  summary.Print();
  return 0;
}
