// Figure 13: maximum commit throughput as a function of repository size —
// the paper's sandbox stress test. This is a *real* measurement against our
// VCS substrate: commit cost includes the git-style index scan (every
// tracked file is touched to answer "is the clone up to date?") plus tree
// re-hashing along changed paths, so throughput degrades as the file count
// grows — the phenomenon that drove the paper's multi-repository redesign
// (§3.6), which is measured here as the remedy.
//
// Absolute numbers differ from the paper's git-on-spinning-metal setup; the
// reproduced result is the shape: throughput monotonically decreasing in
// repository size, and partitioning restoring it.

#include <chrono>
#include <cstdio>
#include <thread>

#include "src/pipeline/landing_strip.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/vcs/multirepo.h"
#include "src/vcs/repository.h"

using namespace configerator;

namespace {

std::string PathFor(size_t index) {
  return StrFormat("cfg/dir%04zu/file%06zu.json", index / 1000, index);
}

std::string ContentFor(size_t index, int version) {
  return StrFormat("{\n  \"id\": %zu,\n  \"version\": %d\n}\n", index, version);
}

// Grows the repo to `target` files (batch commits), returns nothing.
void GrowTo(Repository& repo, size_t target) {
  constexpr size_t kBatch = 5000;
  while (repo.file_count() < target) {
    size_t start = repo.file_count();
    size_t end = std::min(target, start + kBatch);
    std::vector<FileWrite> writes;
    writes.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      writes.push_back({PathFor(i), ContentFor(i, 0)});
    }
    auto commit = repo.Commit("loader", "bulk load", writes);
    if (!commit.ok()) {
      std::fprintf(stderr, "bulk load failed: %s\n",
                   commit.status().ToString().c_str());
      std::abort();
    }
  }
}

// Measures `n` single-file commits through the landing strip; returns
// commits per minute.
double MeasureThroughput(Repository& repo, int n, Rng& rng) {
  LandingStrip strip(&repo);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    size_t index = rng.NextBounded(repo.file_count());
    ProposedDiff diff = MakeProposedDiff(
        repo, "engineer", "tweak",
        {{PathFor(index), ContentFor(index, i + 1)}});
    auto commit = strip.Land(diff);
    if (!commit.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   commit.status().ToString().c_str());
      std::abort();
    }
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return 60.0 * n / elapsed;
}

}  // namespace

int main() {
  PrintBenchHeader("Figure 13 — max commit throughput vs repository size",
                   "Real measurement: single-file commits through the landing "
                   "strip at growing repo sizes");

  Rng rng(13);
  Repository repo;
  const size_t kSizes[] = {10'000, 50'000, 100'000, 250'000, 500'000};
  constexpr int kCommits = 100;

  TextTable table({"files in repo", "commits/min", "latency (ms/commit)"});
  double first_throughput = 0;
  double last_throughput = 0;
  for (size_t size : kSizes) {
    GrowTo(repo, size);
    double throughput = MeasureThroughput(repo, kCommits, rng);
    if (first_throughput == 0) {
      first_throughput = throughput;
    }
    last_throughput = throughput;
    table.AddRow({std::to_string(size), StrFormat("%.0f", throughput),
                  StrFormat("%.2f", 60'000.0 / throughput)});
  }
  table.Print();

  // Ablation 1: index scan off — isolates the git-status cost component.
  repo.set_index_scan_enabled(false);
  double no_scan = MeasureThroughput(repo, kCommits, rng);
  repo.set_index_scan_enabled(true);

  // Ablation 2 (the §3.6 remedy): four partitions serving the same 500k
  // files — each commit only pays its partition's cost.
  MultiRepo multi;
  for (int p = 0; p < 4; ++p) {
    (void)multi.AddPartition(StrFormat("p%d/", p));
  }
  {
    constexpr size_t kPerPartition = 125'000;
    for (int p = 0; p < 4; ++p) {
      constexpr size_t kBatch = 5000;
      for (size_t start = 0; start < kPerPartition; start += kBatch) {
        std::vector<FileWrite> writes;
        for (size_t i = start; i < start + kBatch; ++i) {
          writes.push_back({StrFormat("p%d/", p) + PathFor(i), ContentFor(i, 0)});
        }
        auto commit = multi.Commit("loader", "bulk", writes);
        if (!commit.ok()) {
          std::abort();
        }
      }
    }
  }
  double multi_throughput;
  {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kCommits; ++i) {
      int p = i % 4;
      size_t index = rng.NextBounded(125'000);
      std::string path = StrFormat("p%d/", p) + PathFor(index);
      auto commit =
          multi.Commit("engineer", "tweak", {{path, ContentFor(index, i + 1)}});
      if (!commit.ok()) {
        std::abort();
      }
    }
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    multi_throughput = 60.0 * kCommits / elapsed;
  }

  // Ablation 3: partitions also accept commits *concurrently* — one landing
  // thread per partition, which is the actual §3.6 deployment shape.
  double concurrent_throughput;
  {
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> landers;
    landers.reserve(4);
    for (int p = 0; p < 4; ++p) {
      landers.emplace_back([&multi, p] {
        Rng thread_rng(static_cast<uint64_t>(1000 + p));
        for (int i = 0; i < kCommits / 4; ++i) {
          size_t index = thread_rng.NextBounded(125'000);
          std::string path = StrFormat("p%d/", p) + PathFor(index);
          auto commit = multi.Commit("lander", "tweak",
                                     {{path, ContentFor(index, -i - 1)}});
          if (!commit.ok()) {
            std::abort();
          }
        }
      });
    }
    for (std::thread& t : landers) {
      t.join();
    }
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    concurrent_throughput = 60.0 * (kCommits / 4 * 4) / elapsed;
  }

  std::printf("\npaper vs measured:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"throughput declines with repo size", "~250 -> ~50 /min",
                  StrFormat("%.0f -> %.0f /min (%.1fx drop)", first_throughput,
                            last_throughput, first_throughput / last_throughput)});
  summary.AddRow({"dominant cost is repo-size-proportional work",
                  "git ops slow on large repos",
                  StrFormat("index-scan off: %.0f /min (%.1fx faster)", no_scan,
                            no_scan / last_throughput)});
  summary.AddRow({"multi-repo partitioning restores throughput",
                  "migration to partitioned repos",
                  StrFormat("4 partitions: %.0f /min (%.1fx faster)",
                            multi_throughput, multi_throughput / last_throughput)});
  summary.AddRow(
      {"partitions accept commits concurrently",
       "\"can accept commits concurrently\" (§3.6)",
       StrFormat("4 landing threads on %u core(s): %.0f /min (%.1fx vs serial)",
                 std::thread::hardware_concurrency(), concurrent_throughput,
                 concurrent_throughput / multi_throughput)});
  summary.Print();
  return 0;
}
