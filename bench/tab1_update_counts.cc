// Table 1: number of times a config gets updated in its lifetime. Paper:
// 25.0% of compiled configs are written once (created, never updated) vs
// 56.9% of raw configs; the top 1% of raw configs account for 92.8% of raw
// updates (64.5% for compiled) — automation concentrates churn.

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/population.h"

using namespace configerator;

namespace {

struct Bucket {
  const char* label;
  double lo;
  double hi;
  double paper_compiled;
  double paper_raw;
};

}  // namespace

int main() {
  PrintBenchHeader("Table 1 — lifetime update counts",
                   "Distribution of writes per config (1 = created, never "
                   "updated)");

  PopulationModel::Params params;
  params.final_configs = 60'000;
  PopulationModel model(params);
  model.Run();
  SampleSet compiled = model.UpdateCounts(ConfigKind::kCompiled);
  SampleSet raw = model.UpdateCounts(ConfigKind::kRaw);

  const Bucket kBuckets[] = {
      {"1", 1, 1, 25.0, 56.9},
      {"2", 2, 2, 24.9, 23.7},
      {"3", 3, 3, 14.1, 5.2},
      {"4", 4, 4, 7.5, 3.2},
      {"[5, 10]", 5, 10, 15.9, 6.6},
      {"[11, 100]", 11, 100, 11.6, 3.0},
      {"[101, 1000]", 101, 1000, 0.8, 0.7},
      {"[1001, inf)", 1001, 1e18, 0.2, 0.7},
  };

  TextTable table({"writes in lifetime", "compiled paper", "compiled measured",
                   "raw paper", "raw measured"});
  for (const Bucket& bucket : kBuckets) {
    table.AddRow({bucket.label, StrFormat("%5.1f%%", bucket.paper_compiled),
                  StrFormat("%5.1f%%",
                            100 * FractionInRange(compiled, bucket.lo, bucket.hi)),
                  StrFormat("%5.1f%%", bucket.paper_raw),
                  StrFormat("%5.1f%%",
                            100 * FractionInRange(raw, bucket.lo, bucket.hi))});
  }
  table.Print();

  std::printf("\nupdate concentration:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"top 1% of raw configs' share of raw updates", "92.8%",
                  StrFormat("%.1f%%",
                            100 * model.TopUpdateShare(ConfigKind::kRaw, 0.01))});
  summary.AddRow(
      {"top 1% of compiled configs' share", "64.5%",
       StrFormat("%.1f%%", 100 * model.TopUpdateShare(ConfigKind::kCompiled, 0.01))});
  summary.AddRow({"mean raw updates per config", "44",
                  StrFormat("%.1f", raw.Mean() - 1)});
  summary.AddRow({"mean compiled updates per config", "16",
                  StrFormat("%.1f", compiled.Mean() - 1)});
  summary.Print();
  return 0;
}
