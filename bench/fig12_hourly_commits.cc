// Figure 12: Configerator's hourly commit throughput over one week (the week
// of 11/3/2014 in the paper) — a daily pattern with 10:00–18:00 peaks, a
// weekly pattern with quiet weekends, and a steady automation floor through
// nights and weekends.

#include <algorithm>
#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/arrivals.h"

using namespace configerator;

int main() {
  PrintBenchHeader("Figure 12 — hourly commit throughput over one week",
                   "Commit arrival model, Mon-Sun; values are commits/hour");

  CommitArrivalModel::Params params;
  params.automation_share = 0.39;
  params.initial_daily_commits = 4000;
  params.daily_growth = 0;  // One week: growth is negligible.
  CommitArrivalModel model(params);
  auto hourly = model.SampleHourly(7);

  const char* kDow[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  TextTable table({"hour", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"});
  for (int hour = 0; hour < 24; hour += 2) {
    std::vector<std::string> row{StrFormat("%02d:00", hour)};
    for (int day = 0; day < 7; ++day) {
      row.push_back(std::to_string(hourly[static_cast<size_t>(day * 24 + hour)]));
    }
    table.AddRow(row);
  }
  table.Print();

  // Shape checks.
  auto day_peak = [&](int day) {
    return *std::max_element(hourly.begin() + day * 24,
                             hourly.begin() + (day + 1) * 24);
  };
  auto day_trough = [&](int day) {
    return *std::min_element(hourly.begin() + day * 24,
                             hourly.begin() + (day + 1) * 24);
  };
  (void)kDow;

  std::printf("\npaper vs measured:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"daily pattern (weekday peak 10:00-18:00)", "yes",
                  day_peak(2) > 3 * day_trough(2) ? "yes (peak > 3x trough)"
                                                  : "NO"});
  summary.AddRow({"weekly pattern (weekend low)", "yes",
                  day_peak(5) < day_peak(2) / 2 ? "yes (Sat peak < half Wed peak)"
                                                : "NO"});
  summary.AddRow({"steady automated commits through nights", "yes",
                  day_trough(2) > 0 ? StrFormat("yes (>= %d/hour)", day_trough(2))
                                    : "NO"});
  summary.Print();
  return 0;
}
