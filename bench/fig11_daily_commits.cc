// Figure 11: daily commit throughput of the Configerator repository compared
// with the www and fbcode code repositories. Signature observations: the
// peak daily throughput grows ~180% over ten months; weekly peaks/valleys;
// and Configerator's weekend throughput is ~33% of its busiest weekday
// (automation never sleeps) vs ~10% for www and ~7% for fbcode.

#include <algorithm>
#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/arrivals.h"

using namespace configerator;

namespace {

struct RepoResult {
  std::string name;
  std::vector<int64_t> daily;
  double growth = 0;
  double weekend_ratio = 0;
};

RepoResult RunRepo(const std::string& name, double automation_share,
                   double initial_daily, uint64_t seed) {
  CommitArrivalModel::Params params;
  params.repo_name = name;
  params.automation_share = automation_share;
  params.initial_daily_commits = initial_daily;
  params.seed = seed;
  CommitArrivalModel model(params);

  constexpr int kDays = 300;  // ~10 months.
  auto hourly = model.SampleHourly(kDays);
  RepoResult result;
  result.name = name;
  result.daily = CommitArrivalModel::DailyTotals(hourly);

  // Peak-week growth: compare the max day of the first and last 4 weeks.
  int64_t early_peak = *std::max_element(result.daily.begin(),
                                         result.daily.begin() + 28);
  int64_t late_peak = *std::max_element(result.daily.end() - 28,
                                        result.daily.end());
  result.growth = 100.0 * (static_cast<double>(late_peak) /
                               static_cast<double>(early_peak) -
                           1.0);

  // Weekend ratio over the final four weeks: weekend mean / busiest weekday.
  int64_t busiest = 0;
  int64_t weekend_sum = 0;
  int weekend_days = 0;
  for (size_t day = result.daily.size() - 28; day < result.daily.size(); ++day) {
    int dow = static_cast<int>(day % 7);
    if (dow >= 5) {
      weekend_sum += result.daily[day];
      ++weekend_days;
    } else {
      busiest = std::max(busiest, result.daily[day]);
    }
  }
  result.weekend_ratio = 100.0 * static_cast<double>(weekend_sum) /
                         weekend_days / static_cast<double>(busiest);
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader("Figure 11 — daily commit throughput by repository",
                   "Commit arrival model over ~10 months; day 0 is a Monday");

  RepoResult configerator_repo = RunRepo("configerator", 0.39, 1500, 1);
  RepoResult www_repo = RunRepo("www", 0.10, 700, 2);
  RepoResult fbcode_repo = RunRepo("fbcode", 0.05, 900, 3);

  // A four-week window of daily totals shows the weekly sawtooth.
  TextTable window({"day", "dow", "configerator", "www", "fbcode"});
  const char* kDow[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  for (size_t day = 140; day < 161; ++day) {
    window.AddRow({std::to_string(day), kDow[day % 7],
                   std::to_string(configerator_repo.daily[day]),
                   std::to_string(www_repo.daily[day]),
                   std::to_string(fbcode_repo.daily[day])});
  }
  window.Print();

  std::printf("\npaper vs measured:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"configerator peak growth over 10 months", "+180%",
                  StrFormat("%+.0f%%", configerator_repo.growth)});
  summary.AddRow({"configerator weekend/busiest-weekday", "~33%",
                  StrFormat("%.0f%%", configerator_repo.weekend_ratio)});
  summary.AddRow({"www weekend ratio", "~10%",
                  StrFormat("%.0f%%", www_repo.weekend_ratio)});
  summary.AddRow({"fbcode weekend ratio", "~7%",
                  StrFormat("%.0f%%", fbcode_repo.weekend_ratio)});
  summary.AddRow(
      {"config commits outnumber code commits", "yes",
       configerator_repo.daily.back() > www_repo.daily.back() ? "yes" : "NO"});
  summary.Print();
  return 0;
}
