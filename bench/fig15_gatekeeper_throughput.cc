// Figure 15: Gatekeeper check throughput. The paper reports billions of
// checks per second across the site (hundreds of thousands of frontend
// servers), consuming a significant share of frontend CPU. This bench
// measures single-core gk_check() throughput with google-benchmark across
// project shapes, ablates the cost-based restraint ordering, runs a
// multithreaded shared-snapshot sweep (with and without live config churn),
// and then extrapolates to the paper's fleet scale.
//
// --mt_smoke: run only a short 2-thread churn measurement (used by
// scripts/check.sh as a concurrency smoke test; does not rewrite the
// committed JSON results).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "src/gatekeeper/project.h"
#include "src/gatekeeper/runtime.h"
#include "src/obs/observability.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

UserContext MakeUser(int64_t id) {
  UserContext user;
  user.user_id = id;
  user.country = id % 3 == 0 ? "US" : "BR";
  user.locale = "en_US";
  user.app = "fb4a";
  user.device = "pixel";
  user.platform = id % 2 == 0 ? "android" : "ios";
  user.is_employee = id % 1000 == 0;
  user.account_age_days = static_cast<int32_t>(id % 2000);
  user.friend_count = static_cast<int32_t>(id % 700);
  user.app_version = 250 + static_cast<int32_t>(id % 100);
  return user;
}

GatekeeperProject SimpleProject() {
  auto config = Json::Parse(R"({
    "project": "Simple",
    "rules": [{"restraints": [{"type": "employee"}], "pass_probability": 1.0}]
  })");
  return std::move(GatekeeperProject::FromJson(*config)).value();
}

// The Figure 5 shape: several if-statements, each a conjunction.
std::string DnfJson(int step) {
  return StrFormat(R"({
    "project": "Dnf",
    "rules": [
      {"restraints": [{"type": "employee"}], "pass_probability": 1.0},
      {"restraints": [{"type": "country", "params": {"countries": ["US", "CA"]}},
                      {"type": "min_friend_count", "params": {"count": %d}},
                      {"type": "platform", "params": {"platforms": ["android"]}}],
       "pass_probability": 0.1},
      {"restraints": [{"type": "new_user", "params": {"max_days": 30}},
                      {"type": "min_app_version", "params": {"version": 300}}],
       "pass_probability": 0.5},
      {"restraints": [{"type": "hash_range",
                       "params": {"salt": "exp", "lo": 0.0, "hi": 0.05}}],
       "pass_probability": 1.0}
    ]
  })",
                   100 + step % 2);
}

GatekeeperProject DnfProject() {
  auto config = Json::Parse(DnfJson(0));
  return std::move(GatekeeperProject::FromJson(*config)).value();
}

// An expensive laser() restraint first in config order — exactly what the
// cost-based optimizer is for: it learns to test the cheap, usually-false
// country restraint before the store lookup.
GatekeeperProject LaserHeavyProject() {
  auto config = Json::Parse(R"({
    "project": "LaserHeavy",
    "rules": [
      {"restraints": [{"type": "laser",
                       "params": {"project": "Trend", "threshold": 0.5}},
                      {"type": "country", "params": {"countries": ["JP"]}}],
       "pass_probability": 1.0}
    ]
  })");
  return std::move(GatekeeperProject::FromJson(*config)).value();
}

LaserStore* SharedLaser() {
  static LaserStore* laser = [] {
    auto* store = new LaserStore();
    for (int64_t id = 0; id < 100'000; ++id) {
      store->Put("Trend-" + std::to_string(id), (id % 100) / 100.0);
    }
    return store;
  }();
  return laser;
}

void BM_CheckSimpleProject(benchmark::State& state) {
  GatekeeperProject project = SimpleProject();
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(project.Check(MakeUser(id++), nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckSimpleProject);

void BM_CheckDnfProject(benchmark::State& state) {
  GatekeeperProject project = DnfProject();
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(project.Check(MakeUser(id++), nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckDnfProject);

void BM_CheckLaserProject(benchmark::State& state) {
  GatekeeperProject project = LaserHeavyProject();
  project.set_cost_based_ordering(state.range(0) == 1);
  LaserStore* laser = SharedLaser();
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(project.Check(MakeUser(id++), laser));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 1 ? "cost-based ordering"
                                     : "config order (naive)");
}
BENCHMARK(BM_CheckLaserProject)->Arg(0)->Arg(1);

void BM_RuntimeDispatch(benchmark::State& state) {
  // Through the runtime map (the realistic entry point), many projects live.
  GatekeeperRuntime runtime;
  for (int p = 0; p < 200; ++p) {
    auto config = Json::Parse(StrFormat(
        R"({"project": "proj%d",
            "rules": [{"restraints": [{"type": "id_mod",
                        "params": {"mod": 100, "lo": 0, "hi": %d}}],
                       "pass_probability": 1.0}]})",
        p, 1 + p % 99));
    (void)runtime.LoadProject(*config);
  }
  int64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime.Check("proj" + std::to_string(id % 200), MakeUser(id)));
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuntimeDispatch);

void BM_RuntimeCheckMany(benchmark::State& state) {
  // The batch entry point: one snapshot acquire + one lookup per 256 users.
  GatekeeperRuntime runtime;
  (void)runtime.ApplyConfigUpdate("gatekeeper/Dnf.json", DnfJson(0));
  std::vector<UserContext> batch;
  for (int64_t id = 0; id < 256; ++id) {
    batch.push_back(MakeUser(id));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.CheckMany("Dnf", batch, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_RuntimeCheckMany);

// --- Multithreaded shared-snapshot sweep ------------------------------------

struct MtPoint {
  int threads = 0;
  bool churn = false;
  double checks_per_sec = 0;
};

// N reader threads hammer CheckMany() on one shared runtime; with churn on, a
// writer thread alternates two variants of the checked config (snapshot swap
// per update) and folds stats into a reordered snapshot every 8th update.
MtPoint MeasureMt(int n_threads, bool churn, double seconds) {
  GatekeeperRuntime runtime;
  (void)runtime.ApplyConfigUpdate("gatekeeper/Dnf.json", DnfJson(0));

  constexpr size_t kBatch = 256;
  constexpr size_t kBatches = 16;
  std::vector<std::vector<UserContext>> batches(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    for (size_t i = 0; i < kBatch; ++i) {
      batches[b].push_back(MakeUser(static_cast<int64_t>(b * kBatch + i)));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) {
    readers.emplace_back([&, t] {
      uint64_t local = 0;
      size_t b = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<UserContext>& batch = batches[b % kBatches];
        ++b;
        benchmark::DoNotOptimize(runtime.CheckMany("Dnf", batch, nullptr));
        local += batch.size();
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::thread writer;
  if (churn) {
    writer = std::thread([&] {
      int step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++step;
        (void)runtime.ApplyConfigUpdate("gatekeeper/Dnf.json", DnfJson(step));
        if (step % 8 == 0) {
          runtime.Rebuild();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) {
    th.join();
  }
  if (writer.joinable()) {
    writer.join();
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  MtPoint point;
  point.threads = n_threads;
  point.churn = churn;
  point.checks_per_sec =
      static_cast<double>(total.load(std::memory_order_relaxed)) / elapsed;
  return point;
}

void WriteMtJson(const std::vector<MtPoint>& points, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig15_gatekeeper_mt\",\n";
  out << "  \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"batch\": 256,\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const MtPoint& p = points[i];
    out << StrFormat("    {\"threads\": %d, \"churn\": %s, "
                     "\"checks_per_sec\": %.0f}%s\n",
                     p.threads, p.churn ? "true" : "false", p.checks_per_sec,
                     i + 1 == points.size() ? "" : ",");
  }
  out << "  ],\n";
  out << "  \"note\": \"Shared-snapshot GatekeeperRuntime, CheckMany batches "
         "of 256 over one shared runtime; churn = writer swapping the checked "
         "config every ~1ms + a stats-fold Rebuild every 8th update. "
         "Aggregate scaling across reader threads requires hw_threads >= "
         "thread count; on a single-core host the per-point rates show "
         "contention-freedom, not parallel speedup.\"\n}\n";
}

std::vector<MtPoint> RunMtSweep(double seconds_per_point) {
  std::vector<MtPoint> points;
  for (int threads : {1, 2, 4, 8}) {
    for (bool churn : {false, true}) {
      points.push_back(MeasureMt(threads, churn, seconds_per_point));
    }
  }
  return points;
}

void PrintMtTable(const std::vector<MtPoint>& points) {
  std::printf("\nmultithreaded shared-snapshot sweep (%u hardware threads):\n",
              std::thread::hardware_concurrency());
  TextTable table({"reader threads", "config churn", "aggregate checks/s"});
  double base = 0;
  for (const MtPoint& p : points) {
    if (p.threads == 1 && !p.churn) {
      base = p.checks_per_sec;
    }
    std::string speedup =
        base > 0 ? StrFormat(" (%.2fx vs 1T)", p.checks_per_sec / base) : "";
    table.AddRow({std::to_string(p.threads), p.churn ? "on" : "off",
                  StrFormat("%.1f M/s%s", p.checks_per_sec / 1e6,
                            speedup.c_str())});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mt_smoke") == 0) {
      // Quick concurrency smoke for CI: 2 readers + churn writer, ~0.3s.
      MtPoint point = MeasureMt(2, true, 0.3);
      std::printf("mt_smoke: 2 reader threads + churn writer -> "
                  "%.1f M checks/s\n",
                  point.checks_per_sec / 1e6);
      return 0;
    }
  }

  PrintBenchHeader("Figure 15 — Gatekeeper check throughput",
                   "google-benchmark per-core gk_check() rates + site-scale "
                   "extrapolation");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Quick standalone measurement for the extrapolation table.
  GatekeeperProject project = DnfProject();
  constexpr int64_t kChecks = 2'000'000;
  auto start = std::chrono::steady_clock::now();
  int64_t enabled = 0;
  for (int64_t id = 0; id < kChecks; ++id) {
    enabled += project.Check(MakeUser(id), nullptr) ? 1 : 0;
  }
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double per_core = static_cast<double>(kChecks) / seconds;

  // Cost-based ordering ablation, measured inline.
  auto measure_laser = [](bool cost_based) {
    GatekeeperProject project = LaserHeavyProject();
    project.set_cost_based_ordering(cost_based);
    LaserStore* laser = SharedLaser();
    constexpr int64_t kN = 1'000'000;
    auto t0 = std::chrono::steady_clock::now();
    int64_t hits = 0;
    for (int64_t id = 0; id < kN; ++id) {
      hits += project.Check(MakeUser(id), laser) ? 1 : 0;
    }
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
    benchmark::DoNotOptimize(hits);
    return static_cast<double>(kN) / s;
  };
  double laser_naive = measure_laser(false);
  double laser_optimized = measure_laser(true);

  // Metrics-instrumentation ablation: the same runtime Check() loop with and
  // without the observability registry attached. The instrumented path is
  // two increments on cached counter pointers, so the overhead budget on
  // this hot path is <5%.
  auto measure_runtime = [](Observability* obs) {
    GatekeeperRuntime runtime;
    if (obs != nullptr) {
      runtime.AttachObservability(obs);
    }
    auto config = Json::Parse(R"({
      "project": "Dnf",
      "rules": [
        {"restraints": [{"type": "employee"}], "pass_probability": 1.0},
        {"restraints": [{"type": "country", "params": {"countries": ["US", "CA"]}},
                        {"type": "min_friend_count", "params": {"count": 100}},
                        {"type": "platform", "params": {"platforms": ["android"]}}],
         "pass_probability": 0.1},
        {"restraints": [{"type": "hash_range",
                         "params": {"salt": "exp", "lo": 0.0, "hi": 0.05}}],
         "pass_probability": 1.0}
      ]
    })");
    (void)runtime.LoadProject(*config);
    constexpr int64_t kN = 2'000'000;
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      int64_t hits = 0;
      for (int64_t id = 0; id < kN; ++id) {
        hits += runtime.Check("Dnf", MakeUser(id)) ? 1 : 0;
      }
      double s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               t0)
                     .count();
      benchmark::DoNotOptimize(hits);
      best = std::max(best, static_cast<double>(kN) / s);
    }
    return best;
  };
  double rate_plain = measure_runtime(nullptr);
  Observability obs;
  double rate_instrumented = measure_runtime(&obs);
  double overhead_pct = 100.0 * (rate_plain - rate_instrumented) / rate_plain;

  // Multithreaded sweep over the shared-snapshot runtime.
  std::vector<MtPoint> mt_points = RunMtSweep(0.5);
  PrintMtTable(mt_points);
  WriteMtJson(mt_points, "BENCH_fig15_gatekeeper_mt.json");
  std::printf("wrote BENCH_fig15_gatekeeper_mt.json\n");

  // Paper scale: "frontend clusters that consist of hundreds of thousands of
  // servers"; a 2014-era frontend had ~16-24 cores.
  double site_rate = per_core * 200'000 * 16;
  std::printf("\npaper vs measured (DNF project, %lld checks, %lld passed):\n",
              static_cast<long long>(kChecks), static_cast<long long>(enabled));
  TextTable summary({"claim", "paper", "measured/extrapolated"});
  summary.AddRow({"per-core check rate", "(not reported)",
                  StrFormat("%.1f M checks/s", per_core / 1e6)});
  summary.AddRow({"fleet capacity (200k servers x 16 cores)",
                  "sustains billions of checks per second",
                  StrFormat("%.0f B checks/s capacity -> paper's rate is "
                            "<1%% of it",
                            site_rate / 1e9)});
  summary.AddRow({"cost-based evaluation ordering (SQL-style)",
                  "guides efficient evaluation of the boolean tree",
                  StrFormat("laser-heavy project: %.1f M/s naive -> %.1f M/s "
                            "optimized (%.1fx)",
                            laser_naive / 1e6, laser_optimized / 1e6,
                            laser_optimized / laser_naive)});
  summary.AddRow({"diurnal pattern", "follows site traffic",
                  "inherited from request arrival (see fig12/fig14 models)"});
  summary.AddRow({"metrics instrumentation overhead", "(must stay negligible)",
                  StrFormat("%.1f M/s plain -> %.1f M/s instrumented "
                            "(%.1f%% overhead, budget <5%%)",
                            rate_plain / 1e6, rate_instrumented / 1e6,
                            overhead_pct)});
  summary.Print();
  return 0;
}
