// CSL compile-eval throughput: the bytecode VM with its content-hash unit
// cache against the tree-walking interpreter, over the shared synthetic
// 1k-file repository (980 CSL files, 800 entry points).
//
// Sandcastle's validation cost is "compile every entry the commit reaches",
// and across commits almost every file is unchanged — so the number that
// matters is warm-cache throughput: how fast can an entry be re-evaluated
// when its import closure's compiled units are already cached? Three
// configurations, each compiling all 800 entries:
//
//   interp    — tree-walking interpreter (the reference engine); re-parses
//               and re-walks every file per entry, no cross-entry reuse.
//   vm-cold   — bytecode VM, fresh unit cache per entry and output
//               memoization ablated: parse + codegen + execute every time,
//               the no-cache worst case.
//   vm-warm   — bytecode VM, one shared unit cache across entries and
//               rounds: steady-state Sandcastle. Every unit hash-hits, and
//               each entry's whole validated output replays from the
//               closure-digest memo instead of re-evaluating.
//
// Emits BENCH_csl_vm.json; the acceptance bar is warm VM >= 10x interp.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench/synthetic_repo.h"
#include "src/json/json.h"
#include "src/lang/compiler.h"
#include "src/lang/unit_cache.h"
#include "src/obs/metrics.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Compiles every entry once; returns elapsed seconds. Aborts the process on
// any compile error — the synthetic repo is known-good, so an error here
// means the engine under test is broken, not the corpus.
double CompileAll(ConfigCompiler& compiler, size_t* configs_out) {
  auto start = std::chrono::steady_clock::now();
  for (int e = 0; e < SyntheticRepo::kEntries; ++e) {
    auto output = compiler.Compile(SyntheticRepo::EntryPath(e));
    if (!output.ok()) {
      std::fprintf(stderr, "FATAL: %s failed: %s\n",
                   SyntheticRepo::EntryPath(e).c_str(),
                   output.status().ToString().c_str());
      std::abort();
    }
    *configs_out += output->configs.size();
  }
  return Seconds(start);
}

}  // namespace

int main() {
  PrintBenchHeader(
      "CSL bytecode VM — compile-eval throughput and cache ablation",
      "entries/sec compiling all 800 synthetic entries: interpreter vs VM "
      "with cold and warm content-hash unit caches");

  SyntheticRepo repo = BuildSyntheticRepo();
  FileReader reader = repo.sources.AsReader();
  size_t configs = 0;

  // Interpreter baseline.
  CompilerOptions interp_options;
  interp_options.engine = CompilerOptions::Engine::kInterpreter;
  ConfigCompiler interp_compiler(reader, interp_options);
  double interp_s = CompileAll(interp_compiler, &configs);

  // VM, cold cache: a fresh compiler (and therefore a fresh owned unit
  // cache) per entry with output memoization ablated, so every file is
  // parsed, compiled, and executed every time — the no-cache worst case.
  CompilerOptions cold_options;
  cold_options.memoize_outputs = false;
  size_t cold_configs = 0;
  auto cold_start = std::chrono::steady_clock::now();
  for (int e = 0; e < SyntheticRepo::kEntries; ++e) {
    ConfigCompiler cold_compiler(reader, cold_options);
    auto output = cold_compiler.Compile(SyntheticRepo::EntryPath(e));
    if (!output.ok()) {
      std::fprintf(stderr, "FATAL: %s failed: %s\n",
                   SyntheticRepo::EntryPath(e).c_str(),
                   output.status().ToString().c_str());
      std::abort();
    }
    cold_configs += output->configs.size();
  }
  double vm_cold_s = Seconds(cold_start);

  // VM, warm cache: one shared cache. The first sweep populates it (entries
  // themselves miss once); the measured sweep is pure steady state.
  CompiledUnitCache cache;
  MetricsRegistry metrics;
  CompilerOptions warm_options;
  warm_options.unit_cache = &cache;
  warm_options.metrics = &metrics;
  ConfigCompiler warm_compiler(reader, warm_options);
  size_t warmup_configs = 0;
  CompileAll(warm_compiler, &warmup_configs);
  uint64_t hits_before = metrics.GetCounter("csl.unit_cache.hits")->value();
  uint64_t out_hits_before =
      metrics.GetCounter("csl.output_cache.hits")->value();
  size_t warm_configs = 0;
  double vm_warm_s = CompileAll(warm_compiler, &warm_configs);
  uint64_t warm_hits =
      metrics.GetCounter("csl.unit_cache.hits")->value() - hits_before;
  uint64_t warm_output_hits =
      metrics.GetCounter("csl.output_cache.hits")->value() - out_hits_before;
  uint64_t total_misses = metrics.GetCounter("csl.unit_cache.misses")->value();

  if (configs != cold_configs || configs != warm_configs) {
    std::fprintf(stderr, "FATAL: engines exported different config counts\n");
    std::abort();
  }

  double n = SyntheticRepo::kEntries;
  double interp_rate = n / interp_s;
  double cold_rate = n / vm_cold_s;
  double warm_rate = n / vm_warm_s;
  double speedup_warm = interp_s / vm_warm_s;
  double speedup_cold = interp_s / vm_cold_s;

  TextTable table({"config", "time (s)", "entries/sec", "speedup vs interp"});
  table.AddRow({"interp", StrFormat("%.3f", interp_s),
                StrFormat("%.1f", interp_rate), "1.0x"});
  table.AddRow({"vm-cold", StrFormat("%.3f", vm_cold_s),
                StrFormat("%.1f", cold_rate),
                StrFormat("%.1fx", speedup_cold)});
  table.AddRow({"vm-warm", StrFormat("%.3f", vm_warm_s),
                StrFormat("%.1f", warm_rate),
                StrFormat("%.1fx", speedup_warm)});
  table.Print();
  std::printf(
      "warm sweep unit-cache hits: %llu, output-memo hits: %llu, "
      "lifetime misses: %llu\n",
      static_cast<unsigned long long>(warm_hits),
      static_cast<unsigned long long>(warm_output_hits),
      static_cast<unsigned long long>(total_misses));

  Json out = Json::MakeObject();
  out.Set("bench", Json("csl_vm"));
  out.Set("entries", Json(static_cast<int64_t>(SyntheticRepo::kEntries)));
  out.Set("csl_files", Json(static_cast<int64_t>(repo.paths.size())));
  out.Set("configs_per_sweep", Json(static_cast<int64_t>(configs)));
  out.Set("interp_seconds", Json(interp_s));
  out.Set("interp_entries_per_sec", Json(interp_rate));
  out.Set("vm_cold_seconds", Json(vm_cold_s));
  out.Set("vm_cold_entries_per_sec", Json(cold_rate));
  out.Set("vm_warm_seconds", Json(vm_warm_s));
  out.Set("vm_warm_entries_per_sec", Json(warm_rate));
  out.Set("speedup_vm_cold_vs_interp", Json(speedup_cold));
  out.Set("speedup_vm_warm_vs_interp", Json(speedup_warm));
  out.Set("warm_sweep_cache_hits", Json(static_cast<int64_t>(warm_hits)));
  out.Set("warm_sweep_output_hits",
          Json(static_cast<int64_t>(warm_output_hits)));
  out.Set("lifetime_cache_misses", Json(static_cast<int64_t>(total_misses)));
  std::ofstream file("BENCH_csl_vm.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_csl_vm.json\n");
  return 0;
}
