// Figure 10: age of a config at the time of an update. Paper anchors: 29%
// of updates happen on configs created in the past 60 days, AND 29% of
// updates happen on configs older than 300 days — "the configs do not
// stabilize as quickly as we initially thought".

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/population.h"

using namespace configerator;

int main() {
  PrintBenchHeader("Figure 10 — config age at update time",
                   "CDF over all update events of the target config's age");

  PopulationModel::Params params;
  params.final_configs = 30'000;
  params.total_days = 1400;
  PopulationModel model(params);
  model.Run();
  SampleSet ages = model.AgeAtUpdate();

  struct Anchor {
    int days;
    double paper_cdf;
  };
  const Anchor kAnchors[] = {{1, 4},    {5, 6},    {10, 8},   {20, 13},
                             {30, 17},  {60, 29},  {90, 38},  {120, 45},
                             {150, 52}, {200, 60}, {300, 71}, {400, 80},
                             {500, 87}, {600, 93}, {700, 96}};

  TextTable table({"config age (days)", "paper CDF", "measured CDF"});
  for (const Anchor& anchor : kAnchors) {
    table.AddRow({std::to_string(anchor.days),
                  StrFormat("%5.1f%%", anchor.paper_cdf),
                  StrFormat("%5.1f%%", 100 * ages.CdfAt(anchor.days))});
  }
  table.Print();

  std::printf("\nheadline claims:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"updates to configs < 60 days old", "29%",
                  StrFormat("%.0f%%", 100 * ages.CdfAt(60))});
  summary.AddRow({"updates to configs > 300 days old", "29%",
                  StrFormat("%.0f%%", 100 * (1 - ages.CdfAt(300)))});
  summary.AddRow({"old configs still get updated", "yes",
                  1 - ages.CdfAt(300) > 0.05 ? "yes" : "NO"});
  summary.Print();
  return 0;
}
