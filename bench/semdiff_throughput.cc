// Semantic-diff throughput: commits/sec for SemanticDiffer::Classify over
// the shared synthetic 1k-file repository. Sandcastle classifies every
// proposal's per-symbol impact before deciding whether to re-analyze the
// reverse closure, so this number bounds the landing rate one analysis
// host can sustain. The scripted sequence cycles the three commit shapes
// that dominate real traffic: comment-only module edits (provably no-op),
// module value bumps (value-delta fanning out to importers), and
// entry-local comment edits.
//
// Emits BENCH_semdiff.json next to the working directory for the bench
// trajectory.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/synthetic_repo.h"
#include "src/analysis/semdiff.h"
#include "src/json/json.h"
#include "src/util/strings.h"
#include "src/util/table.h"

using namespace configerator;

namespace {

constexpr int kCommits = 100;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

InMemorySources SourcesFrom(const std::map<std::string, std::string>& tree) {
  InMemorySources sources;
  for (const auto& [path, content] : tree) {
    sources.Put(path, content);
  }
  return sources;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Semantic diff throughput — per-symbol commit classification",
      "commits/sec for SemanticDiffer over the synthetic 1k-file repo; "
      "bounds the landing rate one Sandcastle analysis host sustains");

  SyntheticRepo repo = BuildSyntheticRepo();
  const size_t total_files = repo.paths.size();

  // Materialize the tree as a plain map so each scripted commit is a
  // one-file rewrite on top of the previous state.
  std::map<std::string, std::string> tree;
  for (int s = 0; s < SyntheticRepo::kSchemas; ++s) {
    std::string path = StrFormat("schemas/svc%02d.thrift", s);
    tree[path] = *repo.sources.AsReader()(path);
  }
  for (int m = 0; m < SyntheticRepo::kModules; ++m) {
    tree[SyntheticRepo::ModulePath(m)] = SyntheticRepo::ModuleSource(m);
  }
  for (int e = 0; e < SyntheticRepo::kEntries; ++e) {
    tree[SyntheticRepo::EntryPath(e)] = SyntheticRepo::EntrySource(e);
  }

  size_t counts[4] = {0, 0, 0, 0};
  size_t provable_noops = 0;
  size_t dependents_total = 0;
  size_t impacts_total = 0;
  double classify_s = 0;

  for (int i = 0; i < kCommits; ++i) {
    std::map<std::string, std::string> new_tree = tree;
    std::string touched_path;
    std::vector<std::string> dependents;
    switch (i % 3) {
      case 0: {  // Comment-only module edit: provably no-op.
        int m = (i * 13) % SyntheticRepo::kModules;
        touched_path = SyntheticRepo::ModulePath(m);
        new_tree[touched_path] = SyntheticRepo::ModuleSource(m, /*rev=*/i + 1);
        dependents = SyntheticRepo::EntriesImporting(m);
        break;
      }
      case 1: {  // Module port bump: value-delta in every importer.
        int m = (i * 13 + 1) % SyntheticRepo::kModules;
        touched_path = SyntheticRepo::ModulePath(m);
        new_tree[touched_path] =
            SyntheticRepo::ModuleSource(m, /*rev=*/0, /*port_bump=*/i + 1);
        dependents = SyntheticRepo::EntriesImporting(m);
        break;
      }
      case 2: {  // Entry-local comment edit.
        int e = (i * 7) % SyntheticRepo::kEntries;
        touched_path = SyntheticRepo::EntryPath(e);
        new_tree[touched_path] =
            StrFormat("# rev %d\n", i + 1) + SyntheticRepo::EntrySource(e);
        break;
      }
    }

    InMemorySources old_sources = SourcesFrom(tree);
    InMemorySources new_sources = SourcesFrom(new_tree);

    auto start = std::chrono::steady_clock::now();
    SemanticDiffer differ(old_sources.AsReader(), new_sources.AsReader());
    SemanticDiffReport report = differ.Classify({touched_path}, dependents);
    classify_s += Seconds(start);

    for (const SymbolImpact& impact : report.impacts) {
      ++counts[static_cast<int>(impact.kind)];
    }
    impacts_total += report.impacts.size();
    dependents_total += dependents.size();
    if (report.provably_noop) {
      ++provable_noops;
    }
    tree = std::move(new_tree);
  }

  double commits_per_sec = static_cast<double>(kCommits) / classify_s;
  double mean_dependents =
      static_cast<double>(dependents_total) / static_cast<double>(kCommits);

  TextTable table({"metric", "value"});
  table.AddRow({"repo files", std::to_string(total_files)});
  table.AddRow({"commits classified", std::to_string(kCommits)});
  table.AddRow({"classify time (s)", StrFormat("%.3f", classify_s)});
  table.AddRow({"commits/sec", StrFormat("%.1f", commits_per_sec)});
  table.AddRow({"mean dependent entries", StrFormat("%.1f", mean_dependents)});
  table.AddRow({"impacts: no-op", std::to_string(counts[0])});
  table.AddRow({"impacts: value-delta", std::to_string(counts[1])});
  table.AddRow({"impacts: control-shift", std::to_string(counts[2])});
  table.AddRow({"impacts: type-change", std::to_string(counts[3])});
  table.AddRow({"provably no-op commits", std::to_string(provable_noops)});
  table.Print();

  Json out = Json::MakeObject();
  out.Set("bench", Json("semdiff_throughput"));
  out.Set("files", Json(static_cast<int64_t>(total_files)));
  out.Set("commits", Json(static_cast<int64_t>(kCommits)));
  out.Set("classify_seconds", Json(classify_s));
  out.Set("commits_per_sec", Json(commits_per_sec));
  out.Set("mean_dependent_entries", Json(mean_dependents));
  out.Set("impacts_total", Json(static_cast<int64_t>(impacts_total)));
  out.Set("impacts_noop", Json(static_cast<int64_t>(counts[0])));
  out.Set("impacts_value_delta", Json(static_cast<int64_t>(counts[1])));
  out.Set("impacts_control_shift", Json(static_cast<int64_t>(counts[2])));
  out.Set("impacts_type_change", Json(static_cast<int64_t>(counts[3])));
  out.Set("provably_noop_commits", Json(static_cast<int64_t>(provable_noops)));
  std::ofstream file("BENCH_semdiff.json");
  file << out.DumpPretty() << "\n";
  std::printf("wrote BENCH_semdiff.json\n");
  return 0;
}
