// Figure 9: freshness of configs — CDF of days since a config was last
// modified. Paper anchors: 28% of configs were created or updated within the
// past 90 days, while 35% were not touched in the past 300 days ("both fresh
// and dormant configs account for a significant fraction").

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/population.h"

using namespace configerator;

int main() {
  PrintBenchHeader("Figure 9 — config freshness",
                   "CDF of days since last modification, at the paper's "
                   "measurement window end");

  PopulationModel::Params params;
  params.final_configs = 30'000;
  params.total_days = 1400;
  PopulationModel model(params);
  model.Run();
  SampleSet freshness = model.Freshness();

  // Paper Fig 9 data points (days, CDF%).
  struct Anchor {
    int days;
    double paper_cdf;
  };
  const Anchor kAnchors[] = {{1, 0.5},   {5, 2},    {10, 4},   {20, 6},
                             {30, 9},    {60, 17},  {90, 28},  {120, 39},
                             {150, 44},  {200, 52}, {300, 65}, {400, 71},
                             {500, 78},  {600, 83}, {700, 95}};

  TextTable table({"days since modified", "paper CDF", "measured CDF"});
  for (const Anchor& anchor : kAnchors) {
    table.AddRow({std::to_string(anchor.days),
                  StrFormat("%5.1f%%", anchor.paper_cdf),
                  StrFormat("%5.1f%%", 100 * freshness.CdfAt(anchor.days))});
  }
  table.Print();

  std::printf("\nheadline claims:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"touched within 90 days", "28%",
                  StrFormat("%.0f%%", 100 * freshness.CdfAt(90))});
  summary.AddRow({"untouched for 300+ days", "35%",
                  StrFormat("%.0f%%", 100 * (1 - freshness.CdfAt(300)))});
  summary.Print();
  return 0;
}
