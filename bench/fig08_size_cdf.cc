// Figure 8: cumulative distribution of config size, raw vs compiled.
// Paper anchors: P50 raw 400 B / compiled 1 KB; P95 raw 25 KB / compiled
// 45 KB; largest raw 8.4 MB / compiled 14.8 MB; "many configs have
// significant complexity and are not trivial name-value pairs".

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/workload/population.h"

using namespace configerator;

int main() {
  PrintBenchHeader("Figure 8 — config size CDF",
                   "Raw vs compiled config sizes from the calibrated model");

  PopulationModel::Params params;
  params.final_configs = 60'000;
  PopulationModel model(params);
  model.Run();
  SampleSet raw = model.Sizes(ConfigKind::kRaw);
  SampleSet compiled = model.Sizes(ConfigKind::kCompiled);

  // The paper's x-axis probes (note: deliberately non-uniform).
  const double kProbes[] = {100,     200,     300,       400,       600,
                            800,     1'000,   2'000,     5'000,     10'000,
                            50'000,  100'000, 500'000,   1'000'000, 10'000'000};
  TextTable cdf({"size (bytes)", "raw CDF", "compiled CDF"});
  for (double probe : kProbes) {
    cdf.AddRow({HumanBytes(probe), StrFormat("%5.1f%%", 100 * raw.CdfAt(probe)),
                StrFormat("%5.1f%%", 100 * compiled.CdfAt(probe))});
  }
  cdf.Print();

  std::printf("\npaper vs measured:\n");
  TextTable summary({"statistic", "paper", "measured"});
  summary.AddRow({"raw P50", "400 B", HumanBytes(raw.Percentile(50))});
  summary.AddRow({"compiled P50", "1 KB", HumanBytes(compiled.Percentile(50))});
  summary.AddRow({"raw P95", "25 KB", HumanBytes(raw.Percentile(95))});
  summary.AddRow({"compiled P95", "45 KB", HumanBytes(compiled.Percentile(95))});
  summary.AddRow({"raw max", "8.4 MB", HumanBytes(raw.Max())});
  summary.AddRow({"compiled max", "14.8 MB", HumanBytes(compiled.Max())});
  summary.AddRow({"compiled bigger than raw at P50", "yes",
                  compiled.Percentile(50) > raw.Percentile(50) ? "yes" : "NO"});
  summary.Print();
  return 0;
}
