// Figure 14: end-to-end latency between committing a config change and the
// new config reaching all subscribed production servers, over one simulated
// week. The paper's breakdown: ~5 s to commit into the shared git repo, ~5 s
// for the git tailer to fetch the change, ~4.5 s for Zeus' tree to reach
// hundreds of thousands of servers — a ~14.5 s baseline that rises with
// commit load (daily and weekly patterns), because the commit stage is a
// shared FCFS queue.
//
// This runs the real pipeline (landing-strip queue → repository → tailer →
// Zeus ensemble → observers → proxies) on the discrete-event simulator,
// driven by the diurnal commit-arrival model.

#include <cstdio>
#include <deque>
#include <map>

#include "src/distribution/proxy.h"
#include "src/distribution/tailer.h"
#include "src/util/stats.h"
#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/vcs/repository.h"
#include "src/workload/arrivals.h"
#include "src/zeus/zeus.h"

using namespace configerator;

namespace {

constexpr int kDays = 7;
constexpr int kPaths = 100;     // Well-known config paths, updated round-robin.
constexpr int kProxies = 40;    // Subscribed servers across the fleet.
constexpr SimTime kCommitServiceTime = 5 * kSimSecond;  // Slow git commit.

struct PendingCommit {
  std::string path;
  std::string payload;
  SimTime enqueued;
};

struct InFlight {
  SimTime enqueued = 0;
  int receipts = 0;
};

}  // namespace

int main() {
  PrintBenchHeader("Figure 14 — commit-to-fleet propagation latency",
                   "Full pipeline on the simulator over one week; baseline "
                   "~14.5s, load-dependent (daily + weekly pattern)");

  Simulator sim;
  Network net(&sim, Topology(2, 2, 25), /*seed=*/14);
  std::vector<ServerId> members = {ServerId{0, 0, 0}, ServerId{1, 0, 0},
                                   ServerId{0, 0, 1}, ServerId{1, 0, 1},
                                   ServerId{0, 1, 0}};
  std::vector<ServerId> observers;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      observers.push_back(ServerId{r, c, 24});
      observers.push_back(ServerId{r, c, 23});
    }
  }
  // The tree hop carries a processing delay sized for a hundreds-of-
  //-thousands fan-out (serialization + commit-log fsync), per the paper's
  // ~4.5 s tree stage.
  ZeusEnsemble::Options zeus_options;
  zeus_options.processing_delay = 1500 * kSimMillisecond;
  ZeusEnsemble zeus(&net, members, observers, zeus_options);

  Repository repo;
  GitTailer::Options tailer_options;
  tailer_options.poll_interval = 5 * kSimSecond;
  tailer_options.fetch_delay = 5 * kSimSecond;
  GitTailer tailer(&net, ServerId{0, 0, 5}, &repo, &zeus, tailer_options);
  tailer.Start();

  // Latency bookkeeping: payload -> enqueue time; a commit is "propagated"
  // when every proxy has seen its payload.
  std::map<std::string, InFlight> in_flight;
  std::vector<SampleSet> hourly_latency(kDays * 24);
  SampleSet all_latency;

  // Proxies across the fleet subscribe to every tracked path.
  std::vector<std::unique_ptr<OnDiskCache>> disks;
  std::vector<std::unique_ptr<ConfigProxy>> proxies;
  for (int i = 0; i < kProxies; ++i) {
    ServerId host{i % 2, (i / 2) % 2, 2 + (i / 4) % 20};
    disks.push_back(std::make_unique<OnDiskCache>());
    proxies.push_back(std::make_unique<ConfigProxy>(
        &net, &zeus, host, disks.back().get(), 100 + i));
    for (int p = 0; p < kPaths; ++p) {
      proxies.back()->Subscribe(
          StrFormat("conf/path%03d.json", p),
          [&in_flight, &hourly_latency, &all_latency, &sim](
              const std::string&, const std::string& value, int64_t) {
            auto it = in_flight.find(value);
            if (it == in_flight.end()) {
              return;
            }
            if (++it->second.receipts == kProxies) {
              double latency = SimToSeconds(sim.now() - it->second.enqueued);
              size_t hour = static_cast<size_t>(it->second.enqueued / kSimHour);
              if (hour < hourly_latency.size()) {
                hourly_latency[hour].Add(latency);
              }
              all_latency.Add(latency);
              in_flight.erase(it);
            }
          });
    }
  }

  // The landing-strip commit queue: FCFS, 5 s service time.
  std::deque<PendingCommit> queue;
  bool busy = false;
  int path_round_robin = 0;
  int64_t seq = 0;

  std::function<void()> start_service = [&] {
    if (busy || queue.empty()) {
      return;
    }
    busy = true;
    sim.Schedule(kCommitServiceTime, [&] {
      PendingCommit commit = std::move(queue.front());
      queue.pop_front();
      auto result = repo.Commit("engineer", "update", {
          {commit.path, commit.payload}});
      if (result.ok()) {
        in_flight[commit.payload] = InFlight{commit.enqueued, 0};
      }
      busy = false;
      start_service();
    });
  };

  // Commit arrivals from the diurnal model, scaled so the peak hour keeps
  // the 5 s/commit pipe at ~85% utilization.
  CommitArrivalModel::Params arrival_params;
  arrival_params.automation_share = 0.39;
  arrival_params.daily_growth = 0;
  arrival_params.initial_daily_commits = 1;  // Rescaled below.
  CommitArrivalModel model(arrival_params);
  double peak = 0;
  for (int h = 0; h < 24; ++h) {
    peak = std::max(peak, model.ExpectedCommits(2, h));
  }
  double scale = (0.85 * 3600.0 / SimToSeconds(kCommitServiceTime)) / peak;

  Rng arrival_rng(99);
  for (int day = 0; day < kDays; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      double rate = model.ExpectedCommits(day, hour) * scale;  // Per hour.
      double t = 0;
      while (true) {
        t += arrival_rng.NextExponential(rate / 3600.0);
        if (t >= 3600.0) {
          break;
        }
        SimTime when = (day * 24 + hour) * kSimHour +
                       static_cast<SimTime>(t * kSimSecond);
        sim.ScheduleAt(when, [&, when] {
          PendingCommit commit;
          commit.path = StrFormat("conf/path%03d.json",
                                  path_round_robin++ % kPaths);
          commit.payload = StrFormat("payload-%lld",
                                     static_cast<long long>(seq++));
          commit.enqueued = when;
          queue.push_back(std::move(commit));
          start_service();
        });
      }
    }
  }

  sim.RunUntil(kDays * kSimDay + kSimHour);

  // Report: hourly mean latency for one weekday and one weekend day.
  TextTable table({"hour", "Wed mean (s)", "Wed p95 (s)", "Sun mean (s)"});
  for (int hour = 0; hour < 24; hour += 2) {
    SampleSet& wed = hourly_latency[static_cast<size_t>(2 * 24 + hour)];
    SampleSet& sun = hourly_latency[static_cast<size_t>(6 * 24 + hour)];
    table.AddRow({StrFormat("%02d:00", hour),
                  wed.empty() ? "-" : StrFormat("%.1f", wed.Mean()),
                  wed.empty() ? "-" : StrFormat("%.1f", wed.Percentile(95)),
                  sun.empty() ? "-" : StrFormat("%.1f", sun.Mean())});
  }
  table.Print();

  double baseline = all_latency.Percentile(5);
  double peak_hour_mean = 0;
  for (const SampleSet& hour : hourly_latency) {
    if (!hour.empty()) {
      peak_hour_mean = std::max(peak_hour_mean, hour.Mean());
    }
  }

  std::printf("\npaper vs measured (%zu commits propagated to %d servers):\n",
              all_latency.size(), kProxies);
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"baseline latency", "~14.5 s",
                  StrFormat("%.1f s (p5)", baseline)});
  summary.AddRow({"breakdown", "5s commit + 5s tailer + 4.5s tree",
                  "5s commit + <=5s poll + 5s fetch + tree"});
  summary.AddRow({"latency increases with load", "daily/weekly pattern",
                  StrFormat("peak-hour mean %.1f s (%.1fx baseline)",
                            peak_hour_mean, peak_hour_mean / baseline)});
  summary.Print();
  return 0;
}
