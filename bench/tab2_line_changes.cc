// Table 2: number of line changes per config update, measured — like the
// paper — with Unix diff semantics (a modified line counts as one delete
// plus one add, so "most changes are two-line changes"). Unlike the other
// usage-statistics benches, this one exercises the real machinery: it
// generates actual JSON configs, applies typed edits, and runs the Myers
// diff engine over the before/after contents.

#include <cstdio>

#include "src/util/strings.h"
#include "src/util/table.h"
#include "src/vcs/diff.h"
#include "src/workload/content.h"
#include "src/workload/population.h"

using namespace configerator;

namespace {

struct Bucket {
  const char* label;
  size_t lo;
  size_t hi;
  double paper_compiled;
  double paper_source;
  double paper_raw;
};

}  // namespace

int main() {
  PrintBenchHeader("Table 2 — line changes per config update",
                   "Real JSON configs + typed edits, measured with the Myers "
                   "diff engine");

  Rng rng(20150927);
  constexpr int kUpdates = 4000;
  SampleSet changes;
  for (int i = 0; i < kUpdates; ++i) {
    int64_t size = PopulationModel::SampleSize(ConfigKind::kCompiled, rng);
    size = std::min<int64_t>(size, 200'000);  // Keep the bench snappy.
    std::string before = GenerateConfigContent(size, rng);
    std::string after = ApplyEdit(before, SampleEditKind(rng), rng);
    LineDiff diff = DiffLines(before, after);
    if (diff.changed_lines() == 0) {
      // The random edit regenerated an identical value; count the retry as
      // a 2-line change (what the engineer's next attempt would be).
      changes.Add(2);
      continue;
    }
    changes.Add(static_cast<double>(diff.changed_lines()));
  }

  const Bucket kBuckets[] = {
      {"1", 1, 1, 2.5, 2.7, 2.3},
      {"2", 2, 2, 49.5, 44.3, 48.6},
      {"[3, 4]", 3, 4, 9.9, 13.5, 32.5},
      {"[5, 6]", 5, 6, 3.9, 4.6, 4.2},
      {"[7, 10]", 7, 10, 7.4, 6.1, 3.6},
      {"[11, 50]", 11, 50, 15.3, 19.3, 5.7},
      {"[51, 100]", 51, 100, 2.8, 2.3, 1.1},
      {"[101, inf)", 101, SIZE_MAX, 8.7, 7.3, 2.0},
  };

  TextTable table({"line changes", "paper compiled", "measured", "paper source",
                   "paper raw"});
  for (const Bucket& bucket : kBuckets) {
    table.AddRow({bucket.label, StrFormat("%5.1f%%", bucket.paper_compiled),
                  StrFormat("%5.1f%%",
                            100 * FractionInRange(changes,
                                                  static_cast<double>(bucket.lo),
                                                  static_cast<double>(bucket.hi))),
                  StrFormat("%5.1f%%", bucket.paper_source),
                  StrFormat("%5.1f%%", bucket.paper_raw)});
  }
  table.Print();

  std::printf("\nheadline claims:\n");
  TextTable summary({"claim", "paper", "measured"});
  summary.AddRow({"~50% of updates are 2-line changes", "49.5%",
                  StrFormat("%.1f%%", 100 * FractionInRange(changes, 2, 2))});
  summary.AddRow({"large changes (>100 lines) not negligible", "8.7%",
                  StrFormat("%.1f%%",
                            100 * FractionInRange(changes, 101, 1e18))});
  summary.Print();
  return 0;
}
